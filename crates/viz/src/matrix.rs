//! Communication-matrix heatmap rendering.
//!
//! The process×process communication matrix is the classic trace-browser
//! companion to the master timeline: who talks to whom, and how much.
//! Cells are coloured on the cold→hot scale by message count or payload
//! bytes.

use crate::color::ColorScale;
use perfvar_analysis::messages::CommMatrix;
use perfvar_trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Which quantity colours the matrix cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommQuantity {
    /// Number of messages per sender→receiver pair.
    Count,
    /// Payload bytes per sender→receiver pair.
    Bytes,
}

/// Renders the communication matrix of `comm` as a standalone SVG
/// (senders on the y-axis, receivers on the x-axis).
pub fn render_comm_matrix_svg(
    trace: &Trace,
    comm: &CommMatrix,
    quantity: CommQuantity,
    size: u32,
) -> String {
    let n = comm.dim().max(1);
    let margin = 60.0;
    let title_h = 28.0;
    let plot = size as f64 - 2.0 * margin;
    let cell = plot / n as f64;
    let values = |i: usize, j: usize| -> u64 {
        match quantity {
            CommQuantity::Count => comm.counts[i][j],
            CommQuantity::Bytes => comm.bytes[i][j],
        }
    };
    let scale = ColorScale::from_values(
        (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .map(|(i, j)| values(i, j) as f64)
            .filter(|v| *v > 0.0),
    );

    let mut svg = String::new();
    let total_h = size as f64 + title_h;
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{total_h:.0}" font-family="Helvetica,Arial,sans-serif">"##
    );
    let _ = write!(
        svg,
        r##"<rect width="100%" height="100%" fill="#ffffff"/>"##
    );
    let what = match quantity {
        CommQuantity::Count => "messages",
        CommQuantity::Bytes => "bytes",
    };
    let _ = write!(
        svg,
        r##"<text x="{margin}" y="18" font-size="13" font-weight="bold">Communication matrix ({what}) — {t}</text>"##,
        t = xml(&trace.name)
    );
    let _ = write!(svg, r##"<g shape-rendering="crispEdges">"##);
    for i in 0..n {
        for j in 0..n {
            let v = values(i, j);
            let color = if v == 0 {
                "#f4f4f4".to_string()
            } else {
                scale.heat(v as f64).hex()
            };
            let x = margin + j as f64 * cell;
            let y = title_h + margin + i as f64 * cell;
            let _ = write!(
                svg,
                r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.2}" height="{w:.2}" fill="{color}"/>"##,
                w = (cell - cell.min(1.0) * 0.1).max(0.3)
            );
        }
    }
    let _ = write!(svg, "</g>");
    // Axis labels: a handful of process indices.
    let label_step = n.div_ceil(12).max(1);
    for k in (0..n).step_by(label_step) {
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{y:.1}" font-size="9" text-anchor="middle" fill="#333333">{k}</text>"##,
            x = margin + (k as f64 + 0.5) * cell,
            y = title_h + margin - 6.0
        );
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{y:.1}" font-size="9" text-anchor="end" fill="#333333">{k}</text>"##,
            x = margin - 6.0,
            y = title_h + margin + (k as f64 + 0.6) * cell
        );
    }
    let _ = write!(
        svg,
        r##"<text x="{x:.1}" y="{y:.1}" font-size="10" fill="#555555">receiver →  /  sender ↓</text>"##,
        x = margin,
        y = title_h + margin + plot + 18.0
    );
    svg.push_str("</svg>");
    svg
}

fn xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvar_analysis::messages::MessageAnalysis;
    use perfvar_sim::prelude::*;

    #[test]
    fn comm_matrix_svg_renders() {
        let trace = simulate(&workloads::CosmoSpecsFd4::small(6, 2).spec()).unwrap();
        let analysis = MessageAnalysis::match_trace(&trace);
        let comm = analysis.comm_matrix(trace.num_processes());
        for q in [CommQuantity::Count, CommQuantity::Bytes] {
            let svg = render_comm_matrix_svg(&trace, &comm, q, 480);
            assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
            // n×n cells plus background.
            assert!(svg.matches("<rect").count() >= 36);
        }
    }

    #[test]
    fn ring_traffic_sits_off_diagonal() {
        let trace = simulate(&workloads::CosmoSpecsFd4::small(4, 1).spec()).unwrap();
        let analysis = MessageAnalysis::match_trace(&trace);
        let comm = analysis.comm_matrix(4);
        // Ring: each rank sends only to (rank+1) % 4.
        for i in 0..4 {
            for j in 0..4 {
                let expected = if (i + 1) % 4 == j { 3 } else { 0 };
                assert_eq!(comm.counts[i][j], expected, "({i},{j})");
            }
        }
    }

    #[test]
    fn empty_matrix_renders() {
        let trace = simulate(&workloads::BalancedStencil::new(2, 2).spec()).unwrap();
        let analysis = MessageAnalysis::match_trace(&trace);
        let comm = analysis.comm_matrix(2);
        let svg = render_comm_matrix_svg(&trace, &comm, CommQuantity::Count, 240);
        assert!(svg.ends_with("</svg>"));
    }
}
