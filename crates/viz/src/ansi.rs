//! ANSI terminal rendering of [`TimelineChart`]s.
//!
//! Renders a chart as a character grid using 24-bit background colours —
//! a quick look at a trace or SOS heatmap without leaving the terminal.
//! Wide traces are downsampled per character cell (the colour holding the
//! most time in the cell wins); tall traces are thinned to a row budget.

use crate::chart::{Row, TimelineChart};
use crate::color::Color;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Terminal rendering options.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AnsiOptions {
    /// Plot width in character cells.
    pub width: usize,
    /// Maximum number of process rows shown (evenly thinned above).
    pub max_rows: usize,
    /// Emit ANSI colour escapes (disable for plain-text tests/logs).
    pub color: bool,
}

impl Default for AnsiOptions {
    fn default() -> AnsiOptions {
        AnsiOptions {
            width: 100,
            max_rows: 40,
            color: true,
        }
    }
}

/// Renders `chart` as terminal text.
pub fn render_ansi(chart: &TimelineChart, opts: &AnsiOptions) -> String {
    let width = opts.width.max(10);
    let mut out = String::new();
    let _ = writeln!(out, "{}", chart.title);
    if !chart.subtitle.is_empty() {
        let _ = writeln!(out, "{}", chart.subtitle);
    }

    let n = chart.rows.len();
    let row_step = if opts.max_rows == 0 {
        1
    } else {
        n.div_ceil(opts.max_rows).max(1)
    };
    let label_width = chart
        .rows
        .iter()
        .step_by(row_step)
        .map(|r| r.label.len())
        .max()
        .unwrap_or(0)
        .min(16);

    for row in chart.rows.iter().step_by(row_step) {
        let cells = rasterize_row(chart, row, width);
        let mut label = row.label.clone();
        label.truncate(label_width);
        let _ = write!(out, "{label:>label_width$} ");
        for cell in cells {
            match cell {
                Some(c) if opts.color => {
                    let _ = write!(out, "\x1b[48;2;{};{};{}m \x1b[0m", c.r, c.g, c.b);
                }
                Some(c) => {
                    // Plain text: map luminance to a density character.
                    let ch = match c.luminance() as u32 {
                        0..=84 => '█',
                        85..=169 => '▓',
                        _ => '░',
                    };
                    out.push(ch);
                }
                None => out.push(' '),
            }
        }
        out.push('\n');
    }

    // Time axis.
    let _ = write!(out, "{:>label_width$} ", "");
    let t0 = chart.clock.timestamp_seconds(chart.begin);
    let t1 = chart.clock.timestamp_seconds(chart.end);
    let left = format!("{t0:.2}s");
    let right = format!("{t1:.2}s");
    let pad = width.saturating_sub(left.len() + right.len());
    let _ = writeln!(out, "{left}{}{right}", " ".repeat(pad));

    // Legends.
    if !chart.legend.is_empty() {
        let _ = write!(out, "legend:");
        for e in &chart.legend {
            if opts.color {
                let _ = write!(
                    out,
                    " \x1b[48;2;{};{};{}m  \x1b[0m {}",
                    e.color.r, e.color.g, e.color.b, e.label
                );
            } else {
                let _ = write!(out, " [{}]", e.label);
            }
        }
        out.push('\n');
    }
    if let Some(scale) = &chart.scale {
        let _ = writeln!(
            out,
            "scale: {} (cold/blue) → {} (hot/red)  [{}]",
            scale.min_label, scale.max_label, scale.quantity
        );
    }
    out
}

/// Downsamples one row into `width` cells; each cell takes the colour
/// covering the most time within it.
fn rasterize_row(chart: &TimelineChart, row: &Row, width: usize) -> Vec<Option<Color>> {
    let t0 = chart.begin.0 as f64;
    let t1 = (chart.end.0 as f64).max(t0 + 1.0);
    let cell_ticks = (t1 - t0) / width as f64;
    let mut cells: Vec<Option<(Color, f64)>> = vec![None; width];
    for s in &row.spans {
        let start = s.start.0 as f64;
        let end = (s.end.0 as f64).max(start + f64::EPSILON);
        let first = (((start - t0) / cell_ticks) as usize).min(width - 1);
        let last = (((end - t0) / cell_ticks) as usize).min(width - 1);
        for (cell, slot) in cells.iter_mut().enumerate().take(last + 1).skip(first) {
            let c0 = t0 + cell as f64 * cell_ticks;
            let c1 = c0 + cell_ticks;
            let overlap = (end.min(c1) - start.max(c0)).max(0.0);
            match slot {
                Some((_, t)) if *t >= overlap => {}
                _ => *slot = Some((s.color, overlap)),
            }
        }
    }
    cells.into_iter().map(|c| c.map(|(col, _)| col)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::{function_timeline, sos_heatmap, TimelineOptions};
    use perfvar_analysis::{analyze, AnalysisConfig};
    use perfvar_sim::prelude::*;
    use perfvar_sim::workloads::SingleOutlier;

    fn setup() -> (perfvar_trace::Trace, perfvar_analysis::Analysis) {
        let trace = simulate(&SingleOutlier::new(5, 6, 3).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        (trace, analysis)
    }

    #[test]
    fn renders_one_line_per_process_plus_chrome() {
        let (trace, analysis) = setup();
        let chart = sos_heatmap(&trace, &analysis);
        let text = render_ansi(
            &chart,
            &AnsiOptions {
                color: false,
                ..AnsiOptions::default()
            },
        );
        let lines: Vec<&str> = text.lines().collect();
        // title + subtitle + 5 rows + axis + scale line.
        assert_eq!(lines.len(), 2 + 5 + 1 + 1, "{text}");
        assert!(text.contains("SOS-time"));
        assert!(text.contains("cold/blue"));
    }

    #[test]
    fn color_mode_emits_escapes_plain_mode_does_not() {
        let (trace, analysis) = setup();
        let chart = sos_heatmap(&trace, &analysis);
        let colored = render_ansi(&chart, &AnsiOptions::default());
        assert!(colored.contains("\x1b[48;2;"));
        let plain = render_ansi(
            &chart,
            &AnsiOptions {
                color: false,
                ..AnsiOptions::default()
            },
        );
        assert!(!plain.contains('\x1b'));
    }

    #[test]
    fn row_thinning() {
        let trace = simulate(&SingleOutlier::new(30, 3, 7).spec()).unwrap();
        let chart = function_timeline(&trace, &TimelineOptions::default());
        let text = render_ansi(
            &chart,
            &AnsiOptions {
                max_rows: 10,
                color: false,
                ..AnsiOptions::default()
            },
        );
        let data_rows = text
            .lines()
            .filter(|l| l.trim_start().starts_with("rank"))
            .count();
        assert!(data_rows <= 10, "{data_rows} rows shown");
    }

    #[test]
    fn axis_shows_time_range() {
        let (trace, analysis) = setup();
        let chart = sos_heatmap(&trace, &analysis);
        let text = render_ansi(
            &chart,
            &AnsiOptions {
                color: false,
                ..AnsiOptions::default()
            },
        );
        assert!(text.contains("0.00s"));
    }

    #[test]
    fn rasterize_picks_dominant_color() {
        let (trace, analysis) = setup();
        let chart = sos_heatmap(&trace, &analysis);
        let cells = rasterize_row(&chart, &chart.rows[0], 50);
        assert_eq!(cells.len(), 50);
        // Full coverage: every cell painted.
        assert!(cells.iter().all(Option::is_some));
    }
}
