//! Self-contained HTML report assembly.
//!
//! Bundles the hotspot report text, ranked findings, and every chart
//! (inline SVG) into one `report.html` the analyst can open anywhere —
//! the closest single-file equivalent of a Vampir session for sharing.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One section of the report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ReportSection {
    /// A `<h2>` heading.
    Heading(String),
    /// Preformatted text (monospace).
    Text(String),
    /// A list of short lines (e.g. findings).
    List(Vec<String>),
    /// An inline SVG document.
    Svg(String),
}

/// A report under assembly.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HtmlReport {
    /// Page title.
    pub title: String,
    /// Sections, in order.
    pub sections: Vec<ReportSection>,
}

impl HtmlReport {
    /// Starts a report with a title.
    pub fn new(title: impl Into<String>) -> HtmlReport {
        HtmlReport {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a heading.
    pub fn heading(&mut self, text: impl Into<String>) -> &mut Self {
        self.sections.push(ReportSection::Heading(text.into()));
        self
    }

    /// Appends preformatted text.
    pub fn text(&mut self, text: impl Into<String>) -> &mut Self {
        self.sections.push(ReportSection::Text(text.into()));
        self
    }

    /// Appends a bullet list.
    pub fn list(&mut self, items: Vec<String>) -> &mut Self {
        self.sections.push(ReportSection::List(items));
        self
    }

    /// Appends an inline SVG chart (as produced by the SVG renderers).
    pub fn svg(&mut self, svg: impl Into<String>) -> &mut Self {
        self.sections.push(ReportSection::Svg(svg.into()));
        self
    }

    /// Renders the final standalone HTML document.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1 << 16);
        let _ = write!(
            out,
            "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
             <title>{}</title>\n<style>\n\
             body {{ font-family: Helvetica, Arial, sans-serif; margin: 2rem auto; \
             max-width: 1240px; color: #222; }}\n\
             h1 {{ border-bottom: 2px solid #ddd; padding-bottom: .3rem; }}\n\
             h2 {{ margin-top: 2rem; color: #444; }}\n\
             pre {{ background: #f7f7f4; padding: .8rem; overflow-x: auto; \
             border-radius: 4px; font-size: 13px; }}\n\
             ul {{ line-height: 1.6; }}\n\
             .chart {{ margin: 1rem 0; overflow-x: auto; }}\n\
             </style>\n</head>\n<body>\n<h1>{}</h1>\n",
            escape(&self.title),
            escape(&self.title)
        );
        for section in &self.sections {
            match section {
                ReportSection::Heading(h) => {
                    let _ = writeln!(out, "<h2>{}</h2>", escape(h));
                }
                ReportSection::Text(t) => {
                    let _ = writeln!(out, "<pre>{}</pre>", escape(t));
                }
                ReportSection::List(items) => {
                    let _ = writeln!(out, "<ul>");
                    for item in items {
                        let _ = writeln!(out, "<li>{}</li>", escape(item));
                    }
                    let _ = writeln!(out, "</ul>");
                }
                ReportSection::Svg(svg) => {
                    // SVG is trusted output of our own renderers; embed as-is.
                    let _ = writeln!(out, "<div class=\"chart\">{svg}</div>");
                }
            }
        }
        out.push_str("</body>\n</html>\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_sections_in_order() {
        let mut r = HtmlReport::new("demo");
        r.heading("First")
            .text("line one\nline two")
            .list(vec!["a".into(), "b".into()])
            .svg("<svg></svg>");
        let html = r.render();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<h1>demo</h1>"));
        let h = html.find("<h2>First</h2>").unwrap();
        let t = html.find("<pre>line one").unwrap();
        let l = html.find("<li>a</li>").unwrap();
        let s = html.find("<svg></svg>").unwrap();
        assert!(h < t && t < l && l < s);
        assert!(html.ends_with("</html>\n"));
    }

    #[test]
    fn escapes_text_but_not_svg() {
        let mut r = HtmlReport::new("a < b & c");
        r.text("2 < 3").svg("<svg><rect/></svg>");
        let html = r.render();
        assert!(html.contains("a &lt; b &amp; c"));
        assert!(html.contains("2 &lt; 3"));
        assert!(html.contains("<svg><rect/></svg>"));
    }

    #[test]
    fn empty_report_is_valid_shell() {
        let html = HtmlReport::new("empty").render();
        assert!(html.contains("<body>"));
        assert!(html.contains("</body>"));
    }
}
