//! SVG rendering of [`TimelineChart`]s.
//!
//! Produces standalone SVG documents: title, per-process rows of coloured
//! rectangles, message arrows, a time axis in seconds, categorical and/or
//! gradient legends. These are the direct stand-ins for the paper's
//! Vampir screenshots.

use crate::chart::TimelineChart;
use crate::color::HeatScale;
use perfvar_trace::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// SVG output options.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SvgOptions {
    /// Total image width in pixels.
    pub width: u32,
    /// Height of the plot area (rows) in pixels; total image height adds
    /// title/axis/legend space.
    pub plot_height: u32,
    /// Draw message arrows.
    pub draw_messages: bool,
}

impl Default for SvgOptions {
    fn default() -> SvgOptions {
        SvgOptions {
            width: 1200,
            plot_height: 480,
            draw_messages: true,
        }
    }
}

const MARGIN_LEFT: f64 = 110.0;
const MARGIN_RIGHT: f64 = 24.0;
const MARGIN_TOP: f64 = 56.0;
const AXIS_HEIGHT: f64 = 36.0;
const LEGEND_HEIGHT: f64 = 28.0;

/// Escapes a string for use in XML text/attributes.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders `chart` as a standalone SVG document.
pub fn render_svg(chart: &TimelineChart, opts: &SvgOptions) -> String {
    let plot_w = (opts.width as f64 - MARGIN_LEFT - MARGIN_RIGHT).max(10.0);
    let plot_h = opts.plot_height as f64;
    let n_rows = chart.rows.len().max(1);
    let row_h = plot_h / n_rows as f64;
    let has_legend = !chart.legend.is_empty() || chart.scale.is_some();
    let total_h =
        MARGIN_TOP + plot_h + AXIS_HEIGHT + if has_legend { LEGEND_HEIGHT } else { 0.0 } + 8.0;

    let t0 = chart.begin.0 as f64;
    let t1 = (chart.end.0 as f64).max(t0 + 1.0);
    let x_of = |t: Timestamp| -> f64 { MARGIN_LEFT + (t.0 as f64 - t0) / (t1 - t0) * plot_w };

    let mut svg = String::with_capacity(1 << 16);
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h:.0}" viewBox="0 0 {w} {h:.0}" font-family="Helvetica,Arial,sans-serif">"##,
        w = opts.width,
        h = total_h
    );
    let _ = write!(
        svg,
        r##"<rect width="100%" height="100%" fill="#ffffff"/>"##
    );
    // Title + subtitle.
    let _ = write!(
        svg,
        r##"<text x="{x}" y="22" font-size="16" font-weight="bold">{t}</text>"##,
        x = MARGIN_LEFT,
        t = xml_escape(&chart.title)
    );
    let _ = write!(
        svg,
        r##"<text x="{x}" y="40" font-size="11" fill="#555555">{t}</text>"##,
        x = MARGIN_LEFT,
        t = xml_escape(&chart.subtitle)
    );

    // Row labels: at most ~24 labels, evenly thinned.
    let label_step = n_rows.div_ceil(24).max(1);
    for (i, row) in chart.rows.iter().enumerate() {
        if i % label_step == 0 {
            let y = MARGIN_TOP + (i as f64 + 0.7) * row_h;
            let _ = write!(
                svg,
                r##"<text x="{x:.1}" y="{y:.1}" font-size="9" text-anchor="end" fill="#333333">{t}</text>"##,
                x = MARGIN_LEFT - 6.0,
                t = xml_escape(&row.label)
            );
        }
    }

    // Spans.
    let _ = write!(svg, r##"<g shape-rendering="crispEdges">"##);
    for (i, row) in chart.rows.iter().enumerate() {
        let y = MARGIN_TOP + i as f64 * row_h;
        let h = (row_h - row_h.min(1.0) * 0.15).max(0.5);
        for s in &row.spans {
            let x = x_of(s.start);
            let wpx = (x_of(s.end) - x).max(0.25);
            let _ = write!(
                svg,
                r##"<rect x="{x:.2}" y="{y:.2}" width="{wpx:.2}" height="{h:.2}" fill="{c}"/>"##,
                c = s.color.hex()
            );
        }
    }
    let _ = write!(svg, "</g>");

    // Message arrows.
    if opts.draw_messages && !chart.messages.is_empty() {
        let _ = write!(
            svg,
            r##"<g stroke="#000000" stroke-width="0.7" opacity="0.65">"##
        );
        for m in &chart.messages {
            let x1 = x_of(m.from_time);
            let y1 = MARGIN_TOP + (m.from_row as f64 + 0.5) * row_h;
            let x2 = x_of(m.to_time);
            let y2 = MARGIN_TOP + (m.to_row as f64 + 0.5) * row_h;
            let _ = write!(
                svg,
                r##"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}"/>"##
            );
        }
        let _ = write!(svg, "</g>");
    }

    // Time axis: ~6 ticks in seconds.
    let axis_y = MARGIN_TOP + plot_h;
    let _ = write!(
        svg,
        r##"<line x1="{x1}" y1="{y:.1}" x2="{x2:.1}" y2="{y:.1}" stroke="#888888"/>"##,
        x1 = MARGIN_LEFT,
        x2 = MARGIN_LEFT + plot_w,
        y = axis_y
    );
    let n_ticks = 6;
    for k in 0..=n_ticks {
        let t = t0 + (t1 - t0) * k as f64 / n_ticks as f64;
        let x = MARGIN_LEFT + plot_w * k as f64 / n_ticks as f64;
        let secs = t / chart.clock.ticks_per_second as f64;
        let _ = write!(
            svg,
            r##"<line x1="{x:.1}" y1="{y:.1}" x2="{x:.1}" y2="{y2:.1}" stroke="#888888"/>"##,
            y = axis_y,
            y2 = axis_y + 4.0
        );
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{ty:.1}" font-size="10" text-anchor="middle" fill="#333333">{secs:.3} s</text>"##,
            ty = axis_y + 16.0
        );
    }

    // Legends.
    let legend_y = axis_y + AXIS_HEIGHT;
    if !chart.legend.is_empty() {
        let mut x = MARGIN_LEFT;
        for entry in &chart.legend {
            let _ = write!(
                svg,
                r##"<rect x="{x:.1}" y="{y:.1}" width="12" height="12" fill="{c}"/>"##,
                y = legend_y,
                c = entry.color.hex()
            );
            let _ = write!(
                svg,
                r##"<text x="{tx:.1}" y="{ty:.1}" font-size="10" fill="#333333">{t}</text>"##,
                tx = x + 16.0,
                ty = legend_y + 10.0,
                t = xml_escape(&entry.label)
            );
            x += 16.0 + 7.0 * entry.label.len() as f64 + 18.0;
        }
    }
    if let Some(scale) = &chart.scale {
        // Gradient bar: 20 discrete steps of the heat scale.
        let bar_x = MARGIN_LEFT;
        let bar_w = 240.0;
        let steps = 20;
        for k in 0..steps {
            let c = HeatScale.color(k as f64 / (steps - 1) as f64);
            let _ = write!(
                svg,
                r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="10" fill="{c}"/>"##,
                x = bar_x + bar_w * k as f64 / steps as f64,
                y = legend_y,
                w = bar_w / steps as f64 + 0.5,
                c = c.hex()
            );
        }
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{y:.1}" font-size="10" text-anchor="end" fill="#333333">{t}</text>"##,
            x = bar_x - 6.0,
            y = legend_y + 9.0,
            t = xml_escape(&scale.min_label)
        );
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{y:.1}" font-size="10" fill="#333333">{t}</text>"##,
            x = bar_x + bar_w + 6.0,
            y = legend_y + 9.0,
            t = xml_escape(&scale.max_label)
        );
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{y:.1}" font-size="10" fill="#555555">{t}</text>"##,
            x = bar_x + bar_w + 80.0,
            y = legend_y + 9.0,
            t = xml_escape(&scale.quantity)
        );
    }

    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chart::{function_timeline, sos_heatmap, TimelineOptions};
    use perfvar_analysis::{analyze, AnalysisConfig};
    use perfvar_sim::prelude::*;
    use perfvar_sim::workloads::SingleOutlier;

    fn sample_chart() -> TimelineChart {
        let trace = simulate(&SingleOutlier::new(3, 5, 1).spec()).unwrap();
        function_timeline(&trace, &TimelineOptions::default())
    }

    #[test]
    fn produces_wellformed_svg_shell() {
        let svg = render_svg(&sample_chart(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("Timeline"));
        // Balanced rect open/close (self-closing tags).
        assert!(svg.matches("<rect").count() > 3);
    }

    #[test]
    fn heatmap_svg_contains_gradient_legend() {
        let trace = simulate(&SingleOutlier::new(3, 5, 1).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let svg = render_svg(&sos_heatmap(&trace, &analysis), &SvgOptions::default());
        assert!(svg.contains("SOS-time"));
        // Gradient bar = 20 extra rects plus segments.
        assert!(svg.matches("<rect").count() > 20);
    }

    #[test]
    fn axis_ticks_present_in_seconds() {
        let svg = render_svg(&sample_chart(), &SvgOptions::default());
        assert!(svg.contains(" s</text>"));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
        let mut chart = sample_chart();
        chart.title = "bad <title> & stuff".into();
        let svg = render_svg(&chart, &SvgOptions::default());
        assert!(svg.contains("bad &lt;title&gt; &amp; stuff"));
        assert!(!svg.contains("bad <title>"));
    }

    #[test]
    fn messages_toggle() {
        let trace = simulate(&workloads::CosmoSpecsFd4::small(4, 1).spec()).unwrap();
        let chart = function_timeline(&trace, &TimelineOptions::default());
        let with = render_svg(
            &chart,
            &SvgOptions {
                draw_messages: true,
                ..SvgOptions::default()
            },
        );
        let without = render_svg(
            &chart,
            &SvgOptions {
                draw_messages: false,
                ..SvgOptions::default()
            },
        );
        assert!(with.contains("<line x1"));
        assert!(with.len() > without.len());
    }

    #[test]
    fn empty_chart_renders() {
        let chart = TimelineChart {
            title: "empty".into(),
            subtitle: String::new(),
            clock: perfvar_trace::Clock::microseconds(),
            begin: perfvar_trace::Timestamp(0),
            end: perfvar_trace::Timestamp(0),
            rows: Vec::new(),
            messages: Vec::new(),
            legend: Vec::new(),
            scale: None,
        };
        let svg = render_svg(&chart, &SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }
}
