//! Summary charts: function profiles, per-process load, SOS histograms.
//!
//! Vampir pairs its timelines with summary panels ("function summary",
//! per-process profiles); the paper's analysts read those to confirm
//! what the heatmap shows (e.g. "basic Vampir statistics for the
//! iterations show a 25 % fraction of MPI activities"). This module
//! provides the same companions: bar charts of exclusive time per
//! function and of total SOS per process, and a histogram of SOS values.

use crate::color::{Color, ColorScale, FunctionPalette};
use perfvar_analysis::profile::ProfileTable;
use perfvar_analysis::Analysis;
use perfvar_trace::{ProcessId, Trace};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One bar.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Bar {
    /// Bar label.
    pub label: String,
    /// Bar value (ticks or counts).
    pub value: f64,
    /// Bar colour.
    pub color: Color,
}

/// A horizontal bar chart.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Unit label appended to values.
    pub unit: String,
    /// Bars, top to bottom.
    pub bars: Vec<Bar>,
}

/// A histogram over equal-width bins.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Chart title.
    pub title: String,
    /// Left edge of the first bin.
    pub min: f64,
    /// Right edge of the last bin.
    pub max: f64,
    /// Bin counts.
    pub counts: Vec<usize>,
}

/// Builds the function summary: exclusive time per function, descending,
/// top `max_bars` entries (the classic Vampir "Function Summary" panel).
pub fn function_summary(trace: &Trace, profiles: &ProfileTable, max_bars: usize) -> BarChart {
    let palette = FunctionPalette;
    let registry = trace.registry();
    let mut entries: Vec<(perfvar_trace::FunctionId, u64)> = profiles
        .iter()
        .filter(|(_, p)| p.count > 0)
        .map(|(f, p)| (f, p.exclusive.0))
        .collect();
    entries.sort_by_key(|(f, v)| (std::cmp::Reverse(*v), f.0));
    let bars = entries
        .into_iter()
        .take(max_bars)
        .map(|(f, v)| Bar {
            label: registry.function_name(f).to_string(),
            value: v as f64,
            color: palette.function_color(f.index(), registry.function_role(f)),
        })
        .collect();
    BarChart {
        title: format!("Function summary — {}", trace.name),
        unit: "ticks (exclusive)".to_string(),
        bars,
    }
}

/// Builds the per-process computational-load chart: total SOS-time per
/// process, coloured on the heat scale (so the overloaded rank is red
/// here too).
pub fn process_load_chart(trace: &Trace, analysis: &Analysis) -> BarChart {
    let totals = analysis.sos.process_totals();
    let scale = ColorScale::from_values(totals.iter().map(|d| d.0 as f64));
    let registry = trace.registry();
    let bars = totals
        .iter()
        .enumerate()
        .map(|(i, d)| Bar {
            label: registry.process(ProcessId::from_index(i)).name.clone(),
            value: d.0 as f64,
            color: scale.heat(d.0 as f64),
        })
        .collect();
    BarChart {
        title: format!("Per-process SOS-time — {}", trace.name),
        unit: "ticks (total SOS)".to_string(),
        bars,
    }
}

/// Builds a histogram of all SOS values in the analysis.
///
/// # Panics
/// Panics if `bins` is zero.
pub fn sos_histogram(analysis: &Analysis, bins: usize) -> Histogram {
    assert!(bins > 0, "need at least one bin");
    let values: Vec<f64> = analysis
        .sos
        .iter_sos()
        .map(|(_, _, v)| v.0 as f64)
        .collect();
    let (min, max) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if values.is_empty() || min > max {
        return Histogram {
            title: "SOS-time distribution".to_string(),
            min: 0.0,
            max: 1.0,
            counts: vec![0; bins],
        };
    }
    let width = ((max - min) / bins as f64).max(f64::EPSILON);
    let mut counts = vec![0usize; bins];
    for v in values {
        let b = (((v - min) / width) as usize).min(bins - 1);
        counts[b] += 1;
    }
    Histogram {
        title: "SOS-time distribution".to_string(),
        min,
        max,
        counts,
    }
}

/// Renders a bar chart as a standalone SVG document.
pub fn render_bar_svg(chart: &BarChart, width: u32) -> String {
    let bar_h = 18.0;
    let gap = 4.0;
    let label_w = 150.0;
    let margin = 16.0;
    let title_h = 30.0;
    let n = chart.bars.len();
    let total_h = title_h + n as f64 * (bar_h + gap) + margin * 2.0;
    let plot_w = width as f64 - label_w - margin * 2.0 - 90.0;
    let vmax = chart
        .bars
        .iter()
        .map(|b| b.value)
        .fold(f64::EPSILON, f64::max);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{total_h:.0}" font-family="Helvetica,Arial,sans-serif">"##
    );
    let _ = write!(
        svg,
        r##"<rect width="100%" height="100%" fill="#ffffff"/>"##
    );
    let _ = write!(
        svg,
        r##"<text x="{margin}" y="20" font-size="14" font-weight="bold">{}</text>"##,
        xml(&chart.title)
    );
    for (i, bar) in chart.bars.iter().enumerate() {
        let y = title_h + i as f64 * (bar_h + gap) + margin;
        let w = (bar.value / vmax * plot_w).max(0.5);
        let _ = write!(
            svg,
            r##"<text x="{lx:.1}" y="{ty:.1}" font-size="10" text-anchor="end" fill="#333333">{label}</text>"##,
            lx = margin + label_w - 6.0,
            ty = y + bar_h * 0.7,
            label = xml(&bar.label)
        );
        let _ = write!(
            svg,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{bar_h}" fill="{c}"/>"##,
            x = margin + label_w,
            c = bar.color.hex()
        );
        let _ = write!(
            svg,
            r##"<text x="{vx:.1}" y="{ty:.1}" font-size="10" fill="#555555">{v:.0} {unit}</text>"##,
            vx = margin + label_w + w + 6.0,
            ty = y + bar_h * 0.7,
            v = bar.value,
            unit = xml(&chart.unit)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders a histogram as a standalone SVG document.
pub fn render_histogram_svg(hist: &Histogram, width: u32, height: u32) -> String {
    let margin = 32.0;
    let title_h = 26.0;
    let plot_w = width as f64 - 2.0 * margin;
    let plot_h = height as f64 - 2.0 * margin - title_h;
    let cmax = hist.counts.iter().copied().max().unwrap_or(0).max(1) as f64;
    let n = hist.counts.len().max(1);
    let bar_w = plot_w / n as f64;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="Helvetica,Arial,sans-serif">"##
    );
    let _ = write!(
        svg,
        r##"<rect width="100%" height="100%" fill="#ffffff"/>"##
    );
    let _ = write!(
        svg,
        r##"<text x="{margin}" y="18" font-size="13" font-weight="bold">{}</text>"##,
        xml(&hist.title)
    );
    for (i, &count) in hist.counts.iter().enumerate() {
        let h = count as f64 / cmax * plot_h;
        let x = margin + i as f64 * bar_w;
        let y = title_h + margin + (plot_h - h);
        let _ = write!(
            svg,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="#4878b8"/>"##,
            w = (bar_w - 1.0).max(0.5)
        );
    }
    let base = title_h + margin + plot_h;
    let _ = write!(
        svg,
        r##"<line x1="{margin}" y1="{base:.1}" x2="{x2:.1}" y2="{base:.1}" stroke="#888888"/>"##,
        x2 = margin + plot_w
    );
    let _ = write!(
        svg,
        r##"<text x="{margin}" y="{ty:.1}" font-size="10" fill="#333333">{v:.0}</text>"##,
        ty = base + 14.0,
        v = hist.min
    );
    let _ = write!(
        svg,
        r##"<text x="{x:.1}" y="{ty:.1}" font-size="10" text-anchor="end" fill="#333333">{v:.0}</text>"##,
        x = margin + plot_w,
        ty = base + 14.0,
        v = hist.max
    );
    svg.push_str("</svg>");
    svg
}

/// A line chart of one or more series over a shared x index.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesChart {
    /// Chart title.
    pub title: String,
    /// X-axis label (e.g. "iteration").
    pub x_label: String,
    /// Named series (label, values, colour).
    pub series: Vec<(String, Vec<f64>, Color)>,
}

/// Builds the per-ordinal duration and SOS series of an analysis — the
/// "which iteration is slow?" view behind the paper's Fig. 5(a)
/// discussion.
pub fn ordinal_series_chart(analysis: &Analysis) -> SeriesChart {
    SeriesChart {
        title: "Mean segment duration and SOS-time per iteration".to_string(),
        x_label: "segment ordinal".to_string(),
        series: vec![
            (
                "duration".to_string(),
                analysis.sos.duration_by_ordinal(),
                Color::rgb(0x88, 0x55, 0x2b),
            ),
            (
                "SOS".to_string(),
                analysis.sos.sos_by_ordinal(),
                Color::rgb(0x2b, 0x6f, 0xd9),
            ),
        ],
    }
}

/// Renders a series chart as a standalone SVG document.
pub fn render_series_svg(chart: &SeriesChart, width: u32, height: u32) -> String {
    let margin = 40.0;
    let title_h = 26.0;
    let plot_w = width as f64 - 2.0 * margin;
    let plot_h = height as f64 - 2.0 * margin - title_h;
    let n = chart
        .series
        .iter()
        .map(|(_, v, _)| v.len())
        .max()
        .unwrap_or(0);
    let vmax = chart
        .series
        .iter()
        .flat_map(|(_, v, _)| v.iter().copied())
        .fold(f64::EPSILON, f64::max);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="Helvetica,Arial,sans-serif">"##
    );
    let _ = write!(
        svg,
        r##"<rect width="100%" height="100%" fill="#ffffff"/>"##
    );
    let _ = write!(
        svg,
        r##"<text x="{margin}" y="18" font-size="13" font-weight="bold">{}</text>"##,
        xml(&chart.title)
    );
    let base = title_h + margin + plot_h;
    let _ = write!(
        svg,
        r##"<line x1="{margin}" y1="{base:.1}" x2="{x2:.1}" y2="{base:.1}" stroke="#888888"/>"##,
        x2 = margin + plot_w
    );
    for (si, (label, values, color)) in chart.series.iter().enumerate() {
        if values.is_empty() {
            continue;
        }
        let points: Vec<String> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let x = margin
                    + if n > 1 {
                        plot_w * i as f64 / (n - 1) as f64
                    } else {
                        plot_w / 2.0
                    };
                let y = base - (v / vmax) * plot_h;
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let _ = write!(
            svg,
            r##"<polyline points="{}" fill="none" stroke="{}" stroke-width="1.5"/>"##,
            points.join(" "),
            color.hex()
        );
        let _ = write!(
            svg,
            r##"<text x="{x:.1}" y="{y:.1}" font-size="10" fill="{c}">{t}</text>"##,
            x = margin + 6.0 + si as f64 * 80.0,
            y = title_h + 12.0,
            c = color.hex(),
            t = xml(label)
        );
    }
    let _ = write!(
        svg,
        r##"<text x="{x:.1}" y="{y:.1}" font-size="10" text-anchor="middle" fill="#555555">{t}</text>"##,
        x = margin + plot_w / 2.0,
        y = base + 18.0,
        t = xml(&chart.x_label)
    );
    svg.push_str("</svg>");
    svg
}

fn xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvar_analysis::invocation::replay_all;
    use perfvar_analysis::{analyze, AnalysisConfig};
    use perfvar_sim::prelude::*;
    use perfvar_sim::workloads::SingleOutlier;

    fn setup() -> (perfvar_trace::Trace, Analysis) {
        let trace = simulate(&SingleOutlier::new(5, 8, 2).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        (trace, analysis)
    }

    #[test]
    fn function_summary_orders_by_exclusive_time() {
        let (trace, _) = setup();
        let profiles = ProfileTable::from_invocations(&trace, &replay_all(&trace));
        let chart = function_summary(&trace, &profiles, 10);
        assert!(!chart.bars.is_empty());
        for w in chart.bars.windows(2) {
            assert!(w[0].value >= w[1].value);
        }
        // Compute dominates this workload's exclusive time.
        assert_eq!(chart.bars[0].label, "compute");
    }

    #[test]
    fn function_summary_caps_bars() {
        let (trace, _) = setup();
        let profiles = ProfileTable::from_invocations(&trace, &replay_all(&trace));
        let chart = function_summary(&trace, &profiles, 2);
        assert_eq!(chart.bars.len(), 2);
    }

    #[test]
    fn process_load_chart_highlights_hot_rank() {
        let (trace, analysis) = setup();
        let chart = process_load_chart(&trace, &analysis);
        assert_eq!(chart.bars.len(), 5);
        // The outlier rank (2) has the largest value and the reddest bar.
        let max_bar = chart
            .bars
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.value.total_cmp(&b.1.value))
            .unwrap();
        assert_eq!(max_bar.0, 2);
        assert!(max_bar.1.color.r > max_bar.1.color.b);
    }

    #[test]
    fn histogram_counts_everything() {
        let (_, analysis) = setup();
        let hist = sos_histogram(&analysis, 10);
        let total: usize = hist.counts.iter().sum();
        assert_eq!(total, analysis.segmentation.len());
        assert!(hist.min <= hist.max);
    }

    #[test]
    fn histogram_of_empty_analysis_is_zeroed() {
        // Build an analysis-like histogram from no values via an empty
        // segmentation: segment by a function that has no invocations is
        // impossible through analyze(), so check the degenerate branch
        // directly with one-segment data collapsed to a constant.
        let (_, analysis) = setup();
        let hist = sos_histogram(&analysis, 3);
        assert_eq!(hist.counts.len(), 3);
    }

    #[test]
    fn bar_svg_renders() {
        let (trace, analysis) = setup();
        let chart = process_load_chart(&trace, &analysis);
        let svg = render_bar_svg(&chart, 800);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.contains("rank 2"));
        assert!(svg.matches("<rect").count() >= 6);
    }

    #[test]
    fn histogram_svg_renders() {
        let (_, analysis) = setup();
        let svg = render_histogram_svg(&sos_histogram(&analysis, 12), 640, 320);
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert!(svg.matches("<rect").count() >= 12);
    }

    #[test]
    fn series_chart_tracks_ordinals() {
        let (_, analysis) = setup();
        let chart = ordinal_series_chart(&analysis);
        assert_eq!(chart.series.len(), 2);
        let (label, durations, _) = &chart.series[0];
        assert_eq!(label, "duration");
        assert_eq!(durations.len(), 8); // 8 iterations
                                        // The outlier iteration (ordinal 4 = iterations/2) dominates.
        let max_i = durations
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_i, 4);
        let svg = render_series_svg(&chart, 640, 320);
        assert!(svg.contains("<polyline"));
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
    }

    #[test]
    fn empty_series_renders() {
        let chart = SeriesChart {
            title: "empty".into(),
            x_label: "x".into(),
            series: vec![("a".into(), vec![], Color::rgb(0, 0, 0))],
        };
        let svg = render_series_svg(&chart, 320, 200);
        assert!(svg.ends_with("</svg>"));
        assert!(!svg.contains("<polyline"));
    }

    #[test]
    fn labels_are_escaped() {
        let chart = BarChart {
            title: "a & b".into(),
            unit: "<ticks>".into(),
            bars: vec![Bar {
                label: "f<1>".into(),
                value: 5.0,
                color: Color::rgb(10, 20, 30),
            }],
        };
        let svg = render_bar_svg(&chart, 400);
        assert!(svg.contains("a &amp; b"));
        assert!(svg.contains("f&lt;1&gt;"));
        assert!(!svg.contains("f<1>"));
    }
}
