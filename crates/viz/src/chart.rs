//! Chart model and chart builders.
//!
//! A [`TimelineChart`] is renderer-independent data: one row per process,
//! coloured spans on a shared time axis, optional message arrows, a
//! categorical legend and/or a continuous colour-scale legend. The three
//! builders produce the chart types used by the paper's figures.

use crate::color::{Color, ColorScale, FunctionPalette, HeatScale};
use perfvar_analysis::{Analysis, CounterMatrix, Diagnosis};
use perfvar_trace::{Clock, Event, FunctionId, ProcessId, Timestamp, Trace, TraceMeta};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One coloured interval on a row.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Interval start.
    pub start: Timestamp,
    /// Interval end.
    pub end: Timestamp,
    /// Fill colour.
    pub color: Color,
}

/// One chart row (a process).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (process name).
    pub label: String,
    /// Spans in time order.
    pub spans: Vec<Span>,
}

/// A point-to-point message drawn as an arrow (the paper's "black
/// lines").
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MessageArrow {
    /// Sending process row.
    pub from_row: usize,
    /// Send timestamp.
    pub from_time: Timestamp,
    /// Receiving process row.
    pub to_row: usize,
    /// Receive timestamp.
    pub to_time: Timestamp,
}

/// A categorical legend entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LegendEntry {
    /// Display label.
    pub label: String,
    /// Swatch colour.
    pub color: Color,
}

/// A continuous colour-scale legend (for metric heatmaps).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScaleLegend {
    /// Label of the cold end.
    pub min_label: String,
    /// Label of the hot end.
    pub max_label: String,
    /// Quantity description, e.g. `"SOS-time"`.
    pub quantity: String,
}

/// A renderer-independent timeline chart.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimelineChart {
    /// Chart title.
    pub title: String,
    /// Secondary line under the title.
    pub subtitle: String,
    /// Clock for axis formatting.
    pub clock: Clock,
    /// Time-axis start.
    pub begin: Timestamp,
    /// Time-axis end.
    pub end: Timestamp,
    /// Rows, one per process.
    pub rows: Vec<Row>,
    /// Message arrows.
    pub messages: Vec<MessageArrow>,
    /// Categorical legend.
    pub legend: Vec<LegendEntry>,
    /// Continuous scale legend.
    pub scale: Option<ScaleLegend>,
}

/// Options for the chart builders.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TimelineOptions {
    /// Number of time buckets per row for the function timeline: each
    /// bucket is coloured by the function holding the most time in it
    /// (how real trace browsers render beyond pixel resolution).
    pub buckets: usize,
    /// Include message arrows.
    pub include_messages: bool,
    /// Cap on rendered message arrows (uniformly thinned above this).
    pub max_messages: usize,
    /// Cap on categorical legend entries (top by total time).
    pub max_legend: usize,
}

impl Default for TimelineOptions {
    fn default() -> TimelineOptions {
        TimelineOptions {
            buckets: 960,
            include_messages: true,
            max_messages: 512,
            max_legend: 8,
        }
    }
}

/// Builds the master-timeline chart (Figs. 4(a), 5(a), 6(a)): every
/// process row shows the dominant activity per time bucket, coloured by
/// the [`FunctionPalette`].
pub fn function_timeline(trace: &Trace, opts: &TimelineOptions) -> TimelineChart {
    let palette = FunctionPalette;
    let begin = trace.begin();
    let end = trace.end();
    let span = (end.0 - begin.0).max(1);
    let buckets = opts.buckets.max(1);
    let bucket_width = span.div_ceil(buckets as u64).max(1);
    let registry = trace.registry();

    let mut function_ticks: HashMap<FunctionId, u64> = HashMap::new();
    let mut rows = Vec::with_capacity(trace.num_processes());
    for stream in trace.streams() {
        // ticks[bucket][function] accumulated from the stack replay.
        let mut ticks: Vec<HashMap<FunctionId, u64>> = vec![HashMap::new(); buckets];
        let mut stack: Vec<FunctionId> = Vec::new();
        let mut last: Option<Timestamp> = None;
        for r in stream.records() {
            if let (Some(prev), Some(&top)) = (last, stack.last()) {
                let mut start = prev.0 - begin.0;
                let stop = r.time.0 - begin.0;
                while start < stop {
                    let b = ((start / bucket_width) as usize).min(buckets - 1);
                    let boundary = if b == buckets - 1 {
                        u64::MAX
                    } else {
                        (b as u64 + 1) * bucket_width
                    };
                    let chunk_end = stop.min(boundary);
                    *ticks[b].entry(top).or_insert(0) += chunk_end - start;
                    *function_ticks.entry(top).or_insert(0) += chunk_end - start;
                    start = chunk_end;
                }
            }
            last = Some(r.time);
            match r.event {
                Event::Enter { function } => stack.push(function),
                Event::Leave { .. } => {
                    stack.pop();
                }
                _ => {}
            }
        }
        // Dominant function per bucket → colour; merge equal neighbours.
        let mut spans: Vec<Span> = Vec::new();
        for (b, bucket) in ticks.iter().enumerate() {
            let Some((&f, _)) = bucket
                .iter()
                .max_by_key(|(f, &t)| (t, std::cmp::Reverse(f.0)))
            else {
                continue;
            };
            let color = palette.function_color(f.index(), registry.function_role(f));
            let start = Timestamp(begin.0 + b as u64 * bucket_width);
            let stop = Timestamp((begin.0 + (b as u64 + 1) * bucket_width).min(end.0));
            match spans.last_mut() {
                Some(prev) if prev.color == color && prev.end == start => prev.end = stop,
                _ => spans.push(Span {
                    start,
                    end: stop,
                    color,
                }),
            }
        }
        rows.push(Row {
            label: registry.process(stream.process).name.clone(),
            spans,
        });
    }

    // Legend: top functions by total ticks.
    let mut by_ticks: Vec<(FunctionId, u64)> = function_ticks.into_iter().collect();
    by_ticks.sort_by_key(|(f, t)| (std::cmp::Reverse(*t), f.0));
    let legend = by_ticks
        .iter()
        .take(opts.max_legend)
        .map(|(f, _)| LegendEntry {
            label: registry.function_name(*f).to_string(),
            color: palette.function_color(f.index(), registry.function_role(*f)),
        })
        .collect();

    let messages = if opts.include_messages {
        collect_messages(trace, opts.max_messages)
    } else {
        Vec::new()
    };

    TimelineChart {
        title: format!("Timeline — {}", trace.name),
        subtitle: format!(
            "{} processes, {}",
            trace.num_processes(),
            trace.clock().format_duration(trace.span())
        ),
        clock: trace.clock(),
        begin,
        end,
        rows,
        messages,
        legend,
        scale: None,
    }
}

/// Matches send/receive endpoints into arrows (via
/// [`MessageAnalysis`](perfvar_analysis::messages::MessageAnalysis)),
/// uniformly thinned to `max_messages`.
fn collect_messages(trace: &Trace, max_messages: usize) -> Vec<MessageArrow> {
    let analysis = perfvar_analysis::messages::MessageAnalysis::match_trace(trace);
    let mut arrows: Vec<MessageArrow> = analysis
        .messages
        .iter()
        .map(|m| MessageArrow {
            from_row: m.from.index(),
            from_time: m.send_time,
            to_row: m.to.index(),
            to_time: m.recv_time,
        })
        .collect();
    if arrows.len() > max_messages && max_messages > 0 {
        let step = arrows.len().div_ceil(max_messages);
        arrows = arrows.into_iter().step_by(step).collect();
    }
    arrows
}

/// Builds the SOS-time heatmap (Figs. 4(b), 5(b), 5(c), 6(b)): every
/// segment of the analysis coloured on the cold→hot scale by its
/// SOS-time. This is the paper's §VI visualization.
///
/// Rows with more segments than [`TimelineOptions::buckets`] of the
/// default options are downsampled per bucket keeping the **maximum**
/// SOS value — hot cells survive any zoom level (never average a
/// hotspot away).
pub fn sos_heatmap(trace: &Trace, analysis: &Analysis) -> TimelineChart {
    sos_heatmap_with(trace, analysis, TimelineOptions::default().buckets)
}

/// [`sos_heatmap`] with an explicit per-row segment budget.
pub fn sos_heatmap_with(
    trace: &Trace,
    analysis: &Analysis,
    max_spans_per_row: usize,
) -> TimelineChart {
    let scale = ColorScale::from_values(analysis.sos.iter_sos().map(|(_, _, v)| v.0 as f64));
    let registry = trace.registry();
    let rows = (0..analysis.segmentation.num_processes())
        .map(|p| {
            let pid = ProcessId::from_index(p);
            let segments = analysis.segmentation.process(pid);
            let spans = if segments.len() <= max_spans_per_row.max(1) {
                segments
                    .iter()
                    .map(|s| Span {
                        start: s.enter,
                        end: s.leave,
                        color: scale.heat(s.sos().0 as f64),
                    })
                    .collect()
            } else {
                // Merge consecutive segments into ≤ max_spans buckets,
                // coloured by the hottest member.
                let per_bucket = segments.len().div_ceil(max_spans_per_row.max(1));
                segments
                    .chunks(per_bucket)
                    .map(|chunk| {
                        let hottest = chunk.iter().map(|s| s.sos().0).max().unwrap_or(0);
                        Span {
                            start: chunk.first().unwrap().enter,
                            end: chunk.last().unwrap().leave,
                            color: scale.heat(hottest as f64),
                        }
                    })
                    .collect()
            };
            Row {
                label: registry.process(pid).name.clone(),
                spans,
            }
        })
        .collect();
    let clock = trace.clock();
    TimelineChart {
        title: format!("SOS-time — {}", trace.name),
        subtitle: format!(
            "segments = invocations of {:?}",
            registry.function_name(analysis.function)
        ),
        clock,
        begin: trace.begin(),
        end: trace.end(),
        rows,
        messages: Vec::new(),
        legend: Vec::new(),
        scale: Some(ScaleLegend {
            min_label: clock.format_duration(perfvar_trace::DurationTicks(scale.min as u64)),
            max_label: clock.format_duration(perfvar_trace::DurationTicks(scale.max as u64)),
            quantity: "SOS-time".to_string(),
        }),
    }
}

/// Builds the cluster-summarised SOS heatmap: **one row per behaviour
/// cluster** of a [`Diagnosis`], showing the representative rank's
/// segments on the same cold→hot scale as [`sos_heatmap`]. This is what
/// makes 10k–100k-rank runs readable — the diagnosis caps the cluster
/// count, so the chart height is bounded no matter the rank count, and
/// the row label carries the cluster size and the spread band (the
/// relative stddev of the members' total SOS) so summarisation never
/// hides how tight a cluster is.
///
/// Works from [`TraceMeta`] rather than a full trace: the diagnose path
/// is out-of-core and never materialises the events.
pub fn cluster_heatmap(
    meta: &TraceMeta,
    analysis: &Analysis,
    diagnosis: &Diagnosis,
    max_spans_per_row: usize,
) -> TimelineChart {
    let scale = ColorScale::from_values(analysis.sos.iter_sos().map(|(_, _, v)| v.0 as f64));
    let rows = diagnosis
        .clusters
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let rep = c.representative;
            let segments = analysis.segmentation.process(rep);
            let spans = if segments.len() <= max_spans_per_row.max(1) {
                segments
                    .iter()
                    .map(|s| Span {
                        start: s.enter,
                        end: s.leave,
                        color: scale.heat(s.sos().0 as f64),
                    })
                    .collect()
            } else {
                // Same keep-max downsampling as the per-rank heatmap:
                // hot cells survive any zoom level.
                let per_bucket = segments.len().div_ceil(max_spans_per_row.max(1));
                segments
                    .chunks(per_bucket)
                    .map(|chunk| {
                        let hottest = chunk.iter().map(|s| s.sos().0).max().unwrap_or(0);
                        Span {
                            start: chunk.first().unwrap().enter,
                            end: chunk.last().unwrap().leave,
                            color: scale.heat(hottest as f64),
                        }
                    })
                    .collect()
            };
            let band = if c.spread.mean > 0.0 {
                format!(" ±{:.0}%", c.spread.stddev / c.spread.mean * 100.0)
            } else {
                String::new()
            };
            Row {
                label: format!("c{i} ×{} {rep}{band}", c.members.len()),
                spans,
            }
        })
        .collect();
    let clock = meta.clock;
    TimelineChart {
        title: format!("Cluster SOS-time — {}", meta.name),
        subtitle: format!(
            "{} processes in {} behaviour cluster(s); segments = invocations of {:?}",
            diagnosis.num_processes,
            diagnosis.clusters.len(),
            diagnosis.function
        ),
        clock,
        begin: meta.begin,
        end: meta.end,
        rows,
        messages: Vec::new(),
        legend: Vec::new(),
        scale: Some(ScaleLegend {
            min_label: clock.format_duration(perfvar_trace::DurationTicks(scale.min as u64)),
            max_label: clock.format_duration(perfvar_trace::DurationTicks(scale.max as u64)),
            quantity: "SOS-time".to_string(),
        }),
    }
}

/// Builds a counter heatmap (Fig. 6(c)): segments coloured by the
/// attributed value of `counter`.
pub fn counter_heatmap(
    trace: &Trace,
    analysis: &Analysis,
    counter: &CounterMatrix,
) -> TimelineChart {
    let scale = ColorScale::from_values(counter.iter().map(|(_, _, v)| v as f64));
    let registry = trace.registry();
    let metric_def = registry.metric(counter.metric);
    let rows = (0..analysis.segmentation.num_processes())
        .map(|p| {
            let pid = ProcessId::from_index(p);
            let spans = analysis
                .segmentation
                .process(pid)
                .iter()
                .enumerate()
                .map(|(i, s)| Span {
                    start: s.enter,
                    end: s.leave,
                    color: scale.heat(counter.value(pid, i).unwrap_or(0) as f64),
                })
                .collect();
            Row {
                label: registry.process(pid).name.clone(),
                spans,
            }
        })
        .collect();
    TimelineChart {
        title: format!("{} — {}", metric_def.name, trace.name),
        subtitle: format!(
            "per segment of {:?}",
            registry.function_name(analysis.function)
        ),
        clock: trace.clock(),
        begin: trace.begin(),
        end: trace.end(),
        rows,
        messages: Vec::new(),
        legend: Vec::new(),
        scale: Some(ScaleLegend {
            min_label: format!("{} {}", scale.min as u64, metric_def.unit),
            max_label: format!("{} {}", scale.max as u64, metric_def.unit),
            quantity: metric_def.name.clone(),
        }),
    }
}

/// The hottest colour the heat scale can produce — exposed so tests and
/// the experiment harness can locate "red" cells.
pub fn hottest_color() -> Color {
    HeatScale.color(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvar_analysis::{analyze, AnalysisConfig};
    use perfvar_sim::prelude::*;
    use perfvar_sim::workloads::SingleOutlier;

    fn outlier_setup() -> (perfvar_trace::Trace, Analysis) {
        let trace = simulate(&SingleOutlier::new(4, 6, 2).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        (trace, analysis)
    }

    #[test]
    fn function_timeline_has_row_per_process() {
        let (trace, _) = outlier_setup();
        let chart = function_timeline(&trace, &TimelineOptions::default());
        assert_eq!(chart.rows.len(), 4);
        assert!(!chart.legend.is_empty());
        assert!(chart.rows.iter().all(|r| !r.spans.is_empty()));
        // Spans lie within the axis and are ordered.
        for row in &chart.rows {
            for w in row.spans.windows(2) {
                assert!(w[0].end <= w[1].start);
            }
            assert!(row.spans.first().unwrap().start >= chart.begin);
            assert!(row.spans.last().unwrap().end <= chart.end);
        }
    }

    #[test]
    fn sos_heatmap_hottest_cell_is_the_outlier() {
        let (trace, analysis) = outlier_setup();
        let chart = sos_heatmap(&trace, &analysis);
        assert_eq!(chart.rows.len(), 4);
        assert!(chart.scale.is_some());
        // The single reddest span sits on row 2 (the injected outlier).
        let mut best: Option<(usize, u8)> = None;
        for (row_idx, row) in chart.rows.iter().enumerate() {
            for s in &row.spans {
                if best.is_none() || s.color.r > best.unwrap().1 {
                    best = Some((row_idx, s.color.r));
                }
            }
        }
        assert_eq!(best.unwrap().0, 2);
    }

    #[test]
    fn sos_heatmap_downsamples_but_keeps_the_hotspot() {
        let trace = simulate(&SingleOutlier::new(3, 40, 1).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        // Budget of 8 spans per row: 40 segments → ≤ 8 merged buckets.
        let chart = sos_heatmap_with(&trace, &analysis, 8);
        for row in &chart.rows {
            assert!(row.spans.len() <= 8, "{}", row.spans.len());
        }
        // The hottest span still sits on the outlier row (max-merge).
        let mut best: Option<(usize, i32)> = None;
        for (i, row) in chart.rows.iter().enumerate() {
            for s in &row.spans {
                let warmth = s.color.r as i32 - s.color.b as i32;
                if best.is_none() || warmth > best.unwrap().1 {
                    best = Some((i, warmth));
                }
            }
        }
        assert_eq!(best.unwrap().0, 1);
    }

    #[test]
    fn cluster_heatmap_draws_one_row_per_cluster() {
        use perfvar_analysis::{diagnose_meta, DiagnoseConfig};
        let mut w = workloads::CosmoSpecs::small(4, 4, 8);
        w.cloud_amplitude = 6.0;
        let trace = simulate(&w.spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let meta = perfvar_trace::TraceMeta::of(&trace);
        let diagnosis = diagnose_meta(&meta, &analysis, &DiagnoseConfig::default());
        let chart = cluster_heatmap(&meta, &analysis, &diagnosis, 8);
        assert_eq!(chart.rows.len(), diagnosis.clusters.len());
        assert!(chart.rows.len() < 16, "clusters must summarise the ranks");
        // Labels carry cluster size and representative.
        assert!(
            chart.rows[0].label.starts_with("c0 ×"),
            "{}",
            chart.rows[0].label
        );
        assert!(chart.rows[0].label.contains('P'));
        // Row budget honoured, scale legend present.
        for row in &chart.rows {
            assert!(row.spans.len() <= 8);
            assert!(!row.spans.is_empty());
        }
        assert_eq!(chart.scale.as_ref().unwrap().quantity, "SOS-time");
        // The hot (cloudy) cluster's row contains the warmest span.
        let hot_row = diagnosis
            .clusters
            .iter()
            .position(|c| c.cause.contains("overload"))
            .expect("no overloaded cluster");
        let mut best: Option<(usize, i32)> = None;
        for (i, row) in chart.rows.iter().enumerate() {
            for s in &row.spans {
                let warmth = s.color.r as i32 - s.color.b as i32;
                if best.is_none() || warmth > best.unwrap().1 {
                    best = Some((i, warmth));
                }
            }
        }
        assert_eq!(best.unwrap().0, hot_row);
    }

    #[test]
    fn cluster_heatmap_caps_rows_at_scale() {
        use perfvar_analysis::{diagnose_meta, DiagnoseConfig};
        let trace = simulate(&workloads::RandomImbalance::new(48, 5).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let meta = perfvar_trace::TraceMeta::of(&trace);
        let diagnosis = diagnose_meta(
            &meta,
            &analysis,
            &DiagnoseConfig {
                max_clusters: 6,
                ..DiagnoseConfig::default()
            },
        );
        let chart = cluster_heatmap(&meta, &analysis, &diagnosis, 960);
        assert!(chart.rows.len() <= 6, "{} rows", chart.rows.len());
    }

    #[test]
    fn counter_heatmap_builds() {
        // Use a workload with a metric channel.
        let trace = simulate(&workloads::CosmoSpecsFd4::small(4, 2).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        assert!(!analysis.counters.is_empty());
        let chart = counter_heatmap(&trace, &analysis, &analysis.counters[0].matrix);
        assert_eq!(chart.rows.len(), 4);
        assert!(chart.title.contains("PAPI_TOT_CYC"));
    }

    #[test]
    fn message_arrows_match_sends() {
        let trace = simulate(&workloads::CosmoSpecsFd4::small(4, 1).spec()).unwrap();
        let chart = function_timeline(&trace, &TimelineOptions::default());
        // 4 ranks × 3 timesteps of ring exchange = 12 messages.
        assert_eq!(chart.messages.len(), 12);
        for m in &chart.messages {
            assert!(m.from_time <= m.to_time);
            assert!(m.from_row < 4 && m.to_row < 4);
        }
    }

    #[test]
    fn message_thinning_respects_cap() {
        let trace = simulate(&workloads::CosmoSpecsFd4::small(8, 2).spec()).unwrap();
        let opts = TimelineOptions {
            max_messages: 5,
            ..TimelineOptions::default()
        };
        let chart = function_timeline(&trace, &opts);
        assert!(chart.messages.len() <= 5);
        assert!(!chart.messages.is_empty());
    }

    #[test]
    fn messages_can_be_disabled() {
        let trace = simulate(&workloads::CosmoSpecsFd4::small(4, 1).spec()).unwrap();
        let opts = TimelineOptions {
            include_messages: false,
            ..TimelineOptions::default()
        };
        assert!(function_timeline(&trace, &opts).messages.is_empty());
    }

    #[test]
    fn bucket_merging_bounds_span_count() {
        let (trace, _) = outlier_setup();
        let opts = TimelineOptions {
            buckets: 32,
            ..TimelineOptions::default()
        };
        let chart = function_timeline(&trace, &opts);
        for row in &chart.rows {
            assert!(row.spans.len() <= 32);
        }
    }
}
