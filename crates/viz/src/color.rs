//! Colours, the cold→hot metric scale, and the function-category palette.

use perfvar_trace::FunctionRole;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An sRGB colour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Constructs a colour from channels.
    pub const fn rgb(r: u8, g: u8, b: u8) -> Color {
        Color { r, g, b }
    }

    /// CSS hex form, e.g. `#1f77b4`.
    pub fn hex(&self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }

    /// Linear interpolation between two colours (`t` clamped to `[0,1]`).
    pub fn lerp(a: Color, b: Color, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |x: u8, y: u8| -> u8 { (x as f64 + (y as f64 - x as f64) * t).round() as u8 };
        Color::rgb(mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b))
    }

    /// Perceived luminance in `[0, 255]` (Rec. 601 weights).
    pub fn luminance(&self) -> f64 {
        0.299 * self.r as f64 + 0.587 * self.g as f64 + 0.114 * self.b as f64
    }
}

impl fmt::Display for Color {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// The cold→hot diverging scale of the paper's §VI: blue (short / cold)
/// through white to red (long / hot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeatScale;

impl HeatScale {
    const COLD: Color = Color::rgb(0x1c, 0x4e, 0xc9); // deep blue
    const MID: Color = Color::rgb(0xf2, 0xf0, 0xeb); // warm white
    const HOT: Color = Color::rgb(0xc9, 0x1c, 0x1c); // deep red

    /// Colour for a normalised value `t ∈ [0, 1]` (clamped).
    pub fn color(&self, t: f64) -> Color {
        let t = t.clamp(0.0, 1.0);
        if t < 0.5 {
            Color::lerp(Self::COLD, Self::MID, t * 2.0)
        } else {
            Color::lerp(Self::MID, Self::HOT, (t - 0.5) * 2.0)
        }
    }
}

/// Maps raw metric values into `[0, 1]` for a [`HeatScale`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ColorScale {
    /// Value mapped to 0 (cold).
    pub min: f64,
    /// Value mapped to 1 (hot).
    pub max: f64,
}

impl ColorScale {
    /// A scale covering `[min, max]`.
    pub fn new(min: f64, max: f64) -> ColorScale {
        ColorScale { min, max }
    }

    /// Fits a scale to the given values; degenerates gracefully for
    /// empty or constant data.
    pub fn fit(values: impl IntoIterator<Item = f64>) -> ColorScale {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            min = min.min(v);
            max = max.max(v);
        }
        if !min.is_finite() || !max.is_finite() {
            return ColorScale::new(0.0, 1.0);
        }
        ColorScale::new(min, max)
    }

    /// Fits a scale to the *finite* values only. Metric vectors can
    /// legitimately contain NaN (0/0 imbalance ratios) or be constant
    /// (perfectly balanced runs); this constructor makes every such
    /// degenerate input normalise to the scale midpoint — neutral white —
    /// instead of painting the whole view cold:
    ///
    /// - infinities and NaN never widen the range,
    /// - all-equal or single-value inputs yield a constant scale
    ///   (`min == max`), where [`normalize`](ColorScale::normalize)
    ///   returns 0.5 for everything,
    /// - empty / all-NaN inputs do the same.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> ColorScale {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            if v.is_finite() {
                min = min.min(v);
                max = max.max(v);
            }
        }
        if min > max {
            // No finite values at all: a constant scale at zero.
            return ColorScale::new(0.0, 0.0);
        }
        ColorScale::new(min, max)
    }

    /// Normalises `v` to `[0, 1]`; constant scales and non-finite values
    /// map to 0.5 (the neutral midpoint of a diverging [`HeatScale`]) so
    /// NaN can never leak into colour interpolation and masquerade as
    /// the cold end.
    pub fn normalize(&self, v: f64) -> f64 {
        if !v.is_finite() {
            return 0.5;
        }
        let range = self.max - self.min;
        if range <= f64::EPSILON {
            0.5
        } else {
            ((v - self.min) / range).clamp(0.0, 1.0)
        }
    }

    /// Shortcut: normalised heat colour of `v`.
    pub fn heat(&self, v: f64) -> Color {
        HeatScale.color(self.normalize(v))
    }
}

/// The categorical palette for function timelines, matching the paper's
/// Vampir conventions where possible: MPI activity is red; computation
/// phases get distinguishable non-red colours (the case studies mention
/// green COSMO, purple SPECS, yellow coupling, blue dynamics, brown
/// physics).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionPalette;

impl FunctionPalette {
    /// Colour of an MPI/synchronization role (red family, as in Vampir).
    pub fn role_color(&self, role: FunctionRole) -> Color {
        match role {
            FunctionRole::MpiCollective => Color::rgb(0xd6, 0x2b, 0x2b),
            FunctionRole::MpiPointToPoint => Color::rgb(0xe0, 0x4a, 0x3a),
            FunctionRole::MpiWait => Color::rgb(0xb8, 0x1d, 0x3d),
            FunctionRole::MpiIo => Color::rgb(0xd6, 0x6a, 0x2b),
            FunctionRole::MpiOther => Color::rgb(0xc9, 0x52, 0x52),
            FunctionRole::OmpSync => Color::rgb(0xd4, 0x3f, 0x6e),
            FunctionRole::FileIo => Color::rgb(0x8a, 0x6d, 0x3b),
            FunctionRole::Idle => Color::rgb(0xdd, 0xdd, 0xdd),
            // Compute / Other fall through to the per-function cycle.
            FunctionRole::Compute | FunctionRole::Other => Color::rgb(0x3c, 0x8c, 0x3c),
        }
    }

    /// Colour for a specific function: MPI-ish roles use the role colour;
    /// compute functions cycle through a categorical palette keyed by the
    /// function id, so different phases are distinguishable (green,
    /// purple, yellow, blue, brown, … as in the paper's screenshots).
    pub fn function_color(&self, function_index: usize, role: FunctionRole) -> Color {
        if !matches!(role, FunctionRole::Compute | FunctionRole::Other) {
            return self.role_color(role);
        }
        const CYCLE: [Color; 8] = [
            Color::rgb(0x3c, 0x8c, 0x3c), // green (COSMO)
            Color::rgb(0x7d, 0x4f, 0xb3), // purple (SPECS)
            Color::rgb(0xd9, 0xc0, 0x2f), // yellow (coupling)
            Color::rgb(0x2f, 0x6f, 0xd9), // blue (dyn core)
            Color::rgb(0x8c, 0x5a, 0x2b), // brown (physics)
            Color::rgb(0x2b, 0x8c, 0x8c), // teal
            Color::rgb(0x6b, 0x8e, 0x23), // olive
            Color::rgb(0x4f, 0x4f, 0xa8), // indigo
        ];
        CYCLE[function_index % CYCLE.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_formatting() {
        assert_eq!(Color::rgb(0x1f, 0x77, 0xb4).hex(), "#1f77b4");
        assert_eq!(Color::rgb(0, 0, 0).to_string(), "#000000");
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Color::rgb(0, 0, 0);
        let b = Color::rgb(200, 100, 50);
        assert_eq!(Color::lerp(a, b, 0.0), a);
        assert_eq!(Color::lerp(a, b, 1.0), b);
        assert_eq!(Color::lerp(a, b, 0.5), Color::rgb(100, 50, 25));
        // Clamped outside [0,1].
        assert_eq!(Color::lerp(a, b, -3.0), a);
        assert_eq!(Color::lerp(a, b, 9.0), b);
    }

    #[test]
    fn heat_scale_is_cold_to_hot() {
        let cold = HeatScale.color(0.0);
        let hot = HeatScale.color(1.0);
        // Cold end is blue-dominant, hot end red-dominant.
        assert!(cold.b > cold.r);
        assert!(hot.r > hot.b);
        // Middle is light (near white).
        assert!(HeatScale.color(0.5).luminance() > 200.0);
    }

    #[test]
    fn heat_scale_warmth_increases_monotonically() {
        // On a diverging blue→white→red scale, red alone is not monotone
        // (it peaks at the white midpoint); the warmth r − b is.
        let mut prev = i32::MIN;
        for i in 0..=20 {
            let c = HeatScale.color(i as f64 / 20.0);
            let warmth = c.r as i32 - c.b as i32;
            assert!(warmth >= prev, "warmth must not decrease (step {i})");
            prev = warmth;
        }
    }

    #[test]
    fn color_scale_normalises() {
        let s = ColorScale::new(10.0, 20.0);
        assert_eq!(s.normalize(10.0), 0.0);
        assert_eq!(s.normalize(20.0), 1.0);
        assert_eq!(s.normalize(15.0), 0.5);
        assert_eq!(s.normalize(0.0), 0.0); // clamped
        assert_eq!(s.normalize(99.0), 1.0);
    }

    #[test]
    fn color_scale_fit_and_degenerate() {
        let s = ColorScale::fit([3.0, 7.0, 5.0]);
        assert_eq!((s.min, s.max), (3.0, 7.0));
        let constant = ColorScale::fit([4.0, 4.0]);
        assert_eq!(constant.normalize(4.0), 0.5);
        let empty = ColorScale::fit([]);
        assert_eq!((empty.min, empty.max), (0.0, 1.0));
    }

    #[test]
    fn from_values_ignores_non_finite() {
        let s = ColorScale::from_values([f64::NAN, 3.0, f64::INFINITY, 7.0]);
        assert_eq!((s.min, s.max), (3.0, 7.0));
        assert_eq!(s.normalize(5.0), 0.5);
    }

    #[test]
    fn from_values_all_equal_maps_to_midpoint() {
        let s = ColorScale::from_values([4.0, 4.0, 4.0]);
        assert_eq!(s.normalize(4.0), 0.5);
        // The midpoint of the heat scale is neutral white, not cold blue.
        assert!(s.heat(4.0).luminance() > 200.0);
    }

    #[test]
    fn from_values_single_value_maps_to_midpoint() {
        let s = ColorScale::from_values([42.0]);
        assert_eq!(s.normalize(42.0), 0.5);
        assert!(s.heat(42.0).luminance() > 200.0);
    }

    #[test]
    fn from_values_all_nan_maps_to_midpoint() {
        let s = ColorScale::from_values([f64::NAN, f64::NAN]);
        assert_eq!(s.normalize(f64::NAN), 0.5);
        assert_eq!(s.normalize(1.0), 0.5);
        assert!(s.heat(f64::NAN).luminance() > 200.0);
    }

    /// Regression: NaN metric values used to flow through `normalize`
    /// unclamped (`clamp` propagates NaN) and saturate to 0 in colour
    /// interpolation — rendering as the cold end of the scale instead of
    /// the neutral midpoint.
    #[test]
    fn normalize_never_returns_nan() {
        let s = ColorScale::new(10.0, 20.0);
        assert_eq!(s.normalize(f64::NAN), 0.5);
        assert_eq!(s.normalize(f64::INFINITY), 0.5);
        assert_eq!(s.normalize(f64::NEG_INFINITY), 0.5);
        assert!(s.heat(f64::NAN).luminance() > 200.0);
    }

    #[test]
    fn palette_mpi_is_red_family() {
        let p = FunctionPalette;
        for role in [
            FunctionRole::MpiCollective,
            FunctionRole::MpiPointToPoint,
            FunctionRole::MpiWait,
        ] {
            let c = p.role_color(role);
            assert!(c.r > c.g && c.r > c.b, "{role:?} should be reddish");
        }
    }

    #[test]
    fn palette_compute_functions_distinguishable() {
        let p = FunctionPalette;
        let c0 = p.function_color(0, FunctionRole::Compute);
        let c1 = p.function_color(1, FunctionRole::Compute);
        assert_ne!(c0, c1);
        // MPI role ignores the function index.
        assert_eq!(
            p.function_color(0, FunctionRole::MpiWait),
            p.function_color(5, FunctionRole::MpiWait)
        );
    }
}
