//! Incremental terminal view of a live run.
//!
//! [`render_live`] turns the current state of a
//! [`LiveAnalysis`] into one
//! repaintable text frame: a per-rank stats table whose right side is
//! an SOS heatmap strip over each rank's most recent closed segments,
//! followed by the hottest functions so far. `perfvar watch` clears the
//! screen and reprints the frame each poll, so the view updates in
//! place while the trace grows; the same renderer with
//! [`LiveViewOptions::color`] off produces the plain-text frame used in
//! tests and logs.
//!
//! Unlike [`crate::chart::sos_heatmap`] this needs no [`Trace`] and no
//! finished [`Analysis`](perfvar_analysis::Analysis) — it works from
//! the live snapshot alone, which is what makes it cheap enough to
//! repaint every poll.
//!
//! [`Trace`]: perfvar_trace::Trace

use crate::color::ColorScale;
use perfvar_analysis::live::LiveAnalysis;
use std::fmt::Write as _;

/// Options for [`render_live`].
#[derive(Clone, Copy, Debug)]
pub struct LiveViewOptions {
    /// Width of the per-rank heatmap strip, in segments (one character
    /// cell each; the newest segments win when a rank has more).
    pub width: usize,
    /// Maximum number of rank rows shown (evenly thinned above).
    pub max_rows: usize,
    /// Emit ANSI colour escapes (disable for plain text).
    pub color: bool,
    /// Number of hottest functions listed under the table.
    pub functions: usize,
}

impl Default for LiveViewOptions {
    fn default() -> LiveViewOptions {
        LiveViewOptions {
            width: 60,
            max_rows: 40,
            color: true,
            functions: 5,
        }
    }
}

/// Renders one frame of the live view.
pub fn render_live(live: &LiveAnalysis, opts: &LiveViewOptions) -> String {
    let snapshot = live.snapshot();
    let registry = live.registry();
    let mut out = String::new();
    let state = if snapshot.finished {
        "sealed"
    } else {
        "growing"
    };
    let target = match snapshot.target {
        Some(f) => registry.function_name(f).to_string(),
        None => "(predicting…)".to_string(),
    };
    let _ = writeln!(
        out,
        "live {:?} [{state}]  events {}  bytes {}  segment fn {}  prefix {:08x}",
        snapshot.name,
        snapshot.events,
        snapshot.bytes,
        target,
        (snapshot.fingerprint >> 96) as u32,
    );

    // Global SOS colour scale over every closed segment shown.
    let np = snapshot.ranks.len();
    let row_step = if opts.max_rows == 0 {
        1
    } else {
        np.div_ceil(opts.max_rows).max(1)
    };
    let shown: Vec<usize> = (0..np).step_by(row_step).collect();
    let scale = ColorScale::from_values(
        shown
            .iter()
            .flat_map(|&i| recent(live, i, opts.width))
            .map(|s| s.sos().0 as f64),
    );

    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>8} {:>12}  recent segments (cold → hot)",
        "rank", "events", "segs", "sos-ticks"
    );
    for &i in &shown {
        let r = &snapshot.ranks[i];
        let mark = if r.poisoned { "!" } else { "" };
        let _ = write!(
            out,
            "{:>8} {:>10} {:>8} {:>12}  ",
            format!("{i}{mark}"),
            r.events,
            r.segments,
            r.sos_total
        );
        for s in recent(live, i, opts.width) {
            let c = scale.heat(s.sos().0 as f64);
            if opts.color {
                let _ = write!(out, "\x1b[48;2;{};{};{}m \x1b[0m", c.r, c.g, c.b);
            } else {
                let ch = match c.luminance() as u32 {
                    0..=84 => '█',
                    85..=169 => '▓',
                    _ => '░',
                };
                out.push(ch);
            }
        }
        if r.poisoned {
            let _ = write!(out, " (stream error; frozen at last good state)");
        }
        out.push('\n');
    }

    if opts.functions > 0 && !snapshot.functions.is_empty() {
        let _ = writeln!(out, "hottest functions (inclusive ticks):");
        for f in snapshot.functions.iter().take(opts.functions) {
            let _ = writeln!(out, "  {:>12}  {:>10}×  {}", f.inclusive, f.count, f.name);
        }
    }
    out
}

/// The newest `width` closed segments of `rank`.
fn recent(
    live: &LiveAnalysis,
    rank: usize,
    width: usize,
) -> impl Iterator<Item = &perfvar_analysis::Segment> {
    let closed = live.closed_segments(rank);
    let skip = closed.len().saturating_sub(width.max(1));
    closed[skip..].iter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvar_analysis::live::LiveAnalysis;
    use perfvar_analysis::AnalysisConfig;
    use perfvar_sim::prelude::*;
    use perfvar_trace::format::live::LiveArchiveWriter;

    #[test]
    fn renders_a_plain_frame_for_a_sealed_run() {
        let trace = simulate(&workloads::SingleOutlier::new(3, 6, 1).spec()).unwrap();
        let dir = std::env::temp_dir().join("perfvar-viz-live-test.pvta");
        let _ = std::fs::remove_dir_all(&dir);
        let mut w =
            LiveArchiveWriter::create(&dir, &trace.name, trace.clock(), trace.registry()).unwrap();
        for stream in trace.streams() {
            for r in stream.records() {
                w.append(stream.process, r).unwrap();
            }
        }
        w.finish().unwrap();

        let mut live = LiveAnalysis::open(&dir, AnalysisConfig::default()).unwrap();
        let delta = live.poll();
        assert!(delta.finished);
        let opts = LiveViewOptions {
            color: false,
            ..LiveViewOptions::default()
        };
        let frame = render_live(&live, &opts);
        assert!(frame.contains("[sealed]"), "{frame}");
        assert!(frame.contains("rank"), "{frame}");
        assert!(frame.contains("hottest functions"), "{frame}");
        // One row per rank.
        assert!(
            frame
                .lines()
                .filter(|l| l.contains('█') || l.contains('▓') || l.contains('░'))
                .count()
                >= 3,
            "{frame}"
        );
    }
}
