//! # perfvar-viz — Vampir-style timeline and heatmap rendering
//!
//! The paper presents its results inside the Vampir trace browser (§VI):
//! a *master timeline* (process × time, coloured by the active function)
//! overlaid with a colour-coded metric — the SOS-time — where "blue —
//! cold — colors indicate short durations, whereas red — hot — colors
//! indicate long durations". This crate is the substitute: it builds the
//! same charts as data ([`chart`]) and renders them as standalone SVG
//! documents ([`svg`]) or ANSI terminal output ([`ansi`]).
//!
//! Three chart builders cover every figure of the paper:
//!
//! * [`chart::function_timeline`] — Figs. 4(a), 5(a), 6(a): each process
//!   row shows the dominant activity per time bucket, coloured by
//!   function category (red = MPI, as in Vampir), with message arrows;
//! * [`chart::sos_heatmap`] — Figs. 4(b), 5(b), 5(c), 6(b): segments
//!   coloured by SOS-time on the cold→hot scale;
//! * [`chart::counter_heatmap`] — Fig. 6(c): segments coloured by a
//!   hardware-counter value.
//!
//! ```
//! use perfvar_sim::prelude::*;
//! use perfvar_analysis::prelude::*;
//! use perfvar_viz::prelude::*;
//!
//! let trace = simulate(&workloads::SingleOutlier::new(4, 6, 1).spec()).unwrap();
//! let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
//! let chart = sos_heatmap(&trace, &analysis);
//! let svg = render_svg(&chart, &SvgOptions::default());
//! assert!(svg.starts_with("<svg"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ansi;
pub mod chart;
pub mod color;
pub mod html;
pub mod live;
pub mod matrix;
pub mod summary;
pub mod svg;

/// Convenient glob-import of the rendering pipeline.
pub mod prelude {
    pub use crate::ansi::{render_ansi, AnsiOptions};
    pub use crate::chart::{
        cluster_heatmap, counter_heatmap, function_timeline, sos_heatmap, sos_heatmap_with,
        TimelineChart, TimelineOptions,
    };
    pub use crate::color::{Color, ColorScale, FunctionPalette, HeatScale};
    pub use crate::html::{HtmlReport, ReportSection};
    pub use crate::live::{render_live, LiveViewOptions};
    pub use crate::matrix::{render_comm_matrix_svg, CommQuantity};
    pub use crate::summary::{
        function_summary, ordinal_series_chart, process_load_chart, render_bar_svg,
        render_histogram_svg, render_series_svg, sos_histogram, BarChart, Histogram, SeriesChart,
    };
    pub use crate::svg::{render_svg, SvgOptions};
}

pub use ansi::{render_ansi, AnsiOptions};
pub use chart::{cluster_heatmap, counter_heatmap, function_timeline, sos_heatmap, TimelineChart};
pub use color::{Color, ColorScale, FunctionPalette, HeatScale};
pub use live::{render_live, LiveViewOptions};
pub use svg::{render_svg, SvgOptions};
