//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * SOS-time vs. plain-duration detection (cost of the subtraction —
//!   the *quality* difference is quantified by the `experiments` binary);
//! * robust (median/MAD) scoring vs. the whole detection pipeline;
//! * dominant-function multiplier sweep (rule `count ≥ k·p`);
//! * chart bucket-count sweep (render resolution vs. cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use perfvar_analysis::imbalance::{ImbalanceAnalysis, ImbalanceConfig};
use perfvar_analysis::invocation::replay_all;
use perfvar_analysis::profile::ProfileTable;
use perfvar_analysis::{analyze, AnalysisConfig, DominantRanking};
use perfvar_bench::outlier_trace;
use perfvar_viz::chart::{function_timeline, TimelineOptions};
use std::hint::black_box;

fn bench_sos_vs_duration_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    let trace = outlier_trace(32, 100, 7);
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    let duration_matrix = analysis.sos.durations_as_sos();
    g.bench_function("sos_matrix", |b| {
        b.iter(|| ImbalanceAnalysis::detect(black_box(&analysis.sos), ImbalanceConfig::default()))
    });
    g.bench_function("plain_durations", |b| {
        b.iter(|| {
            ImbalanceAnalysis::detect(black_box(&duration_matrix), ImbalanceConfig::default())
        })
    });
    g.finish();
}

fn bench_multiplier_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("dominant_multiplier");
    let trace = outlier_trace(16, 200, 3);
    let replayed = replay_all(&trace);
    let profiles = ProfileTable::from_invocations(&trace, &replayed);
    for multiplier in [1u64, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(multiplier),
            &multiplier,
            |b, &m| {
                b.iter(|| {
                    DominantRanking::with_multiplier(black_box(&trace), black_box(&profiles), m)
                })
            },
        );
    }
    g.finish();
}

fn bench_chart_buckets(c: &mut Criterion) {
    let mut g = c.benchmark_group("timeline_buckets");
    g.sample_size(20);
    let trace = outlier_trace(32, 100, 7);
    for buckets in [120usize, 480, 1920] {
        let opts = TimelineOptions {
            buckets,
            ..TimelineOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(buckets), &opts, |b, opts| {
            b.iter(|| function_timeline(black_box(&trace), opts))
        });
    }
    g.finish();
}

fn bench_phase_detection(c: &mut Criterion) {
    use perfvar_analysis::phases::{PhaseConfig, PhaseDetection};
    let mut g = c.benchmark_group("phase_detection");
    for n in [100usize, 1_000, 10_000] {
        let series: Vec<f64> = (0..n)
            .map(|i| if i < n / 2 { 100.0 } else { 300.0 } + (i % 7) as f64)
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &series, |b, series| {
            b.iter(|| PhaseDetection::detect(black_box(series), PhaseConfig::default()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sos_vs_duration_detection,
    bench_multiplier_sweep,
    bench_chart_buckets,
    bench_phase_detection
);
criterion_main!(benches);
