//! One bench group per evaluation figure: the cost of regenerating each
//! panel (simulation, analysis, rendering) at paper scale.
//!
//! The paper stresses that the approach is "effective and lightweight";
//! these benches quantify the full pipeline cost on the three case-study
//! traces.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use perfvar_analysis::{analyze, AnalysisConfig};
use perfvar_bench::{fig4_trace, fig5_trace, fig6_trace};
use perfvar_sim::simulate;
use perfvar_sim::workloads::Workload;
use perfvar_sim::workloads::{CosmoSpecs, CosmoSpecsFd4, Wrf};
use perfvar_viz::chart::{function_timeline, sos_heatmap, TimelineOptions};
use perfvar_viz::{render_svg, SvgOptions};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_cosmo_specs");
    g.sample_size(10);
    g.bench_function("simulate", |b| {
        b.iter(|| simulate(black_box(&CosmoSpecs::paper().spec())).unwrap())
    });
    let trace = fig4_trace();
    g.bench_function("analyze", |b| {
        b.iter(|| analyze(black_box(&trace), &AnalysisConfig::default()).unwrap())
    });
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    g.bench_function("render_timeline_svg", |b| {
        b.iter(|| {
            render_svg(
                &function_timeline(black_box(&trace), &TimelineOptions::default()),
                &SvgOptions::default(),
            )
        })
    });
    g.bench_function("render_sos_svg", |b| {
        b.iter(|| {
            render_svg(
                &sos_heatmap(black_box(&trace), &analysis),
                &SvgOptions::default(),
            )
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fd4");
    g.sample_size(10);
    g.bench_function("simulate", |b| {
        b.iter(|| simulate(black_box(&CosmoSpecsFd4::paper().spec())).unwrap())
    });
    let trace = fig5_trace();
    let config = AnalysisConfig::default();
    g.bench_function("analyze_coarse", |b| {
        b.iter(|| analyze(black_box(&trace), &config).unwrap())
    });
    let coarse = analyze(&trace, &config).unwrap();
    g.bench_function("refine_to_fine", |b| {
        b.iter_batched(
            || coarse.clone(),
            |coarse| coarse.refine(black_box(&trace), &config).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_wrf");
    g.sample_size(10);
    g.bench_function("simulate", |b| {
        b.iter(|| simulate(black_box(&Wrf::paper().spec())).unwrap())
    });
    let trace = fig6_trace();
    g.bench_function("analyze_with_counters", |b| {
        b.iter(|| analyze(black_box(&trace), &AnalysisConfig::default()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_fig4, bench_fig5, bench_fig6);
criterion_main!(benches);
