//! Trace serialisation throughput: PVT (binary) and PVTX (text),
//! write and read, in bytes per second.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfvar_bench::stencil_trace;
use perfvar_trace::format::{pvt, text};
use std::hint::black_box;

fn bench_pvt(c: &mut Criterion) {
    let mut g = c.benchmark_group("pvt_binary");
    for iterations in [1_000usize, 10_000] {
        let trace = stencil_trace(8, iterations);
        let bytes = pvt::to_bytes(&trace).unwrap();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("write", bytes.len()),
            &trace,
            |b, trace| b.iter(|| pvt::to_bytes(black_box(trace)).unwrap()),
        );
        g.bench_with_input(BenchmarkId::new("read", bytes.len()), &bytes, |b, bytes| {
            b.iter(|| pvt::from_bytes(black_box(bytes)).unwrap())
        });
    }
    g.finish();
}

fn bench_pvtx(c: &mut Criterion) {
    let mut g = c.benchmark_group("pvtx_text");
    let trace = stencil_trace(8, 1_000);
    let mut buf = Vec::new();
    text::write(&trace, &mut buf).unwrap();
    g.throughput(Throughput::Bytes(buf.len() as u64));
    g.bench_function("write", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            text::write(black_box(&trace), &mut out).unwrap();
            out
        })
    });
    g.bench_function("read", |b| {
        b.iter(|| text::read(&mut std::io::Cursor::new(black_box(&buf))).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_pvt, bench_pvtx);
criterion_main!(benches);
