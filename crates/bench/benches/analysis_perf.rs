//! Performance of the analysis primitives: replay throughput, dominant
//! selection, SOS computation, and the parallel-replay speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfvar_analysis::invocation::{replay_all, replay_process};
use perfvar_analysis::parallel::replay_all_parallel;
use perfvar_analysis::profile::ProfileTable;
use perfvar_analysis::segment::Segmentation;
use perfvar_analysis::sos::SosMatrix;
use perfvar_analysis::DominantRanking;
use perfvar_bench::stencil_trace;
use perfvar_trace::ProcessId;
use std::hint::black_box;

fn bench_replay_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay_throughput");
    for iterations in [100usize, 1_000, 10_000] {
        let trace = stencil_trace(1, iterations);
        let events = trace.num_events() as u64;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::from_parameter(events), &trace, |b, trace| {
            b.iter(|| replay_process(black_box(trace), ProcessId(0)))
        });
    }
    g.finish();
}

fn bench_parallel_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_replay_64ranks");
    g.sample_size(20);
    let trace = stencil_trace(64, 200);
    g.throughput(Throughput::Elements(trace.num_events() as u64));
    g.bench_function("sequential", |b| b.iter(|| replay_all(black_box(&trace))));
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| b.iter(|| replay_all_parallel(black_box(&trace), threads)),
        );
    }
    g.finish();
}

fn bench_dominant_selection(c: &mut Criterion) {
    let mut g = c.benchmark_group("dominant_selection");
    let trace = stencil_trace(32, 500);
    let replayed = replay_all(&trace);
    let profiles = ProfileTable::from_invocations(&trace, &replayed);
    g.bench_function("profile_table", |b| {
        b.iter(|| ProfileTable::from_invocations(black_box(&trace), black_box(&replayed)))
    });
    g.bench_function("ranking", |b| {
        b.iter(|| DominantRanking::new(black_box(&trace), black_box(&profiles)))
    });
    g.finish();
}

fn bench_sos_computation(c: &mut Criterion) {
    let mut g = c.benchmark_group("sos_matrix");
    for (ranks, iterations) in [(8usize, 100usize), (32, 200), (64, 500)] {
        let trace = stencil_trace(ranks, iterations);
        let replayed = replay_all(&trace);
        let f = trace
            .registry()
            .function_by_name("stencil_iteration")
            .unwrap();
        let segments = (ranks * iterations) as u64;
        g.throughput(Throughput::Elements(segments));
        g.bench_with_input(BenchmarkId::from_parameter(segments), &(), |b, _| {
            b.iter(|| {
                let seg = Segmentation::new(black_box(&trace), &replayed, f);
                SosMatrix::from_segmentation(&seg)
            })
        });
    }
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    use perfvar_analysis::callpath::CallTree;
    use perfvar_analysis::clustering::{ClusterConfig, ProcessClustering};
    use perfvar_analysis::compare::RunComparison;
    use perfvar_analysis::{analyze, AnalysisConfig};

    let mut g = c.benchmark_group("extensions");
    let trace = stencil_trace(64, 200);
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    g.bench_function("call_tree_build", |b| {
        let replayed = replay_all(&trace);
        b.iter(|| CallTree::build(black_box(&replayed)))
    });
    g.bench_function("clustering_64_processes", |b| {
        b.iter(|| ProcessClustering::compute(black_box(&analysis.sos), ClusterConfig::default()))
    });
    g.bench_function("run_comparison", |b| {
        b.iter(|| RunComparison::compare(black_box(&analysis.sos), black_box(&analysis.sos)))
    });
    g.bench_function("waitstates_64_processes", |b| {
        let replayed = replay_all(&trace);
        b.iter(|| {
            perfvar_analysis::waitstates::WaitStateAnalysis::compute(
                black_box(&trace),
                black_box(&replayed),
            )
        })
    });
    g.bench_function("message_matching", |b| {
        b.iter(|| perfvar_analysis::messages::MessageAnalysis::match_trace(black_box(&trace)))
    });
    g.finish();
}

fn bench_analyze_pipeline(c: &mut Criterion) {
    use perfvar_analysis::{analyze, analyze_reference, AnalysisConfig};

    let mut g = c.benchmark_group("analyze_pipeline");
    g.sample_size(10);
    for (ranks, iterations) in [(64usize, 200usize), (256, 50)] {
        let trace = stencil_trace(ranks, iterations);
        let events = trace.num_events() as u64;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(
            BenchmarkId::new("reference_sequential", ranks),
            &trace,
            |b, trace| {
                let cfg = AnalysisConfig {
                    threads: 1,
                    ..AnalysisConfig::default()
                };
                b.iter(|| analyze_reference(black_box(trace), &cfg).unwrap())
            },
        );
        for threads in [2usize, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("fused_{ranks}ranks_threads"), threads),
                &trace,
                |b, trace| {
                    let cfg = AnalysisConfig {
                        threads,
                        ..AnalysisConfig::default()
                    };
                    b.iter(|| analyze(black_box(trace), &cfg).unwrap())
                },
            );
        }
    }
    g.finish();
}

fn bench_out_of_core(c: &mut Criterion) {
    use perfvar_analysis::{analyze, analyze_path, AnalysisConfig};
    use perfvar_trace::format::write_trace_file;

    let mut g = c.benchmark_group("out_of_core");
    g.sample_size(10);
    let dir = std::env::temp_dir().join("perfvar-bench-ooc");
    std::fs::create_dir_all(&dir).unwrap();
    for (ranks, iterations) in [(64usize, 200usize), (256, 50)] {
        let trace = stencil_trace(ranks, iterations);
        let events = trace.num_events() as u64;
        let archive = dir.join(format!("stencil-{ranks}.pvta"));
        write_trace_file(&trace, &archive).unwrap();
        let cfg = AnalysisConfig::default();
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::new("in_memory", ranks), &trace, |b, trace| {
            b.iter(|| analyze(black_box(trace), &cfg).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("analyze_path", ranks),
            &archive,
            |b, archive| b.iter(|| analyze_path(black_box(archive), &cfg).unwrap()),
        );
    }
    g.finish();
}

fn bench_streaming_read(c: &mut Criterion) {
    use perfvar_trace::format::pvt;
    let mut g = c.benchmark_group("streaming_read");
    let trace = stencil_trace(8, 2_000);
    let bytes = pvt::to_bytes(&trace).unwrap();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("stream_events", |b| {
        b.iter(|| {
            let reader =
                pvt::PvtStreamReader::new(std::io::Cursor::new(black_box(&bytes))).unwrap();
            reader.fold(0usize, |acc, r| {
                r.unwrap();
                acc + 1
            })
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_replay_throughput,
    bench_parallel_replay,
    bench_dominant_selection,
    bench_sos_computation,
    bench_extensions,
    bench_analyze_pipeline,
    bench_out_of_core,
    bench_streaming_read
);
criterion_main!(benches);
