//! Shared fixtures for the perfvar benchmark and experiment harness.
//!
//! The benches and the `experiments` binary both need the case-study
//! traces at paper scale plus scaled-down variants; this crate builds
//! them in one place so bench targets stay declarative.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use perfvar_analysis::{analyze, Analysis, AnalysisConfig};
use perfvar_sim::workloads::Workload;
use perfvar_sim::workloads::{BalancedStencil, CosmoSpecs, CosmoSpecsFd4, SingleOutlier, Wrf};
use perfvar_sim::{simulate, CommParams, Program, SpecBuilder};
use perfvar_trace::{Clock, FunctionRole, MetricMode, Trace};

/// The COSMO-SPECS trace at paper scale (100 ranks, 60 iterations).
pub fn fig4_trace() -> Trace {
    simulate(&CosmoSpecs::paper().spec()).expect("cosmo-specs simulates")
}

/// The COSMO-SPECS+FD4 trace at paper scale (200 ranks).
pub fn fig5_trace() -> Trace {
    simulate(&CosmoSpecsFd4::paper().spec()).expect("fd4 simulates")
}

/// The WRF trace at paper scale (64 ranks, 80 timesteps).
pub fn fig6_trace() -> Trace {
    simulate(&Wrf::paper().spec()).expect("wrf simulates")
}

/// A balanced stencil trace with the requested size (for scaling
/// benches).
pub fn stencil_trace(ranks: usize, iterations: usize) -> Trace {
    simulate(&BalancedStencil::new(ranks, iterations).spec()).expect("stencil simulates")
}

/// A balanced stencil trace carrying three hardware-counter channels
/// (accumulating cycles, delta cache misses, gauge memory), sampled
/// every iteration — the fixture for end-to-end pipeline benchmarks
/// where counter attribution is part of the work.
pub fn counter_stencil_trace(ranks: usize, iterations: usize) -> Trace {
    let mut b = SpecBuilder::new(
        "counter-stencil",
        Clock::microseconds(),
        CommParams::cluster_defaults(),
    );
    let main_f = b.function("main", FunctionRole::Compute);
    let iter_f = b.function("stencil_iteration", FunctionRole::Compute);
    let calc_f = b.function("compute_stencil", FunctionRole::Compute);
    let barrier_f = b.function("MPI_Barrier", FunctionRole::MpiCollective);
    let cyc = b.metric("PAPI_TOT_CYC", MetricMode::Accumulating, "cycles");
    let l2m = b.metric("PAPI_L2_TCM", MetricMode::Delta, "misses");
    let mem = b.metric("MEM_RSS", MetricMode::Gauge, "bytes");
    for rank in 0..ranks {
        let mut p = Program::new();
        p.enter(main_f);
        p.sample_counter(cyc);
        for k in 0..iterations {
            let work = 10_000 + ((rank * 31 + k * 17) % 400) as u64;
            p.enter(iter_f);
            p.enter(calc_f);
            p.compute_counted(work, vec![(cyc, work * 2)]);
            p.leave(calc_f);
            p.sample_counter(cyc);
            p.emit_metric(l2m, work / 10);
            p.emit_metric(mem, 1 << 20);
            p.barrier(barrier_f);
            p.leave(iter_f);
        }
        p.leave(main_f);
        b.add_rank(p);
    }
    simulate(&b.build()).expect("counter stencil simulates")
}

/// A single-outlier trace (ground truth: `outlier_rank`, middle
/// iteration) for detection-quality experiments.
pub fn outlier_trace(ranks: usize, iterations: usize, outlier_rank: usize) -> Trace {
    simulate(&SingleOutlier::new(ranks, iterations, outlier_rank).spec())
        .expect("outlier simulates")
}

/// Runs the default analysis pipeline; panics on failure (bench fixtures
/// are known-good).
pub fn analyzed(trace: &Trace) -> Analysis {
    analyze(trace, &AnalysisConfig::default()).expect("analysis succeeds")
}

/// Writes an ordered sequence of `runs` balanced-stencil archives into
/// `dir` (`run0.pvta` … `run{n-1}.pvta`) with a planted regression: from
/// run `step_at` onward the per-iteration work steps from 10k to 16k
/// ticks (a +60% makespan shift). Seeds differ per run, so the stencil
/// jitter makes every run distinct — run-to-run noise a comparison must
/// see through, well inside the ±5% default threshold. The fixture
/// behind `perfvar bisect` end-to-end checks and the REGRESSION
/// experiment row.
pub fn regression_sequence(
    dir: &std::path::Path,
    runs: usize,
    step_at: usize,
) -> Vec<std::path::PathBuf> {
    (0..runs)
        .map(|r| {
            let mut w = BalancedStencil::new(8, 12);
            w.seed = 100 + r as u64;
            w.work = if r < step_at { 10_000 } else { 16_000 };
            let trace = simulate(&w.spec()).expect("stencil simulates");
            let path = dir.join(format!("run{r}.pvta"));
            perfvar_trace::format::write_trace_file(&trace, &path).expect("archive fixture writes");
            path
        })
        .collect()
}

/// Load generation against a running `perfvar serve` daemon: the engine
/// behind the `loadgen` binary and the SERVE-LOAD experiment row.
pub mod load {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::{Duration, Instant};

    /// The outcome of one load run: per-request latencies (sorted
    /// ascending), the error count, and the wall time of the whole run.
    #[derive(Clone, Debug)]
    pub struct LoadSummary {
        /// Sorted per-request latencies in seconds (successes only).
        pub latencies_s: Vec<f64>,
        /// Requests that failed at the transport layer or returned a
        /// non-200 status.
        pub errors: usize,
        /// Open-loop ticks shed because the dispatcher had fallen too
        /// far behind schedule to send them on time (always `0` in
        /// closed-loop mode). A non-zero count means the requested
        /// `rate` exceeded what this machine can offer — the run's
        /// *delivered* rate is `latencies_s.len() + errors` over
        /// `wall_s`, not the requested one.
        pub dropped: usize,
        /// Wall time of the whole run in seconds.
        pub wall_s: f64,
    }

    impl LoadSummary {
        /// The `q`-quantile latency (`q` in `[0, 1]`; true nearest-rank
        /// `⌈q·n⌉ − 1` on the sorted latencies, so `quantile(1.0)` is the
        /// maximum and `quantile(0.5)` over two samples is the first, not
        /// an average of indices). `0.0` when no request succeeded.
        pub fn quantile(&self, q: f64) -> f64 {
            let n = self.latencies_s.len();
            if n == 0 {
                return 0.0;
            }
            let rank = if q <= 0.0 {
                0
            } else {
                (q * n as f64).ceil() as usize - 1
            };
            self.latencies_s[rank.min(n - 1)]
        }

        /// Mean latency over successful requests.
        pub fn mean(&self) -> f64 {
            if self.latencies_s.is_empty() {
                return 0.0;
            }
            self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
        }

        /// Completed requests (successes) per second of wall time.
        pub fn throughput(&self) -> f64 {
            if self.wall_s <= 0.0 {
                return 0.0;
            }
            self.latencies_s.len() as f64 / self.wall_s
        }
    }

    fn measure(addr: &str, target: &str) -> Result<f64, ()> {
        let start = Instant::now();
        match perfvar_server::client::get(addr, target) {
            Ok(resp) if resp.status == 200 => Ok(start.elapsed().as_secs_f64()),
            _ => Err(()),
        }
    }

    fn summarize(results: Vec<Result<f64, ()>>, wall_s: f64) -> LoadSummary {
        let errors = results.iter().filter(|r| r.is_err()).count();
        let mut latencies_s: Vec<f64> = results.into_iter().flatten().collect();
        latencies_s.sort_by(|a, b| a.total_cmp(b));
        LoadSummary {
            latencies_s,
            errors,
            dropped: 0,
            wall_s,
        }
    }

    /// Closed-loop load: `concurrency` workers issue the targets as fast
    /// as responses come back — each worker has exactly one request in
    /// flight, so the offered load adapts to the daemon's speed.
    pub fn closed_loop(addr: &str, targets: &[String], concurrency: usize) -> LoadSummary {
        let next = AtomicUsize::new(0);
        let results = Mutex::new(Vec::with_capacity(targets.len()));
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..concurrency.max(1) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(target) = targets.get(idx) else {
                        break;
                    };
                    let outcome = measure(addr, target);
                    results.lock().unwrap().push(outcome);
                });
            }
        });
        summarize(results.into_inner().unwrap(), start.elapsed().as_secs_f64())
    }

    /// Open-loop load: targets are dispatched on a fixed `rate` (requests
    /// per second) schedule regardless of completions — the offered load
    /// does not let a slow daemon push back, so queueing delay shows up
    /// in the latencies instead of the throughput.
    ///
    /// Catch-up is capped: a tick the dispatcher could not send within
    /// a few intervals of its scheduled time is *dropped* (counted in
    /// [`LoadSummary::dropped`]) rather than bursted out back-to-back.
    /// An uncapped dispatcher that falls behind — an absurd `rate`, a
    /// scheduler stall — would fire every overdue tick at once, which
    /// both melts the measurement (those requests queue behind each
    /// other at the sender, inflating latency) and stops being open-loop
    /// at all.
    pub fn open_loop(addr: &str, targets: &[String], rate: f64) -> LoadSummary {
        let interval = Duration::from_secs_f64(1.0 / rate.max(0.001));
        // How far behind schedule a tick may fire before it is shed.
        // A small burst absorbs scheduler jitter; beyond it the
        // requested rate is simply not deliverable.
        let max_lag = (interval * 4).max(Duration::from_millis(2));
        let start = Instant::now();
        let results = Mutex::new(Vec::with_capacity(targets.len()));
        let mut dropped = 0usize;
        std::thread::scope(|scope| {
            for (idx, target) in targets.iter().enumerate() {
                let due = start + interval * idx as u32;
                let now = Instant::now();
                if let Some(wait) = due.checked_duration_since(now) {
                    std::thread::sleep(wait);
                } else if now.duration_since(due) > max_lag {
                    dropped += 1;
                    continue;
                }
                let results = &results;
                scope.spawn(move || {
                    let outcome = measure(addr, target);
                    results.lock().unwrap().push(outcome);
                });
            }
        });
        let mut summary = summarize(results.into_inner().unwrap(), start.elapsed().as_secs_f64());
        summary.dropped = dropped;
        summary
    }

    /// The request mix for a run: `count` targets of which roughly
    /// `cold_frac` are cache-busting "cold" analyses, the rest warm cache
    /// hits on the plain target.
    ///
    /// Cold requests vary the `multiplier` parameter (the
    /// dominant-function invocation threshold, which the daemon folds
    /// into its content-addressed cache key) over `3 + ((run_seed + i) %
    /// cold_window)`, forcing a cache miss and a full pipeline run for
    /// each distinct value. Two constraints follow:
    ///
    /// * the trace must iterate at least `3 + cold_window` times, or the
    ///   larger thresholds leave no dominant function and the request
    ///   fails with 422;
    /// * against a long-lived daemon, keep `cold_window` above the
    ///   daemon's `--cache-entries` (default 64) or repeated runs find
    ///   the "cold" keys already cached.
    pub fn mixed_targets(
        encoded_path: &str,
        count: usize,
        cold_frac: f64,
        cold_window: u64,
        run_seed: u64,
    ) -> Vec<String> {
        let cold_every = if cold_frac <= 0.0 {
            usize::MAX
        } else {
            ((1.0 / cold_frac.min(1.0)).round() as usize).max(1)
        };
        (0..count)
            .map(|i| {
                if i % cold_every == 0 && cold_every != usize::MAX {
                    // Skips the default threshold of 2 so every cold key
                    // differs from the warm one.
                    let multiplier = 3 + (run_seed + i as u64) % cold_window.max(1);
                    format!("/analyze?path={encoded_path}&multiplier={multiplier}")
                } else {
                    format!("/analyze?path={encoded_path}")
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary_of(latencies_s: Vec<f64>) -> load::LoadSummary {
        load::LoadSummary {
            latencies_s,
            errors: 0,
            dropped: 0,
            wall_s: 1.0,
        }
    }

    #[test]
    fn quantile_is_nearest_rank() {
        // n = 1: every quantile is the single sample.
        let one = summary_of(vec![7.0]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 7.0);
        }
        // n = 2: ⌈q·n⌉−1 picks the first sample up to the median and the
        // second strictly above it — the old midpoint rounding returned
        // the *second* sample for q = 0.5.
        let two = summary_of(vec![1.0, 9.0]);
        assert_eq!(two.quantile(0.0), 1.0);
        assert_eq!(two.quantile(0.5), 1.0);
        assert_eq!(two.quantile(0.51), 9.0);
        assert_eq!(two.quantile(1.0), 9.0);
        // n = 10: p90 must be the 9th order statistic, not the 10th.
        let ten = summary_of((1..=10).map(f64::from).collect());
        assert_eq!(ten.quantile(0.9), 9.0);
        assert_eq!(ten.quantile(0.99), 10.0);
        assert_eq!(ten.quantile(1.0), 10.0);
        // Empty and out-of-range stay safe.
        assert_eq!(summary_of(vec![]).quantile(0.5), 0.0);
        assert_eq!(ten.quantile(2.0), 10.0);
        assert_eq!(ten.quantile(-0.5), 1.0);
    }

    #[test]
    fn open_loop_at_an_absurd_rate_sheds_ticks_instead_of_bursting() {
        // Port 1 refuses connections instantly — this exercises the
        // dispatcher's pacing, not a daemon. At 10⁹ rps the schedule is
        // undeliverable from the first few microseconds on: an uncapped
        // dispatcher would burst all ticks back-to-back, the capped one
        // must shed the overdue ones and say so.
        let targets: Vec<String> = (0..5_000).map(|_| "/health".to_string()).collect();
        let summary = load::open_loop("127.0.0.1:1", &targets, 1e9);
        assert!(summary.dropped > 0, "absurd rate must shed overdue ticks");
        // Every tick is accounted for: sent (success or error) or shed.
        assert_eq!(
            summary.latencies_s.len() + summary.errors + summary.dropped,
            targets.len()
        );

        // A deliverable schedule sheds nothing.
        let targets: Vec<String> = (0..20).map(|_| "/health".to_string()).collect();
        let summary = load::open_loop("127.0.0.1:1", &targets, 200.0);
        assert_eq!(summary.dropped, 0, "a deliverable rate must not shed");
        assert_eq!(summary.latencies_s.len() + summary.errors, targets.len());
    }

    #[test]
    fn regression_sequence_plants_a_step() {
        let dir = std::env::temp_dir().join("perfvar-bench-regression-seq");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let runs = regression_sequence(&dir, 4, 2);
        assert_eq!(runs.len(), 4);
        let spans: Vec<u64> = runs
            .iter()
            .map(|p| {
                perfvar_trace::format::read_trace_file(p)
                    .expect("fixture reads back")
                    .span()
                    .0
            })
            .collect();
        // Pre-step runs differ only by jitter; the step is a >40% jump.
        let pre = spans[0] as f64;
        assert!((spans[1] as f64 - pre).abs() / pre < 0.05, "{spans:?}");
        assert!(spans[2] as f64 > pre * 1.4, "{spans:?}");
        assert!(spans[3] as f64 > pre * 1.4, "{spans:?}");
    }

    #[test]
    fn fixtures_build() {
        let t = stencil_trace(4, 5);
        assert_eq!(t.num_processes(), 4);
        let a = analyzed(&t);
        assert!(!a.segmentation.is_empty());
    }

    #[test]
    fn counter_stencil_has_all_metric_modes() {
        let t = counter_stencil_trace(4, 5);
        assert_eq!(t.registry().num_metrics(), 3);
        let a = analyzed(&t);
        assert_eq!(a.counters.len(), 3);
        // Every channel attributes non-zero values somewhere.
        for c in &a.counters {
            assert!(
                a.segmentation.iter().any(|s| c
                    .matrix
                    .value(s.process, s.ordinal as usize)
                    .unwrap_or(0)
                    > 0),
                "metric {:?} attributed nothing",
                t.registry().metric(c.metric).name
            );
        }
    }
}
