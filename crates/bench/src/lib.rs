//! Shared fixtures for the perfvar benchmark and experiment harness.
//!
//! The benches and the `experiments` binary both need the case-study
//! traces at paper scale plus scaled-down variants; this crate builds
//! them in one place so bench targets stay declarative.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use perfvar_analysis::{analyze, Analysis, AnalysisConfig};
use perfvar_sim::simulate;
use perfvar_sim::workloads::Workload;
use perfvar_sim::workloads::{BalancedStencil, CosmoSpecs, CosmoSpecsFd4, SingleOutlier, Wrf};
use perfvar_trace::Trace;

/// The COSMO-SPECS trace at paper scale (100 ranks, 60 iterations).
pub fn fig4_trace() -> Trace {
    simulate(&CosmoSpecs::paper().spec()).expect("cosmo-specs simulates")
}

/// The COSMO-SPECS+FD4 trace at paper scale (200 ranks).
pub fn fig5_trace() -> Trace {
    simulate(&CosmoSpecsFd4::paper().spec()).expect("fd4 simulates")
}

/// The WRF trace at paper scale (64 ranks, 80 timesteps).
pub fn fig6_trace() -> Trace {
    simulate(&Wrf::paper().spec()).expect("wrf simulates")
}

/// A balanced stencil trace with the requested size (for scaling
/// benches).
pub fn stencil_trace(ranks: usize, iterations: usize) -> Trace {
    simulate(&BalancedStencil::new(ranks, iterations).spec()).expect("stencil simulates")
}

/// A single-outlier trace (ground truth: `outlier_rank`, middle
/// iteration) for detection-quality experiments.
pub fn outlier_trace(ranks: usize, iterations: usize, outlier_rank: usize) -> Trace {
    simulate(&SingleOutlier::new(ranks, iterations, outlier_rank).spec())
        .expect("outlier simulates")
}

/// Runs the default analysis pipeline; panics on failure (bench fixtures
/// are known-good).
pub fn analyzed(trace: &Trace) -> Analysis {
    analyze(trace, &AnalysisConfig::default()).expect("analysis succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let t = stencil_trace(4, 5);
        assert_eq!(t.num_processes(), 4);
        let a = analyzed(&t);
        assert!(!a.segmentation.is_empty());
    }
}
