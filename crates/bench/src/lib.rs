//! Shared fixtures for the perfvar benchmark and experiment harness.
//!
//! The benches and the `experiments` binary both need the case-study
//! traces at paper scale plus scaled-down variants; this crate builds
//! them in one place so bench targets stay declarative.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use perfvar_analysis::{analyze, Analysis, AnalysisConfig};
use perfvar_sim::workloads::Workload;
use perfvar_sim::workloads::{BalancedStencil, CosmoSpecs, CosmoSpecsFd4, SingleOutlier, Wrf};
use perfvar_sim::{simulate, CommParams, Program, SpecBuilder};
use perfvar_trace::{Clock, FunctionRole, MetricMode, Trace};

/// The COSMO-SPECS trace at paper scale (100 ranks, 60 iterations).
pub fn fig4_trace() -> Trace {
    simulate(&CosmoSpecs::paper().spec()).expect("cosmo-specs simulates")
}

/// The COSMO-SPECS+FD4 trace at paper scale (200 ranks).
pub fn fig5_trace() -> Trace {
    simulate(&CosmoSpecsFd4::paper().spec()).expect("fd4 simulates")
}

/// The WRF trace at paper scale (64 ranks, 80 timesteps).
pub fn fig6_trace() -> Trace {
    simulate(&Wrf::paper().spec()).expect("wrf simulates")
}

/// A balanced stencil trace with the requested size (for scaling
/// benches).
pub fn stencil_trace(ranks: usize, iterations: usize) -> Trace {
    simulate(&BalancedStencil::new(ranks, iterations).spec()).expect("stencil simulates")
}

/// A balanced stencil trace carrying three hardware-counter channels
/// (accumulating cycles, delta cache misses, gauge memory), sampled
/// every iteration — the fixture for end-to-end pipeline benchmarks
/// where counter attribution is part of the work.
pub fn counter_stencil_trace(ranks: usize, iterations: usize) -> Trace {
    let mut b = SpecBuilder::new(
        "counter-stencil",
        Clock::microseconds(),
        CommParams::cluster_defaults(),
    );
    let main_f = b.function("main", FunctionRole::Compute);
    let iter_f = b.function("stencil_iteration", FunctionRole::Compute);
    let calc_f = b.function("compute_stencil", FunctionRole::Compute);
    let barrier_f = b.function("MPI_Barrier", FunctionRole::MpiCollective);
    let cyc = b.metric("PAPI_TOT_CYC", MetricMode::Accumulating, "cycles");
    let l2m = b.metric("PAPI_L2_TCM", MetricMode::Delta, "misses");
    let mem = b.metric("MEM_RSS", MetricMode::Gauge, "bytes");
    for rank in 0..ranks {
        let mut p = Program::new();
        p.enter(main_f);
        p.sample_counter(cyc);
        for k in 0..iterations {
            let work = 10_000 + ((rank * 31 + k * 17) % 400) as u64;
            p.enter(iter_f);
            p.enter(calc_f);
            p.compute_counted(work, vec![(cyc, work * 2)]);
            p.leave(calc_f);
            p.sample_counter(cyc);
            p.emit_metric(l2m, work / 10);
            p.emit_metric(mem, 1 << 20);
            p.barrier(barrier_f);
            p.leave(iter_f);
        }
        p.leave(main_f);
        b.add_rank(p);
    }
    simulate(&b.build()).expect("counter stencil simulates")
}

/// A single-outlier trace (ground truth: `outlier_rank`, middle
/// iteration) for detection-quality experiments.
pub fn outlier_trace(ranks: usize, iterations: usize, outlier_rank: usize) -> Trace {
    simulate(&SingleOutlier::new(ranks, iterations, outlier_rank).spec())
        .expect("outlier simulates")
}

/// Runs the default analysis pipeline; panics on failure (bench fixtures
/// are known-good).
pub fn analyzed(trace: &Trace) -> Analysis {
    analyze(trace, &AnalysisConfig::default()).expect("analysis succeeds")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let t = stencil_trace(4, 5);
        assert_eq!(t.num_processes(), 4);
        let a = analyzed(&t);
        assert!(!a.segmentation.is_empty());
    }

    #[test]
    fn counter_stencil_has_all_metric_modes() {
        let t = counter_stencil_trace(4, 5);
        assert_eq!(t.registry().num_metrics(), 3);
        let a = analyzed(&t);
        assert_eq!(a.counters.len(), 3);
        // Every channel attributes non-zero values somewhere.
        for c in &a.counters {
            assert!(
                a.segmentation.iter().any(|s| c
                    .matrix
                    .value(s.process, s.ordinal as usize)
                    .unwrap_or(0)
                    > 0),
                "metric {:?} attributed nothing",
                t.registry().metric(c.metric).name
            );
        }
    }
}
