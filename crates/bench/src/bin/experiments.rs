//! Regenerates every figure of the paper and prints a paper-vs-measured
//! comparison — the source of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p perfvar-bench --bin experiments [out_dir]
//! ```
//!
//! For each experiment the harness prints the paper's claim, the measured
//! result, and PASS/FAIL on the *shape* (who wins, rough factors,
//! locations); it writes every figure as SVG plus a machine-readable
//! `summary.json` into the output directory (default
//! `target/experiments`).

use perfvar_analysis::invocation::replay_all;
use perfvar_analysis::profile::ProfileTable;
use perfvar_analysis::segment::Segmentation;
use perfvar_analysis::sos::SosMatrix;
use perfvar_analysis::{analyze, AnalysisConfig, DominantRanking, ImbalanceAnalysis};
use perfvar_bench::{fig4_trace, fig5_trace, fig6_trace, outlier_trace};
use perfvar_sim::workloads::{CosmoSpecsFd4, Wrf};
use perfvar_trace::stats::role_shares_binned;
use perfvar_trace::{Clock, DurationTicks, FunctionRole, ProcessId, Timestamp, TraceBuilder};
use perfvar_viz::chart::{counter_heatmap, function_timeline, sos_heatmap, TimelineOptions};
use perfvar_viz::{render_svg, SvgOptions};
use std::path::{Path, PathBuf};

struct Report {
    rows: Vec<(String, String, String, bool)>,
}

impl Report {
    fn check(&mut self, id: &str, paper: &str, measured: String, pass: bool) {
        println!(
            "[{}] {id}\n    paper:    {paper}\n    measured: {measured}",
            if pass { "PASS" } else { "FAIL" }
        );
        self.rows
            .push((id.to_string(), paper.to_string(), measured, pass));
    }

    fn to_json(&self) -> String {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|(id, paper, measured, pass)| {
                serde_json::json!({
                    "id": id, "paper": paper, "measured": measured, "pass": pass
                })
            })
            .collect();
        serde_json::to_string_pretty(&rows).unwrap()
    }
}

fn save_svg(dir: &Path, name: &str, svg: &str) {
    let path = dir.join(name);
    std::fs::write(&path, svg).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("    figure → {}", path.display());
}

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/experiments"));
    std::fs::create_dir_all(&out_dir).unwrap();
    let mut report = Report { rows: Vec::new() };

    fig1(&mut report);
    fig2(&mut report);
    fig3(&mut report);
    fig4(&mut report, &out_dir);
    fig5(&mut report, &out_dir);
    fig6(&mut report, &out_dir);
    ablation_sos_vs_durations(&mut report);
    robustness_noise_sweep(&mut report);
    scaling_sweep(&mut report);
    let mut bench = pipeline_benchmark(&mut report, &out_dir);
    let serve = serve_benchmark(&mut report, &out_dir);
    let serve_load = serve_load_benchmark(&mut report, &out_dir);
    let regression = regression_benchmark(&mut report, &out_dir);
    let live = live_benchmark(&mut report, &out_dir);
    let diagnose = diagnose_benchmark(&mut report, &out_dir);
    if let serde_json::Value::Object(fields) = &mut bench {
        fields.push(("serve".to_string(), serve));
        fields.push(("serve_load".to_string(), serve_load));
        fields.push(("regression".to_string(), regression));
        fields.push(("live".to_string(), live));
        fields.push(("diagnose".to_string(), diagnose));
    }
    let bench_path = out_dir.join("BENCH_pipeline.json");
    std::fs::write(&bench_path, serde_json::to_string_pretty(&bench).unwrap()).unwrap();
    println!("    benchmark → {}", bench_path.display());

    let json = report.to_json();
    std::fs::write(out_dir.join("summary.json"), &json).unwrap();
    let failed = report.rows.iter().filter(|r| !r.3).count();
    println!(
        "\n{} checks, {} failed; summary → {}",
        report.rows.len(),
        failed,
        out_dir.join("summary.json").display()
    );
    if failed > 0 {
        std::process::exit(1);
    }
}

// ───────────────────── methodology figures ─────────────────────

fn fig1(report: &mut Report) {
    let mut b = TraceBuilder::new(Clock::microseconds());
    #[allow(clippy::disallowed_names)] // the paper's Fig. 1 names it "foo"
    let foo = b.define_function("foo", FunctionRole::Compute);
    let bar = b.define_function("bar", FunctionRole::Compute);
    let p = b.define_process("p0");
    let w = b.process_mut(p);
    w.enter(Timestamp(0), foo).unwrap();
    w.enter(Timestamp(2), bar).unwrap();
    w.leave(Timestamp(4), bar).unwrap();
    w.leave(Timestamp(6), foo).unwrap();
    let trace = b.finish().unwrap();
    let inv = replay_all(&trace);
    let foo_inv = inv[0].of_function(foo).next().unwrap();
    report.check(
        "FIG1 inclusive/exclusive time",
        "inclusive(foo) = 6, exclusive(foo) = 4",
        format!(
            "inclusive(foo) = {}, exclusive(foo) = {}",
            foo_inv.inclusive().0,
            foo_inv.exclusive().0
        ),
        foo_inv.inclusive().0 == 6 && foo_inv.exclusive().0 == 4,
    );
}

fn fig2(report: &mut Report) {
    let mut bld = TraceBuilder::new(Clock::microseconds());
    let main_f = bld.define_function("main", FunctionRole::Compute);
    let i_f = bld.define_function("i", FunctionRole::Compute);
    let a_f = bld.define_function("a", FunctionRole::Compute);
    let b_f = bld.define_function("b", FunctionRole::Compute);
    let c_f = bld.define_function("c", FunctionRole::Compute);
    let _ = i_f;
    for _ in 0..3 {
        let p = bld.define_process("p");
        let w = bld.process_mut(p);
        w.enter(Timestamp(0), main_f).unwrap();
        w.enter(Timestamp(0), i_f).unwrap();
        w.leave(Timestamp(1), i_f).unwrap();
        for k in 0..3u64 {
            let base = 1 + k * 6;
            w.enter(Timestamp(base), a_f).unwrap();
            w.enter(Timestamp(base + 1), b_f).unwrap();
            w.leave(Timestamp(base + 2), b_f).unwrap();
            w.enter(Timestamp(base + 2), c_f).unwrap();
            w.leave(Timestamp(base + 3), c_f).unwrap();
            w.leave(Timestamp(base + 4), a_f).unwrap();
            if k < 2 {
                w.enter(Timestamp(base + 4), b_f).unwrap();
                w.leave(Timestamp(base + 6), b_f).unwrap();
            }
        }
        w.leave(Timestamp(18), main_f).unwrap();
    }
    let trace = bld.finish().unwrap();
    let profiles = ProfileTable::from_invocations(&trace, &replay_all(&trace));
    let ranking = DominantRanking::new(&trace, &profiles);
    let dominant = ranking.dominant();
    report.check(
        "FIG2 dominant function",
        "main rejected (3 = p calls, 54 ticks); a dominant (9 ≥ 2p calls, 36 ticks)",
        format!(
            "main: {} calls/{} ticks; a: {} calls/{} ticks; dominant = {:?}",
            profiles.get(main_f).count,
            profiles.get(main_f).inclusive.0,
            profiles.get(a_f).count,
            profiles.get(a_f).inclusive.0,
            dominant.map(|f| trace.registry().function_name(f)),
        ),
        dominant == Some(a_f)
            && profiles.get(main_f).inclusive == DurationTicks(54)
            && profiles.get(a_f).inclusive == DurationTicks(36),
    );
}

fn fig3(report: &mut Report) {
    let mut b = TraceBuilder::new(Clock::microseconds());
    let a_f = b.define_function("a", FunctionRole::Compute);
    let calc_f = b.define_function("calc", FunctionRole::Compute);
    let mpi_f = b.define_function("MPI", FunctionRole::MpiCollective);
    let loads = [[5u64, 2, 2], [3, 2, 2], [1, 2, 2]];
    let bounds = [(0u64, 6u64), (6, 9), (9, 12)];
    for row in loads {
        let p = b.define_process("p");
        let w = b.process_mut(p);
        for (k, (start, end)) in bounds.iter().enumerate() {
            w.enter(Timestamp(*start), a_f).unwrap();
            w.enter(Timestamp(*start), calc_f).unwrap();
            w.leave(Timestamp(start + row[k]), calc_f).unwrap();
            w.enter(Timestamp(start + row[k]), mpi_f).unwrap();
            w.leave(Timestamp(*end), mpi_f).unwrap();
            w.leave(Timestamp(*end), a_f).unwrap();
        }
    }
    let trace = b.finish().unwrap();
    let seg = Segmentation::new(&trace, &replay_all(&trace), a_f);
    let m = SosMatrix::from_segmentation(&seg);
    let sos0 = m.sos(ProcessId(0), 0).unwrap().0;
    let sos2 = m.sos(ProcessId(2), 0).unwrap().0;
    let d0 = m.duration(ProcessId(0), 0).unwrap().0;
    let d1 = m.duration(ProcessId(0), 1).unwrap().0;
    report.check(
        "FIG3 SOS-time",
        "durations 6 then 3 (hide the culprit); SOS P0 = 5 vs P2 = 1 (expose it)",
        format!("durations {d0} then {d1}; SOS P0 = {sos0} vs P2 = {sos2}"),
        d0 == 6 && d1 == 3 && sos0 == 5 && sos2 == 1,
    );
}

// ───────────────────── evaluation figures ─────────────────────

fn fig4(report: &mut Report, out_dir: &Path) {
    let trace = fig4_trace();
    let shares = role_shares_binned(&trace, 10);
    let series = shares.mpi_series();
    report.check(
        "FIG4a COSMO-SPECS timeline",
        "MPI fraction increases over the run, dominating towards the end",
        format!(
            "MPI share bins: {}",
            series
                .iter()
                .map(|s| format!("{:.0}%", s * 100.0))
                .collect::<Vec<_>>()
                .join(" ")
        ),
        series[9] > 2.0 * series[1] && series[9] > 0.5,
    );
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    let mut flagged: Vec<usize> = analysis
        .imbalance
        .process_outliers
        .iter()
        .map(|p| p.index())
        .collect();
    flagged.sort_unstable();
    let hottest = analysis.imbalance.hottest_process().unwrap();
    report.check(
        "FIG4b SOS heatmap",
        "processes 44, 45, 54, 55, 64, 65 flagged; Process 54 worst",
        format!("flagged {flagged:?}; hottest {hottest}"),
        flagged == vec![44, 45, 54, 55, 64, 65] && hottest == ProcessId(54),
    );
    save_svg(
        out_dir,
        "fig4a-timeline.svg",
        &render_svg(
            &function_timeline(&trace, &TimelineOptions::default()),
            &SvgOptions::default(),
        ),
    );
    save_svg(
        out_dir,
        "fig4b-sos.svg",
        &render_svg(&sos_heatmap(&trace, &analysis), &SvgOptions::default()),
    );
}

fn fig5(report: &mut Report, out_dir: &Path) {
    let workload = CosmoSpecsFd4::paper();
    let trace = fig5_trace();
    let config = AnalysisConfig::default();
    let coarse = analyze(&trace, &config).unwrap();

    let durations = coarse.sos.duration_by_ordinal();
    let median = {
        let mut d = durations.clone();
        d.sort_by(f64::total_cmp);
        d[d.len() / 2]
    };
    let slow: Vec<usize> = durations
        .iter()
        .enumerate()
        .filter(|(_, d)| **d > 1.3 * median)
        .map(|(i, _)| i)
        .collect();
    report.check(
        "FIG5a FD4 slow iteration",
        "only a few iterations exhibit larger durations (one here)",
        format!("slow iterations: {slow:?} of {}", durations.len()),
        slow == vec![workload.interrupted_iteration],
    );

    let hottest = coarse.imbalance.hottest_process().unwrap();
    report.check(
        "FIG5b coarse SOS",
        "Process 20 exhibits a high SOS-time",
        format!("hottest process: {hottest}"),
        hottest == ProcessId(20),
    );

    let fine = coarse.refine(&trace, &config).unwrap();
    let outliers = &fine.imbalance.segment_outliers;
    let single = outliers.len() == 1;
    let hot = outliers.first();
    let cyc = fine
        .counters
        .iter()
        .find(|c| trace.registry().metric(c.metric).name == "PAPI_TOT_CYC")
        .unwrap();
    let cycles_ok = hot
        .map(|hot| {
            let hot_rate = cyc.matrix.value(hot.process, hot.ordinal).unwrap() as f64
                / fine.sos.duration(hot.process, hot.ordinal).unwrap().0 as f64;
            let prev_rate = cyc.matrix.value(hot.process, hot.ordinal - 1).unwrap() as f64
                / fine.sos.duration(hot.process, hot.ordinal - 1).unwrap().0 as f64;
            hot_rate < 0.5 * prev_rate
        })
        .unwrap_or(false);
    report.check(
        "FIG5c fine SOS + PAPI_TOT_CYC",
        "one single invocation red; its assigned-cycles reading is low (interruption)",
        format!(
            "outliers: {}; location {:?}; low-cycle check {}",
            outliers.len(),
            hot.map(|h| (h.process, h.ordinal)),
            cycles_ok
        ),
        single
            && hot.map(|h| {
                h.process == ProcessId(20) && h.ordinal == workload.interrupted_global_timestep()
            }) == Some(true)
            && cycles_ok,
    );

    // Fig. 5(a) displays just the slow iteration: slice its window out
    // (the paper's analyst recorded only slow iterations to begin with).
    let slow_iteration = perfvar_trace::slice::slice_invocation(
        &trace,
        coarse.function,
        workload.interrupted_iteration,
    )
    .expect("interrupted iteration exists")
    .expect("slice is well-formed");
    save_svg(
        out_dir,
        "fig5a-timeline.svg",
        &render_svg(
            &function_timeline(&slow_iteration, &TimelineOptions::default()),
            &SvgOptions::default(),
        ),
    );
    save_svg(
        out_dir,
        "fig5b-sos-coarse.svg",
        &render_svg(&sos_heatmap(&trace, &coarse), &SvgOptions::default()),
    );
    save_svg(
        out_dir,
        "fig5c-sos-fine.svg",
        &render_svg(&sos_heatmap(&trace, &fine), &SvgOptions::default()),
    );
}

fn fig6(report: &mut Report, out_dir: &Path) {
    let workload = Wrf::paper();
    let trace = fig6_trace();
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();

    let init_seconds = trace
        .clock()
        .timestamp_seconds(analysis.segmentation.iter().map(|s| s.enter).min().unwrap());
    let total_duration: f64 = analysis
        .segmentation
        .iter()
        .map(|s| s.duration().0 as f64)
        .sum();
    let total_sync: f64 = analysis.segmentation.iter().map(|s| s.sync.0 as f64).sum();
    let mpi_fraction = total_sync / total_duration;
    report.check(
        "FIG6a WRF timeline",
        "≈11 s initialisation, then iterations at ≈25 % MPI",
        format!(
            "init ends at {init_seconds:.1} s; iteration MPI fraction {:.0}%",
            mpi_fraction * 100.0
        ),
        (9.0..13.0).contains(&init_seconds) && (0.10..0.40).contains(&mpi_fraction),
    );

    let hottest = analysis.imbalance.hottest_process().unwrap();
    report.check(
        "FIG6b SOS heatmap",
        "Process 39 exhibits high SOS-times",
        format!("hottest process: {hottest}"),
        hottest == ProcessId(39) && analysis.imbalance.process_outliers.contains(&ProcessId(39)),
    );

    let fpx = analysis
        .counters
        .iter()
        .find(|c| trace.registry().metric(c.metric).name == "FR_FPU_EXCEPTIONS_SSE_MICROTRAPS")
        .unwrap();
    let counter_hottest = fpx.matrix.hottest_process().unwrap();
    let r = fpx.sos_correlation.unwrap_or(0.0);
    report.check(
        "FIG6c FPU-exceptions counter",
        "Process 39 shows exceptionally many exceptions; counter matches SOS heatmap",
        format!("counter hottest: {counter_hottest}; Pearson r = {r:+.3}"),
        counter_hottest == ProcessId(39) && r > 0.9,
    );
    let _ = workload;

    save_svg(
        out_dir,
        "fig6a-timeline.svg",
        &render_svg(
            &function_timeline(&trace, &TimelineOptions::default()),
            &SvgOptions::default(),
        ),
    );
    save_svg(
        out_dir,
        "fig6b-sos.svg",
        &render_svg(&sos_heatmap(&trace, &analysis), &SvgOptions::default()),
    );
    save_svg(
        out_dir,
        "fig6c-counter.svg",
        &render_svg(
            &counter_heatmap(&trace, &analysis, &fpx.matrix),
            &SvgOptions::default(),
        ),
    );
}

// ───────────────────── ablation ─────────────────────

/// §V's motivating argument as an experiment: with synchronization in the
/// iteration, *plain durations* are equalised by waiting and cannot
/// localise the slow process, while SOS-time can.
/// Detection across process counts: the cloud hotspot must be localised
/// at every scale (the paper argues the approach is lightweight and
/// scale-friendly; this verifies the detection side of that claim).
fn scaling_sweep(report: &mut Report) {
    use perfvar_sim::workloads::{CosmoSpecs, Workload};
    let mut rows = Vec::new();
    let mut all_ok = true;
    for &(r, c) in &[(4usize, 4usize), (6, 6), (8, 8), (10, 10)] {
        let w = if (r, c) == (10, 10) {
            CosmoSpecs::paper()
        } else {
            CosmoSpecs::small(r, c, 30)
        };
        let expected = w.hottest_rank();
        let trace = perfvar_sim::simulate(&w.spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let got = analysis.imbalance.hottest_process().unwrap();
        let ok = got.index() == expected;
        all_ok &= ok;
        rows.push(format!(
            "{}×{c}: hottest {got} (expected P{expected}){}",
            r,
            if ok { "" } else { " ✗" }
        ));
    }
    report.check(
        "SCALING hotspot detection across process counts",
        "the overloaded rank is localised at every grid size (16 → 100 ranks)",
        rows.join("; "),
        all_ok,
    );
}

/// Detector robustness under OS background noise: the injected 4×
/// outlier must keep standing out as the noise floor rises — until the
/// noise itself becomes the story.
fn robustness_noise_sweep(report: &mut Report) {
    use perfvar_sim::noise::{inject_noise, NoiseConfig};
    use perfvar_sim::workloads::{SingleOutlier, Workload};
    let mut rows = Vec::new();
    let mut all_ok = true;
    for &probability in &[0.0f64, 0.02, 0.05, 0.10] {
        let mut hits = 0usize;
        let trials = 5usize;
        for seed in 0..trials as u64 {
            let w = SingleOutlier::new(8, 10, 5);
            let spec = inject_noise(
                &w.spec(),
                NoiseConfig {
                    probability,
                    min_stall: 20,
                    max_stall: 400,
                    seed: 7_000 + seed,
                },
            );
            let trace = perfvar_sim::simulate(&spec).unwrap();
            let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
            if analysis
                .imbalance
                .hottest_segment()
                .map(|h| (h.process, h.ordinal))
                == Some((ProcessId(5), w.outlier_iteration))
            {
                hits += 1;
            }
        }
        rows.push(format!("p={probability:.2}: {hits}/{trials}"));
        all_ok &= hits == trials;
    }
    report.check(
        "ROBUSTNESS detection under OS noise",
        "the 4× outlier stays detectable above realistic noise floors",
        rows.join(", "),
        all_ok,
    );
}

// ───────────────────── pipeline benchmark ─────────────────────

/// Best-of-N wall-time sample with its spread. Perf gates compare on
/// `best` (the least noise-contaminated observation); median and
/// standard deviation land in `BENCH_pipeline.json` so a regression can
/// be told apart from a noisy box when reading the numbers later.
struct Timing {
    best: f64,
    median: f64,
    stddev: f64,
}

impl Timing {
    fn of_samples(mut samples: Vec<f64>) -> Timing {
        samples.sort_by(f64::total_cmp);
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / n as f64;
        Timing {
            best: samples[0],
            median: samples[n / 2],
            stddev: var.sqrt(),
        }
    }

    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "best_s": self.best,
            "median_s": self.median,
            "stddev_s": self.stddev,
        })
    }
}

const BENCH_REPS: usize = 5;

/// Times `f` best-of-[`BENCH_REPS`].
fn time_reps(f: &mut dyn FnMut()) -> Timing {
    let mut samples = Vec::with_capacity(BENCH_REPS);
    for _ in 0..BENCH_REPS {
        let start = std::time::Instant::now();
        f();
        samples.push(start.elapsed().as_secs_f64());
    }
    Timing::of_samples(samples)
}

/// Times two competing closures interleaved (one rep of each per round,
/// best-of-[`BENCH_REPS`]) so slow rounds on a shared box hit both
/// measurements equally.
fn time_interleaved(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (Timing, Timing) {
    let mut sa = Vec::with_capacity(BENCH_REPS);
    let mut sb = Vec::with_capacity(BENCH_REPS);
    for _ in 0..BENCH_REPS {
        let start = std::time::Instant::now();
        a();
        sa.push(start.elapsed().as_secs_f64());
        let start = std::time::Instant::now();
        b();
        sb.push(start.elapsed().as_secs_f64());
    }
    (Timing::of_samples(sa), Timing::of_samples(sb))
}

/// CI escape hatch: `PERFVAR_BENCH_RELAXED=1` widens the wall-clock
/// performance gates so the harness still runs end-to-end (and records
/// real numbers) on slow shared runners. Correctness and shape gates —
/// pass counts, bit-identity, peak-state bounds, figure checks — stay
/// strict regardless.
fn bench_relaxed() -> bool {
    std::env::var("PERFVAR_BENCH_RELAXED")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Benchmarks the fused streaming pipeline against the materialising
/// reference on the 64-rank counter stencil, measures work-stealing
/// thread scaling on a multi-million-event archive, and returns the
/// `BENCH_pipeline.json` document (best/median/stddev times, events/sec,
/// speedups, peak live-state sizes); `main` merges in the daemon section
/// and writes the file.
fn pipeline_benchmark(report: &mut Report, out_dir: &Path) -> serde_json::Value {
    use perfvar_analysis::outofcore::{analyze_path_with, RecoveryMode};
    use perfvar_analysis::prelude::{analyze_reference, replay_visit, ReplayVisitor};
    use perfvar_trace::FunctionId;

    let relaxed = bench_relaxed();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let trace = perfvar_bench::counter_stencil_trace(64, 200);
    let events = trace.num_events() as u64;
    let cfg_at = |threads| AnalysisConfig {
        threads,
        ..AnalysisConfig::default()
    };

    let mut fused_s = Vec::new();
    for threads in [1usize, 2, 4] {
        let t = time_reps(&mut || {
            analyze(&trace, &cfg_at(threads)).unwrap();
        });
        fused_s.push((threads, t));
    }
    // The gated pair is interleaved (one rep of each per round) so slow
    // rounds on a shared box hit both measurements equally.
    let (reference_t, fused8_t) = time_interleaved(
        &mut || {
            analyze_reference(&trace, &cfg_at(1)).unwrap();
        },
        &mut || {
            analyze(&trace, &cfg_at(8)).unwrap();
        },
    );
    fused_s.push((8, fused8_t));
    let reference_s = reference_t.best;
    let fused_best = fused_s
        .iter()
        .map(|(_, t)| t.best)
        .fold(f64::INFINITY, f64::min);
    let fused_at_8 = fused_s.iter().find(|(n, _)| *n == 8).unwrap().1.best;
    let speedup = reference_s / fused_at_8;

    // Peak working-set sizes: the reference materialises every
    // invocation; a fused worker holds only the live stack plus its
    // per-function rows and the segments of its own process.
    let analysis = analyze(&trace, &cfg_at(0)).unwrap();
    let replayed = perfvar_analysis::invocation::replay_all(&trace);
    let reference_peak: usize = replayed.iter().map(|p| p.invocations().len()).sum();
    struct DepthMeter {
        max_depth: usize,
    }
    impl ReplayVisitor for DepthMeter {
        fn on_enter(&mut self, _f: FunctionId, depth: u32, _t: Timestamp) {
            self.max_depth = self.max_depth.max(depth as usize + 1);
        }
    }
    let mut meter = DepthMeter { max_depth: 0 };
    for pid in trace.registry().process_ids() {
        replay_visit(&trace, pid, &mut meter);
    }
    let max_segments_per_process = analysis.segmentation.max_segments_per_process();
    let fused_peak = meter.max_depth + max_segments_per_process + trace.registry().num_functions();

    // Out-of-core: the same fused pipeline fed straight from an archive
    // on disk (`analyze_path`). Per-worker live state no longer depends
    // on the trace length at all — just the stream read buffer (or the
    // page cache, when mmapped) plus the replay stack, the worker's own
    // segments, and per-function rows.
    let archive_dir = out_dir.join("bench-archives");
    std::fs::create_dir_all(&archive_dir).unwrap();
    let mut ooc_rows = Vec::new();
    let mut ooc_summary = Vec::new();
    let mut ooc_ok = true;
    for &(ranks, iterations) in &[(64usize, 200usize), (256, 50)] {
        let t = perfvar_bench::counter_stencil_trace(ranks, iterations);
        let ev = t.num_events() as u64;
        let archive = archive_dir.join(format!("stencil-{ranks}.pvta"));
        perfvar_trace::format::write_trace_file(&t, &archive).unwrap();
        let cfg = cfg_at(0);
        // Both routes start from the file path: the in-memory route has
        // to materialise the whole trace before it can analyze.
        let (in_memory_t, ooc_t) = time_interleaved(
            &mut || {
                let loaded = perfvar_trace::format::read_trace_file(&archive).unwrap();
                analyze(&loaded, &cfg).unwrap();
            },
            &mut || {
                perfvar_analysis::analyze_path(&archive, &cfg).unwrap();
            },
        );
        let from_disk = analyze_path_with(&archive, &cfg, RecoveryMode::Strict).unwrap();
        let passes = from_disk.passes;
        let mut m = DepthMeter { max_depth: 0 };
        for pid in t.registry().process_ids() {
            replay_visit(&t, pid, &mut m);
        }
        let worker_items = m.max_depth
            + from_disk.analysis.segmentation.max_segments_per_process()
            + t.registry().num_functions();
        // Speculative fusion reads the whole archive exactly once on
        // this SPMD fixture (the rank-0 prefix prediction is confirmed),
        // so the gate is direct: out-of-core wall time must not exceed
        // the in-memory route, which pays the same decode *plus*
        // materialisation. `passes == 1` is a correctness gate and stays
        // strict even in relaxed mode.
        let wall_ratio = ooc_t.best / in_memory_t.best;
        let per_pass_ratio = (ooc_t.best / passes as f64) / in_memory_t.best;
        let ratio_limit = if relaxed { 3.0 } else { 1.0 };
        ooc_ok &=
            passes == 1 && per_pass_ratio <= ratio_limit && worker_items < t.num_events() / 100;
        ooc_summary.push(format!(
            "{ranks} ranks: in-memory {:.3} s vs out-of-core {:.3} s in {passes} pass(es) \
             ({wall_ratio:.2}× wall, {:.1}M ev/s streamed); \
             worker holds {worker_items} items, not {ev} events",
            in_memory_t.best,
            ooc_t.best,
            passes as f64 * ev as f64 / ooc_t.best / 1e6
        ));
        ooc_rows.push(serde_json::json!({
            "ranks": ranks,
            "iterations": iterations,
            "events": ev,
            "in_memory": in_memory_t.to_json(),
            "out_of_core": ooc_t.to_json(),
            "out_of_core_passes": passes,
            "out_of_core_events_per_sec": ev as f64 / ooc_t.best,
            "streamed_events_per_sec_per_pass": passes as f64 * ev as f64 / ooc_t.best,
            "slowdown_per_pass_vs_in_memory": per_pass_ratio,
            "slowdown_ooc_vs_in_memory": wall_ratio,
            "peak_state": serde_json::json!({
                "in_memory_resident_events": ev,
                "ooc_worker_live_items": worker_items,
                "ooc_read_buffer_bytes": cfg.read_buffer_bytes,
                "ooc_mmap": cfg.mmap,
            }),
        }));
    }

    // Work-stealing thread scaling on a multi-million-event archive:
    // 8 fused workers vs 1 on the disk fast path. The ≥3× gate needs 8
    // real cores to mean anything, so it is enforced only on hosts with
    // at least that much parallelism; the measurement is recorded
    // everywhere (`host_cpus` says what the numbers were taken on).
    let scaling_trace = perfvar_bench::counter_stencil_trace(64, 3600);
    let scaling_events = scaling_trace.num_events() as u64;
    let scaling_archive = archive_dir.join("stencil-scaling.pvta");
    perfvar_trace::format::write_trace_file(&scaling_trace, &scaling_archive).unwrap();
    drop(scaling_trace);
    let mut scaling_rows = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let t = time_reps(&mut || {
            perfvar_analysis::analyze_path(&scaling_archive, &cfg_at(threads)).unwrap();
        });
        scaling_rows.push((threads, t));
    }
    let scaling_1t = scaling_rows[0].1.best;
    let scaling_8t = scaling_rows.last().unwrap().1.best;
    let scaling_x = scaling_1t / scaling_8t;
    let scaling_gated = host_cpus >= 8 && !relaxed;
    let scaling_ok = scaling_events >= 2_000_000 && (!scaling_gated || scaling_x >= 3.0);
    report.check(
        "SCALING work-stealing fused threads",
        "8 work-stealing workers ≥3× one worker on a ≥2M-event archive \
         (wall-clock gate enforced on hosts with ≥8 CPUs; always recorded)",
        format!(
            "{scaling_events} events; 1T {scaling_1t:.3} s → 8T {scaling_8t:.3} s \
             ({scaling_x:.2}×) on a {host_cpus}-CPU host{}",
            if scaling_gated {
                ""
            } else {
                " (gate waived: too few CPUs or relaxed mode)"
            }
        ),
        scaling_ok,
    );

    // Telemetry overhead: the instrumented entry point driving a live
    // recorder vs the identical run through the noop recorder.
    let cfg = cfg_at(0);
    let (noop_t, observed_t) = time_interleaved(
        &mut || {
            perfvar_analysis::analyze_observed(&trace, &cfg, &perfvar_analysis::Telemetry::noop())
                .unwrap();
        },
        &mut || {
            let telemetry = perfvar_analysis::Telemetry::enabled();
            perfvar_analysis::analyze_observed(&trace, &cfg, &telemetry).unwrap();
        },
    );
    let (noop_s, observed_s) = (noop_t.best, observed_t.best);
    let overhead = observed_s / noop_s - 1.0;
    // A stats document from one instrumented run, embedded in the JSON
    // so the shape is asserted by CI (and inspectable offline).
    let telemetry = perfvar_analysis::Telemetry::enabled();
    perfvar_analysis::analyze_observed(&trace, &cfg, &telemetry).unwrap();
    let stats = telemetry.snapshot().unwrap();
    // <5% relative (25% in relaxed mode), with a 5 ms absolute floor so
    // sub-noise deltas on a fast box never fail the gate.
    let overhead_limit = if relaxed { 0.25 } else { 0.05 };
    let telemetry_ok = (overhead < overhead_limit || observed_s - noop_s < 0.005)
        && !stats.stages.is_empty()
        && stats.totals.events_replayed > 0;

    let timing_row = |threads: usize, t: &Timing| {
        serde_json::json!({
            "threads": threads,
            "best_s": t.best,
            "median_s": t.median,
            "stddev_s": t.stddev,
        })
    };
    let json = serde_json::json!({
        "trace": serde_json::json!({
            "workload": "counter-stencil",
            "ranks": 64,
            "iterations": 200,
            "events": events,
            "metrics": trace.registry().num_metrics(),
        }),
        "bench": serde_json::json!({
            "reps_per_measurement": BENCH_REPS,
            "host_cpus": host_cpus,
            "relaxed": relaxed,
        }),
        "telemetry": serde_json::json!({
            "noop_s": noop_s,
            "observed_s": observed_s,
            "noop": noop_t.to_json(),
            "observed": observed_t.to_json(),
            "overhead_fraction": overhead,
            "stats": stats,
        }),
        "reference_sequential_s": reference_s,
        "reference_sequential": reference_t.to_json(),
        "fused_s": fused_s
            .iter()
            .map(|(n, t)| timing_row(*n, t))
            .collect::<Vec<_>>(),
        "fused_events_per_sec": events as f64 / fused_best,
        "speedup_fused8_vs_reference": speedup,
        "peak_invocations": serde_json::json!({
            "reference_materialised": reference_peak,
            "fused_per_worker_live": fused_peak,
        }),
        "out_of_core": ooc_rows,
        "scaling": serde_json::json!({
            "events": scaling_events,
            "threads": scaling_rows
                .iter()
                .map(|(n, t)| timing_row(*n, t))
                .collect::<Vec<_>>(),
            "speedup_8_vs_1": scaling_x,
            "gate_enforced": scaling_gated,
        }),
    });

    let speedup_floor = if relaxed { 1.0 } else { 1.5 };
    report.check(
        "PIPELINE fused streaming vs materialising reference",
        "fused analyze() ≥1.5× faster; worker state shrinks from \
         O(invocations) to O(stack + segments + functions)",
        format!(
            "reference {:.3} s, fused@8 {:.3} s ({speedup:.2}×); \
             {:.1}M events/s; peak state {reference_peak} invocations → {fused_peak} rows",
            reference_s,
            fused_at_8,
            events as f64 / fused_best / 1e6,
        ),
        speedup >= speedup_floor && fused_peak < reference_peak / 100,
    );

    report.check(
        "OUT-OF-CORE analyze_path vs in-memory fused",
        "speculative fusion reads the archive once (passes == 1, strict even \
         in relaxed mode) and the single streaming pass is no slower than \
         the in-memory path's end-to-end rate; per-worker state is \
         O(buffer + stack + segments + functions), independent of trace \
         length (64 and 256 ranks)",
        ooc_summary.join("; "),
        ooc_ok,
    );

    report.check(
        "TELEMETRY observability overhead",
        "recording per-stage spans, worker counters and progress ticks costs \
         <5% of fused-pipeline wall time (the noop recorder is one dead \
         branch); the stats document lands in BENCH_pipeline.json",
        format!(
            "noop {noop_s:.3} s vs observed {observed_s:.3} s ({:+.1}%); \
             {} stage(s), {} events counted over {} worker buffer(s)",
            overhead * 100.0,
            stats.stages.len(),
            stats.totals.events_replayed,
            stats.peaks.worker_buffers,
        ),
        telemetry_ok,
    );

    json
}

/// Measures the analysis daemon's content-addressed cache: cold
/// (pipeline runs) vs warm (cache hit) latency for the same request,
/// and verifies the telemetry at `/stats` shows exactly one analysis.
fn serve_benchmark(report: &mut Report, out_dir: &Path) -> serde_json::Value {
    use perfvar_analysis::prelude::PipelineStats;
    use perfvar_server::http::percent_encode;
    use perfvar_server::{client, ServeOptions, Server};
    use std::time::Instant;

    // Large enough that the cold request is dominated by the pipeline
    // rather than the loopback HTTP round-trip — the single-pass disk
    // path cut cold latency ~2×, which would otherwise squeeze the
    // warm/cold ratio on a tiny fixture.
    let trace = perfvar_bench::counter_stencil_trace(32, 500);
    let archive = out_dir.join("serve-fixture.pvta");
    perfvar_trace::format::write_trace_file(&trace, &archive).unwrap();

    let handle = Server::bind("127.0.0.1:0", ServeOptions::default())
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr().to_string();
    let target = format!(
        "/analyze?path={}",
        percent_encode(archive.to_str().unwrap())
    );

    let start = Instant::now();
    let cold = client::get(&addr, &target).unwrap();
    let cold_s = start.elapsed().as_secs_f64();
    assert_eq!(cold.status, 200, "{}", cold.body);
    // Speculative fusion streams the archive once (plus a small rank-0
    // prediction prefix), so one analysis replays roughly the event
    // count; capture the post-cold telemetry and require it to stay
    // frozen through the warm rounds.
    let after_cold: PipelineStats =
        serde_json::from_str(&client::get(&addr, "/stats").unwrap().body).unwrap();

    let mut warm_s = f64::INFINITY;
    let warm_rounds = 10usize;
    for _ in 0..warm_rounds {
        let start = Instant::now();
        let warm = client::get(&addr, &target).unwrap();
        warm_s = warm_s.min(start.elapsed().as_secs_f64());
        assert_eq!(warm.body, cold.body, "warm hit must be byte-identical");
    }

    let stats_resp = client::get(&addr, "/stats").unwrap();
    assert_eq!(stats_resp.status, 200, "{}", stats_resp.body);
    let stats: PipelineStats = serde_json::from_str(&stats_resp.body).unwrap();
    handle.shutdown();

    let events = trace.num_events() as u64;
    let speedup = cold_s / warm_s;
    let one_analysis = stats.totals.events_replayed > 0
        && stats.totals.events_replayed == after_cold.totals.events_replayed
        && stats.totals.bytes_decoded == after_cold.totals.bytes_decoded;

    report.check(
        "SERVE content-addressed result cache",
        "a warm /analyze hit answers from the cache ≥10× faster than the \
         cold request that ran the pipeline; /stats telemetry shows the \
         trace was analyzed exactly once across 1 cold + 10 warm requests \
         (cold/warm latency recorded in BENCH_pipeline.json)",
        format!(
            "cold {:.1} ms, warm {:.3} ms ({speedup:.0}×); \
             {} events replayed across {} requests, unchanged after the \
             cold one (trace has {}, streamed in a single fused pass)",
            cold_s * 1e3,
            warm_s * 1e3,
            stats.totals.events_replayed,
            warm_rounds + 1,
            events,
        ),
        speedup >= if bench_relaxed() { 2.0 } else { 10.0 } && one_analysis,
    );

    serde_json::json!({
        "ranks": 32,
        "events": events,
        "cold_s": cold_s,
        "warm_best_s": warm_s,
        "warm_rounds": warm_rounds,
        "warm_speedup": speedup,
        "events_replayed": stats.totals.events_replayed,
    })
}

/// Drives a sharded daemon with the `loadgen` engine — a closed-loop
/// mixed cold/warm request stream — and gates the p99 latency under
/// concurrency. The SERVE-LOAD row in BENCH_pipeline.json.
fn serve_load_benchmark(report: &mut Report, out_dir: &Path) -> serde_json::Value {
    use perfvar_bench::load;
    use perfvar_server::http::percent_encode;
    use perfvar_server::{client, ServeOptions, Server};

    // Smaller than the cache fixture: every cold request in the mix runs
    // the full pipeline, and there are ~10 of them per run.
    let trace = perfvar_bench::counter_stencil_trace(16, 200);
    let archive = out_dir.join("serve-load-fixture.pvta");
    perfvar_trace::format::write_trace_file(&trace, &archive).unwrap();

    let options = ServeOptions {
        shards: 2,
        ..ServeOptions::default()
    };
    let handle = Server::bind("127.0.0.1:0", options)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr().to_string();
    let encoded = percent_encode(archive.to_str().unwrap());

    // Prime the warm entry so "warm" is warm from the first sample.
    let prime = client::get(&addr, &format!("/analyze?path={encoded}")).unwrap();
    assert_eq!(prime.status, 200, "{}", prime.body);

    let requests = 120usize;
    let concurrency = 16usize;
    let cold_frac = 0.1;
    // cold_window 120 needs ≥ 123 iterations; the fixture has 200.
    let targets = load::mixed_targets(&encoded, requests, cold_frac, 120, 7);
    let cold = targets.iter().filter(|t| t.contains("multiplier")).count();
    let summary = load::closed_loop(&addr, &targets, concurrency);
    handle.shutdown();

    let p50 = summary.quantile(0.50);
    let p99 = summary.quantile(0.99);
    let p99_limit = if bench_relaxed() { 60.0 } else { 2.0 };
    report.check(
        "SERVE-LOAD p99 latency under concurrency",
        &format!(
            "{requests} closed-loop requests ({cold} cold / {} warm) from \
             {concurrency} workers against a 2-shard daemon all succeed \
             with p99 < {p99_limit:.0} s (p50/p99 recorded in \
             BENCH_pipeline.json)",
            requests - cold,
        ),
        format!(
            "p50 {:.1} ms, p99 {:.1} ms, {:.0} req/s, {} errors over {:.2} s",
            p50 * 1e3,
            p99 * 1e3,
            summary.throughput(),
            summary.errors,
            summary.wall_s,
        ),
        summary.errors == 0 && p99 < p99_limit,
    );

    serde_json::json!({
        "requests": requests,
        "cold": cold,
        "concurrency": concurrency,
        "shards": 2,
        "errors": summary.errors,
        "wall_s": summary.wall_s,
        "throughput_rps": summary.throughput(),
        "mean_s": summary.mean(),
        "p50_s": p50,
        "p99_s": p99,
    })
}

/// Regression hunting end-to-end: bisect a seeded 8-run archive sequence
/// with a work step planted at run 5 and require the comparison verdict
/// to (a) find exactly run 5, (b) do it in at most 1 + ⌈log₂ 7⌉ = 4
/// base-vs-candidate comparisons, and (c) agree across 5 repeated
/// invocations with fresh analyses — the determinism claim behind
/// `perfvar bisect --reps`. The REGRESSION row in BENCH_pipeline.json.
fn regression_benchmark(report: &mut Report, out_dir: &Path) -> serde_json::Value {
    use perfvar_analysis::{bisect_first_regression, RunComparison, DEFAULT_NOISE_THRESHOLD};

    let seq_dir = out_dir.join("regression-seq");
    std::fs::create_dir_all(&seq_dir).unwrap();
    let step_at = 5usize;
    let runs = perfvar_bench::regression_sequence(&seq_dir, 8, step_at);

    let analysis_of = |path: &Path| {
        let result = perfvar_analysis::outofcore::analyze_path_with(
            path,
            &AnalysisConfig::default(),
            perfvar_analysis::outofcore::RecoveryMode::Strict,
        )
        .unwrap();
        let names: Vec<String> = result
            .meta
            .registry
            .functions()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        (result.analysis, names)
    };

    let reps = 5usize;
    let mut outcomes = Vec::new();
    let mut relative_change = 0.0;
    for _ in 0..reps {
        let base = analysis_of(&runs[0]);
        let outcome = bisect_first_regression(runs.len(), |i| {
            let cand = analysis_of(&runs[i]);
            let comparison = RunComparison::compare_analyses(&base.0, &base.1, &cand.0, &cand.1);
            let verdict = comparison.verdict(DEFAULT_NOISE_THRESHOLD);
            if i == runs.len() - 1 {
                relative_change = verdict.relative_change;
            }
            Ok::<bool, std::convert::Infallible>(
                verdict.class == perfvar_analysis::VerdictClass::Regression,
            )
        })
        .unwrap();
        outcomes.push(outcome);
    }

    let first = &outcomes[0];
    let unanimous = outcomes.iter().all(|o| o.first_bad == first.first_bad);
    let max_comparisons = outcomes.iter().map(|o| o.comparisons).max().unwrap();
    let found = first.first_bad == Some(step_at);
    report.check(
        "REGRESSION bisect on a seeded run sequence",
        &format!(
            "the first regressing run of 8 (work step planted at run {step_at}) is found \
             in ≤4 comparisons; the verdict is identical over {reps} repeated walks"
        ),
        format!(
            "first_bad {:?} (expected Some({step_at})), ≤{max_comparisons} comparisons/walk, \
             {reps}/{reps} walks agree; step size {:+.0}% robust makespan",
            first.first_bad,
            relative_change * 100.0
        ),
        found && unanimous && max_comparisons <= 4,
    );

    serde_json::json!({
        "runs": runs.len(),
        "step_at": step_at,
        "first_bad": first.first_bad,
        "comparisons": first.comparisons,
        "reps": reps,
        "unanimous": unanimous,
        "relative_change": relative_change,
        "threshold": DEFAULT_NOISE_THRESHOLD,
    })
}

/// Live incremental analysis cost: grow a 16-rank counter stencil as a
/// live archive over many flush rounds, folding each appended slice
/// with [`LiveAnalysis::poll`](perfvar_analysis::live::LiveAnalysis),
/// and gate that (a) the finalized live result is identical to the
/// one-shot batch analysis of the sealed archive, and (b) the *total*
/// incremental folding cost stays within a small factor of a single
/// one-shot analysis — re-analysing from scratch after every flush,
/// which is what a dashboard had to do before the live path existed,
/// costs `rounds ×` that. The LIVE row in BENCH_pipeline.json.
fn live_benchmark(report: &mut Report, out_dir: &Path) -> serde_json::Value {
    use perfvar_analysis::live::LiveAnalysis;
    use perfvar_trace::format::live::LiveArchiveWriter;
    use std::time::Instant;

    let trace = perfvar_bench::counter_stencil_trace(16, 200);
    let archive = out_dir.join("live-fixture.pvta");
    let _ = std::fs::remove_dir_all(&archive);
    let mut w =
        LiveArchiveWriter::create(&archive, "live-bench", trace.clock(), trace.registry()).unwrap();
    let mut live = LiveAnalysis::open(&archive, AnalysisConfig::default()).unwrap();

    let streams = trace.streams();
    let rounds = 16usize;
    let chunk = streams
        .iter()
        .map(|s| s.records().len())
        .max()
        .unwrap_or(0)
        .div_ceil(rounds)
        .max(1);
    let mut offsets = vec![0usize; streams.len()];
    let mut poll_total_s = 0.0f64;
    let mut max_poll_s = 0.0f64;
    let mut polls = 0usize;
    loop {
        let mut wrote = false;
        for (i, stream) in streams.iter().enumerate() {
            let records = stream.records();
            let end = (offsets[i] + chunk).min(records.len());
            for r in &records[offsets[i]..end] {
                w.append(stream.process, r).unwrap();
            }
            wrote |= end > offsets[i];
            offsets[i] = end;
        }
        if !wrote {
            break;
        }
        w.flush().unwrap();
        let t = Instant::now();
        live.poll();
        let dt = t.elapsed().as_secs_f64();
        poll_total_s += dt;
        max_poll_s = max_poll_s.max(dt);
        polls += 1;
    }
    w.finish().unwrap();
    loop {
        let t = Instant::now();
        let delta = live.poll();
        poll_total_s += t.elapsed().as_secs_f64();
        if delta.finished {
            break;
        }
    }
    let folded = live.finalize().unwrap();

    let t = Instant::now();
    let one_shot = perfvar_analysis::outofcore::analyze_path_with(
        &archive,
        &AnalysisConfig::default(),
        perfvar_analysis::outofcore::RecoveryMode::Strict,
    )
    .unwrap();
    let one_shot_s = t.elapsed().as_secs_f64();

    let identical =
        serde_json::to_value(&folded.analysis) == serde_json::to_value(&one_shot.analysis);
    let naive_s = one_shot_s * polls as f64;
    let limit = if bench_relaxed() { 20.0 } else { 4.0 };
    report.check(
        "LIVE incremental re-analysis cost",
        &format!(
            "folding a run incrementally over {rounds} flushes costs ≤{limit:.0}× one \
             one-shot analysis (re-analysing from scratch per flush costs {rounds}×) \
             and finalizes bit-identically to the batch result"
        ),
        format!(
            "{polls} polls {:.1} ms total (max {:.1} ms) vs one-shot {:.1} ms \
             (naive per-flush re-analysis ≈ {:.1} ms); identical: {identical}",
            poll_total_s * 1e3,
            max_poll_s * 1e3,
            one_shot_s * 1e3,
            naive_s * 1e3,
        ),
        identical && poll_total_s <= limit * one_shot_s,
    );

    serde_json::json!({
        "ranks": 16,
        "rounds": polls,
        "poll_total_s": poll_total_s,
        "max_poll_s": max_poll_s,
        "one_shot_s": one_shot_s,
        "naive_reanalysis_s": naive_s,
        "identical": identical,
    })
}

fn ablation_sos_vs_durations(report: &mut Report) {
    let mut sos_hits = 0usize;
    let mut duration_hits = 0usize;
    let trials = 10usize;
    for k in 0..trials {
        let ranks = 8;
        let outlier = (3 * k + 1) % ranks;
        let trace = outlier_trace(ranks, 10, outlier);
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        if analysis.imbalance.hottest_process() == Some(ProcessId::from_index(outlier)) {
            sos_hits += 1;
        }
        let naive = ImbalanceAnalysis::detect(
            &analysis.sos.durations_as_sos(),
            AnalysisConfig::default().imbalance,
        );
        // The naive variant must name the process; ties (everyone equal
        // because of barrier waiting) resolve arbitrarily.
        let naive_scores = &naive.process_scores;
        let naive_max = naive_scores
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        // Count a hit only if the outlier's score clearly exceeds peers.
        if naive_scores[outlier] >= naive_max && naive_max > 3.5 {
            duration_hits += 1;
        }
    }
    report.check(
        "ABLATION SOS vs plain durations",
        "plain durations cannot identify the slow process (§V); SOS-time can",
        format!("SOS localises {sos_hits}/{trials}; plain durations {duration_hits}/{trials}"),
        sos_hits == trials && duration_hits < trials / 2,
    );
}

// ───────────────────── diagnosis benchmark ─────────────────────

/// Automatic diagnosis at scale: a 10 000-rank COSMO-SPECS cloud and a
/// 10 000-rank desynchronisation wave, both diagnosed from their
/// finished analyses. Gates: the diagnosis layer itself stays under the
/// wall gate (it must never materialise a rank × rank distance matrix),
/// each seeded cause is named by the *top* finding, the heatmap summary
/// respects the cluster cap, and the JSON bytes are identical across
/// thread counts. The DIAGNOSE row in BENCH_pipeline.json.
fn diagnose_benchmark(report: &mut Report, _out_dir: &Path) -> serde_json::Value {
    use perfvar_analysis::findings::FindingKind;
    use perfvar_analysis::{diagnose_meta, DiagnoseConfig};
    use perfvar_sim::workloads::{CosmoSpecs, DesyncWave, Workload};
    use perfvar_trace::TraceMeta;

    let relaxed = bench_relaxed();
    let wall_gate = if relaxed { 12.0 } else { 2.0 };
    let config = DiagnoseConfig::default();

    // Case 1 — static imbalance: the paper's cloud scaled to a 100 × 100
    // grid. Short runs need a stronger cloud than the paper's
    // 60-iteration build-up to clear the persistent-overload bar.
    let mut cosmo = CosmoSpecs::small(100, 100, 8);
    cosmo.cloud_amplitude = 6.0;
    let cloudy = cosmo.cloudy_ranks();
    let hottest = cosmo.hottest_rank();
    let trace = perfvar_sim::simulate(&cosmo.spec()).unwrap();
    let meta = TraceMeta::of(&trace);
    let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
    let imbalance_t = time_reps(&mut || {
        diagnose_meta(&meta, &analysis, &config);
    });
    let diagnosis = diagnose_meta(&meta, &analysis, &config);
    let overload_top = matches!(
        diagnosis.findings.first().map(|f| &f.kind),
        Some(FindingKind::OverloadedCluster { .. })
    );
    // Every rank an OverloadedCluster finding names must really sit
    // under the cloud, and the hottest rank must be among them.
    let mut named = Vec::new();
    for finding in &diagnosis.findings {
        if let FindingKind::OverloadedCluster { processes, .. } = &finding.kind {
            named.extend(processes.iter().map(|p| p.index()));
        }
    }
    let all_cloudy = named.iter().all(|r| cloudy.contains(r));
    let hottest_named = named.contains(&hottest);
    let capped = diagnosis.clusters.len() <= config.max_clusters;
    report.check(
        "DIAGNOSE 10k-rank static imbalance",
        "top finding: OverloadedCluster naming only cloudy ranks, incl. the hottest; \
         ≤ 20 heatmap rows",
        format!(
            "top OverloadedCluster: {overload_top}; {} named rank(s), all cloudy: {all_cloudy}, \
             hottest ({hottest}) named: {hottest_named}; {} cluster row(s)",
            named.len(),
            diagnosis.clusters.len()
        ),
        overload_top && all_cloudy && hottest_named && capped,
    );

    // Bit-stability: the diagnosis consumes only the (bit-stable)
    // analysis, so its bytes must not depend on the thread count.
    let mut bodies = Vec::new();
    for threads in [1usize, 4] {
        let cfg = AnalysisConfig {
            threads,
            ..AnalysisConfig::default()
        };
        let a = analyze(&trace, &cfg).unwrap();
        let d = diagnose_meta(&meta, &a, &config);
        bodies.push(serde_json::to_string_pretty(&d).unwrap());
    }
    let thread_stable = bodies.windows(2).all(|w| w[0] == w[1]);
    report.check(
        "DIAGNOSE thread stability",
        "identical JSON at --threads 1 and 4",
        format!("identical: {thread_stable}"),
        thread_stable,
    );

    // Case 2 — the desynchronisation wave: one rank's one-off delay
    // sweeps its ring neighbours one segment per hop (Afzal et al.);
    // compute is balanced, so only the wait pattern carries the cause.
    let wave_workload = DesyncWave::new(10_000, 30, 2_500);
    let wave_trace = perfvar_sim::simulate(&wave_workload.spec()).unwrap();
    let wave_meta = TraceMeta::of(&wave_trace);
    let wave_analysis = analyze(&wave_trace, &AnalysisConfig::default()).unwrap();
    let wave_t = time_reps(&mut || {
        diagnose_meta(&wave_meta, &wave_analysis, &config);
    });
    let wave_diagnosis = diagnose_meta(&wave_meta, &wave_analysis, &config);
    let wave_top = match wave_diagnosis.findings.first().map(|f| &f.kind) {
        Some(FindingKind::PropagatingWait { origin, .. }) => origin.index() == 2_500,
        _ => false,
    };
    let wave_found = wave_diagnosis.wave.as_ref().is_some_and(|w| {
        w.origin.index() == 2_500 && w.start_ordinal == wave_workload.delay_iteration
    });
    report.check(
        "DIAGNOSE 10k-rank desync wave",
        "top finding: PropagatingWait with the seeded origin (rank 2500) and delay segment",
        format!(
            "top PropagatingWait at origin: {wave_top}; wave recovered: {wave_found} \
             ({} cluster row(s))",
            wave_diagnosis.clusters.len()
        ),
        wave_top && wave_found && wave_diagnosis.clusters.len() <= config.max_clusters,
    );

    let slowest = imbalance_t.best.max(wave_t.best);
    report.check(
        "DIAGNOSE wall time",
        &format!("each 10k-rank diagnosis under {wall_gate} s (no rank × rank matrix)"),
        format!(
            "imbalance best {:.3} s, wave best {:.3} s",
            imbalance_t.best, wave_t.best
        ),
        slowest < wall_gate,
    );

    serde_json::json!({
        "ranks": 10_000,
        "imbalance": imbalance_t.to_json(),
        "wave": wave_t.to_json(),
        "clusters_imbalance": diagnosis.clusters.len(),
        "clusters_wave": wave_diagnosis.clusters.len(),
        "max_clusters": config.max_clusters,
        "thread_stable": thread_stable,
        "wall_gate_s": wall_gate,
        "relaxed": relaxed,
    })
}
