//! loadgen — an open/closed-loop load generator for `perfvar serve`.
//!
//! Drives a running daemon with a mixed cold/warm request stream and
//! reports the latency distribution as JSON on stdout:
//!
//! ```text
//! loadgen --addr 127.0.0.1:7787 --path /traces/run.pvta \
//!         [--requests 200] [--concurrency 8] [--mode closed|open] \
//!         [--rate 50] [--cold-frac 0.1] [--seed N]
//! ```
//!
//! * `--mode closed` (default): `--concurrency` workers each keep one
//!   request in flight — offered load adapts to the daemon.
//! * `--mode open`: requests are dispatched at `--rate` per second
//!   regardless of completions — queueing delay under overload shows up
//!   in the tail latencies instead of silently throttling the run.
//!   Catch-up is capped: ticks the dispatcher cannot send within a few
//!   intervals of schedule are shed rather than bursted back-to-back,
//!   and the shed count is reported as `dropped` in the summary — a
//!   non-zero `dropped` means the requested rate was not deliverable.
//! * `--cold-frac F`: fraction of requests that bust the daemon's
//!   content-addressed cache (each cold request varies the `multiplier`
//!   threshold, which is part of the cache key, so it runs the full
//!   analysis pipeline); the rest are warm cache hits. The cache is
//!   primed with one untimed request before the run so "warm" means
//!   warm from the first sample.
//! * `--cold-window N`: how many distinct cache-busting multiplier
//!   values to cycle through (default 64). The trace must iterate at
//!   least `3 + N` times or the larger thresholds fail with 422; keep
//!   N above the daemon's `--cache-entries` when re-running against a
//!   long-lived daemon.
//!
//! Exit status is non-zero if any request failed.

use perfvar_bench::load;
use perfvar_server::http::percent_encode;

struct Args {
    addr: String,
    path: String,
    requests: usize,
    concurrency: usize,
    open: bool,
    rate: f64,
    cold_frac: f64,
    cold_window: u64,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT --path TRACE [--requests N] [--concurrency N] \
         [--mode closed|open] [--rate RPS] [--cold-frac F] [--cold-window N] [--seed N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        path: String::new(),
        requests: 200,
        concurrency: 8,
        open: false,
        rate: 50.0,
        cold_frac: 0.1,
        cold_window: 64,
        seed: std::process::id() as u64,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => args.addr = value(),
            "--path" => args.path = value(),
            "--requests" => args.requests = value().parse().unwrap_or_else(|_| usage()),
            "--concurrency" => args.concurrency = value().parse().unwrap_or_else(|_| usage()),
            "--mode" => match value().as_str() {
                "closed" => args.open = false,
                "open" => args.open = true,
                _ => usage(),
            },
            "--rate" => args.rate = value().parse().unwrap_or_else(|_| usage()),
            "--cold-frac" => args.cold_frac = value().parse().unwrap_or_else(|_| usage()),
            "--cold-window" => args.cold_window = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if args.addr.is_empty() || args.path.is_empty() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    let encoded = percent_encode(&args.path);

    // Prime the warm entry so the mix measures a steady-state daemon,
    // not one whose very first "warm" request is secretly cold.
    let prime = format!("/analyze?path={encoded}");
    match perfvar_server::client::get(&args.addr, &prime) {
        Ok(resp) if resp.status == 200 => {}
        Ok(resp) => {
            eprintln!(
                "loadgen: priming request failed with {}: {}",
                resp.status, resp.body
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("loadgen: cannot reach {}: {e}", args.addr);
            std::process::exit(1);
        }
    }

    let targets = load::mixed_targets(
        &encoded,
        args.requests,
        args.cold_frac,
        args.cold_window,
        args.seed,
    );
    let cold = targets.iter().filter(|t| t.contains("multiplier")).count();
    let summary = if args.open {
        load::open_loop(&args.addr, &targets, args.rate)
    } else {
        load::closed_loop(&args.addr, &targets, args.concurrency)
    };

    let doc = serde_json::json!({
        "mode": if args.open { "open" } else { "closed" },
        "requests": args.requests,
        "cold": cold,
        "warm": args.requests - cold,
        "concurrency": args.concurrency,
        "rate": if args.open { Some(args.rate) } else { None },
        "errors": summary.errors,
        "dropped": summary.dropped,
        "wall_s": summary.wall_s,
        "throughput_rps": summary.throughput(),
        "mean_s": summary.mean(),
        "p50_s": summary.quantile(0.50),
        "p90_s": summary.quantile(0.90),
        "p99_s": summary.quantile(0.99),
    });
    println!("{}", serde_json::to_string_pretty(&doc).unwrap());
    if summary.errors > 0 {
        eprintln!(
            "loadgen: {} of {} requests failed",
            summary.errors, args.requests
        );
        std::process::exit(1);
    }
}
