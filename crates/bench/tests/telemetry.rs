//! Telemetry correctness on the bench fixture: the counters the
//! instrumented pipelines record must sum to totals that are knowable
//! independently — event counts from the trace, segment counts from the
//! produced segmentation — on both the in-memory and out-of-core routes.

use perfvar_analysis::{
    analyze, analyze_observed, analyze_path_observed, AnalysisConfig, RecoveryMode, Telemetry,
};
use perfvar_bench::counter_stencil_trace;
use perfvar_trace::format::write_trace_file;

#[test]
fn in_memory_counters_sum_to_known_event_totals() {
    let trace = counter_stencil_trace(8, 30);
    let config = AnalysisConfig::default();
    let telemetry = Telemetry::enabled();
    let analysis = analyze_observed(&trace, &config, &telemetry).expect("analysis succeeds");
    let stats = telemetry.snapshot().expect("enabled recorder snapshots");

    // The profile pass and the fuse pass each replay every record of
    // every stream exactly once.
    let total_events = trace.num_events() as u64;
    assert_eq!(
        stats.stage("profile").expect("profile stage").events,
        total_events
    );
    assert_eq!(
        stats.stage("fuse").expect("fuse stage").events,
        total_events
    );
    assert_eq!(stats.totals.events_replayed, 2 * total_events);

    // One emitted segment per invocation of the segmentation function.
    assert_eq!(
        stats.totals.segments_emitted,
        analysis.segmentation.len() as u64
    );

    assert_eq!(stats.ranks, 8);
    // main → stencil_iteration → compute_stencil/MPI_Barrier nesting.
    assert!(stats.peaks.max_stack_depth >= 3, "{:?}", stats.peaks);
    // At least one worker buffer per rank per instrumented pass.
    assert!(stats.peaks.worker_buffers >= 16, "{:?}", stats.peaks);
    // A well-formed fixture never trips the SOS-underflow detector.
    assert_eq!(stats.totals.sos_clamped, 0);

    // Observation is free of side effects: the uninstrumented entry
    // point produces the identical analysis.
    assert_eq!(analysis, analyze(&trace, &config).expect("reference run"));
}

#[test]
fn out_of_core_counters_cover_the_single_combined_pass() {
    let trace = counter_stencil_trace(6, 20);
    let dir = std::env::temp_dir().join("perfvar-bench-telemetry");
    std::fs::create_dir_all(&dir).unwrap();
    let archive = dir.join("stencil.pvta");
    write_trace_file(&trace, &archive).expect("archive written");

    let config = AnalysisConfig::default();
    let telemetry = Telemetry::enabled();
    let result = analyze_path_observed(&archive, &config, RecoveryMode::Strict, &telemetry)
        .expect("out-of-core analysis succeeds");
    let stats = telemetry.snapshot().expect("enabled recorder snapshots");

    // SPMD fixture: the rank-0 prefix prediction is confirmed, so the
    // trace is read exactly once (plus the bounded prediction prefix).
    assert_eq!(result.passes, 1);
    let total_events = trace.num_events() as u64;
    let profile = stats.stage("profile").expect("profile stage");
    let fuse = stats.stage("fuse").expect("fuse stage");
    // The combined pass replays every record of every stream once; the
    // prediction replays at most one rank's worth.
    assert_eq!(fuse.events, total_events);
    assert!(profile.events > 0 && profile.events <= total_events / 6);
    assert_eq!(stats.totals.events_replayed, total_events + profile.events);

    // The prediction decodes (at most) rank 0's stream; the combined
    // pass decodes all six.
    assert!(profile.bytes > 0);
    assert!(profile.bytes < fuse.bytes);
    assert_eq!(stats.totals.bytes_decoded, profile.bytes + fuse.bytes);

    // The effective read-buffer knob lands in the peak gauges.
    assert_eq!(
        stats.peaks.read_buffer_bytes,
        config.read_buffer_bytes as u64
    );

    assert_eq!(stats.ranks, 6);
    assert_eq!(stats.totals.recovery_events, 0);

    // The observed out-of-core result matches the in-memory pipeline.
    assert_eq!(
        result.analysis,
        analyze(&trace, &config).expect("reference run")
    );
}
