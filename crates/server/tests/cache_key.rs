//! Property tests of the content-addressed cache key: requests that
//! must share a key do, and every result-affecting input — any single
//! config field, the recovery mode, the refinement depth, or any single
//! byte of the trace file — moves to a different key. The thread count
//! is the one deliberate exception: the pipeline is bit-identical at
//! every parallelism, so parallelism must *not* fragment the cache.

use perfvar_analysis::{AnalysisConfig, RecoveryMode};
use perfvar_server::cache_key;
use perfvar_trace::format::digest::digest_path;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = AnalysisConfig> {
    (
        (2u64..6, 0u8..3), // multiplier; segment_function None/"inner"/"leaf"
        (1.5f64..5.0, 0.01f64..0.5),
        (0u8..2, 0usize..32), // analyze_counters; threads
    )
        .prop_map(|((mult, func), (z, excess), (counters, threads))| {
            let mut config = AnalysisConfig {
                segment_function: match func {
                    0 => None,
                    1 => Some("inner".to_string()),
                    _ => Some("leaf".to_string()),
                },
                ..AnalysisConfig::default()
            };
            config.dominant_multiplier = mult;
            config.imbalance.z_threshold = z;
            config.imbalance.min_relative_excess = excess;
            config.analyze_counters = counters == 1;
            config.threads = threads;
            config
        })
}

fn mode_of(bit: u8) -> RecoveryMode {
    if bit == 0 {
        RecoveryMode::Strict
    } else {
        RecoveryMode::Partial
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same digest + same result-affecting inputs → same key, no matter
    /// how the configs differ in thread count.
    #[test]
    fn equal_inputs_share_a_key_and_threads_never_matter(
        config in config_strategy(),
        digest in 0u64..u64::MAX,
        mode_bit in 0u8..2,
        steps in 0usize..4,
        other_threads in 0usize..64,
    ) {
        let digest = digest as u128;
        let mode = mode_of(mode_bit);
        let key = cache_key(digest, &config, mode, steps);
        prop_assert_eq!(key, cache_key(digest, &config, mode, steps));
        let rethreaded = AnalysisConfig { threads: other_threads, ..config.clone() };
        prop_assert_eq!(key, cache_key(digest, &rethreaded, mode, steps));
    }

    /// Every single-field change — config knobs, recovery mode,
    /// refinement depth, trace digest — lands on a different key.
    #[test]
    fn each_result_affecting_input_changes_the_key(
        config in config_strategy(),
        digest in 0u64..u64::MAX,
        mode_bit in 0u8..2,
        steps in 0usize..4,
    ) {
        let digest = digest as u128;
        let mode = mode_of(mode_bit);
        let base = cache_key(digest, &config, mode, steps);

        let mut c = config.clone();
        c.dominant_multiplier += 1;
        prop_assert_ne!(base, cache_key(digest, &c, mode, steps));

        let mut c = config.clone();
        c.segment_function = match &config.segment_function {
            None => Some("other".to_string()),
            Some(_) => None,
        };
        prop_assert_ne!(base, cache_key(digest, &c, mode, steps));

        let mut c = config.clone();
        c.imbalance.z_threshold += 0.25;
        prop_assert_ne!(base, cache_key(digest, &c, mode, steps));

        let mut c = config.clone();
        c.imbalance.min_relative_excess += 0.125;
        prop_assert_ne!(base, cache_key(digest, &c, mode, steps));

        let mut c = config.clone();
        c.analyze_counters = !config.analyze_counters;
        prop_assert_ne!(base, cache_key(digest, &c, mode, steps));

        let other_mode = mode_of(1 - mode_bit);
        prop_assert_ne!(base, cache_key(digest, &config, other_mode, steps));

        prop_assert_ne!(base, cache_key(digest, &config, mode, steps + 1));

        prop_assert_ne!(base, cache_key(digest ^ 1, &config, mode, steps));
    }

    /// Flipping any single byte of the trace file changes its digest —
    /// and therefore, by the property above, its cache key.
    #[test]
    fn any_byte_flip_changes_the_digest(
        content in proptest::collection::vec(0u8..=255, 1..512),
        flip_at in 0usize..512,
        flip_with in 1u8..=255,
    ) {
        let dir = std::env::temp_dir().join("perfvar-server-keyprops");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("flip-{:x}.pvt", std::process::id()));
        std::fs::write(&path, &content).unwrap();
        let before = digest_path(&path).unwrap();
        prop_assert_eq!(before, digest_path(&path).unwrap());

        let mut flipped = content.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= flip_with;
        std::fs::write(&path, &flipped).unwrap();
        let after = digest_path(&path).unwrap();
        prop_assert_ne!(before, after);
    }
}
