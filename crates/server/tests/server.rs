//! End-to-end tests of the analysis daemon: in-process [`Server`]
//! instances exercised over real TCP sockets with the crate's own
//! minimal client.
//!
//! The telemetry counters exposed at `/stats` double as the test
//! oracle for the cache and singleflight guarantees: `events_replayed`
//! only moves when the pipeline actually runs, so "exactly one
//! analysis" and "warm hits never touch the trace" are assertions on
//! those totals, not on timing.

use perfvar_analysis::PipelineStats;
use perfvar_server::http::percent_encode;
use perfvar_server::{client, ServeOptions, Server};
use perfvar_trace::format::{archive, write_trace_file};
use perfvar_trace::{Clock, FunctionRole, MetricMode, Timestamp, Trace, TraceBuilder};
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("perfvar-server-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Multi-rank trace with nested compute, synchronization, and two
/// hardware-counter channels — enough structure for segmentation,
/// refinement, and metric correlation all to engage.
fn fixture_trace(ranks: u64) -> Trace {
    let mut b = TraceBuilder::new(Clock::microseconds()).with_name("served");
    let iter_f = b.define_function("iteration", FunctionRole::Compute);
    let inner_f = b.define_function("inner", FunctionRole::Compute);
    let mpi_f = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
    let cyc = b.define_metric("CYC", MetricMode::Accumulating, "cycles");
    let exc = b.define_metric("EXC", MetricMode::Delta, "#");
    for pi in 0..ranks {
        let p = b.define_process(format!("rank {pi}"));
        let w = b.process_mut(p);
        let mut t = 0u64;
        let mut total = 0u64;
        for k in 0..8u64 {
            let load = 100 + (pi * 17 + k * 11) % 50;
            w.enter(Timestamp(t), iter_f).unwrap();
            w.metric(Timestamp(t), cyc, total).unwrap();
            w.enter(Timestamp(t + 4), inner_f).unwrap();
            w.metric(Timestamp(t + 8), exc, k + 1).unwrap();
            w.leave(Timestamp(t + load / 2), inner_f).unwrap();
            t += load;
            total += load * 3;
            w.enter(Timestamp(t), mpi_f).unwrap();
            w.leave(Timestamp(t + 15), mpi_f).unwrap();
            t += 15;
            w.metric(Timestamp(t), cyc, total).unwrap();
            w.leave(Timestamp(t), iter_f).unwrap();
        }
    }
    b.finish().unwrap()
}

fn write_fixture(dir: &Path, ranks: u64) -> PathBuf {
    let path = dir.join("t.pvta");
    write_trace_file(&fixture_trace(ranks), &path).unwrap();
    path
}

fn spawn(options: ServeOptions) -> (perfvar_server::ServerHandle, String) {
    let server = Server::bind("127.0.0.1:0", options).unwrap();
    let handle = server.spawn().unwrap();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn analyze_target(path: &Path) -> String {
    format!("/analyze?path={}", percent_encode(path.to_str().unwrap()))
}

fn stats_of(addr: &str) -> PipelineStats {
    let resp = client::get(addr, "/stats").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    serde_json::from_str(&resp.body).unwrap()
}

#[test]
fn sixteen_concurrent_cold_requests_run_exactly_one_analysis() {
    let dir = tmp("stress");
    let trace = write_fixture(&dir, 6);
    let (handle, addr) = spawn(ServeOptions::default());
    let target = analyze_target(&trace);

    let handles: Vec<_> = (0..16)
        .map(|_| {
            let addr = addr.clone();
            let target = target.clone();
            std::thread::spawn(move || client::get(&addr, &target).unwrap())
        })
        .collect();
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for resp in &responses {
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.body, responses[0].body, "all clients share one result");
    }

    // Reference: one request on a fresh daemon replays this many events.
    let (ref_handle, ref_addr) = spawn(ServeOptions::default());
    let resp = client::get(&ref_addr, &target).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let one = stats_of(&ref_addr).totals.events_replayed;
    assert!(one > 0, "pipeline records replayed events");
    ref_handle.shutdown();

    let stressed = stats_of(&addr).totals.events_replayed;
    assert_eq!(
        stressed, one,
        "16 concurrent cold requests must coalesce into exactly one analysis"
    );
    handle.shutdown();
}

#[test]
fn warm_hits_do_not_rerun_the_pipeline_or_reread_the_trace() {
    let dir = tmp("warm");
    let trace = write_fixture(&dir, 4);
    let (handle, addr) = spawn(ServeOptions::default());
    let target = analyze_target(&trace);

    let cold = client::get(&addr, &target).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    let after_cold = stats_of(&addr).totals;
    assert!(after_cold.events_replayed > 0);
    assert!(after_cold.bytes_decoded > 0);

    for _ in 0..5 {
        let warm = client::get(&addr, &target).unwrap();
        assert_eq!(warm.status, 200);
        assert_eq!(warm.body, cold.body, "warm hit is byte-identical");
    }
    let after_warm = stats_of(&addr).totals;
    assert_eq!(
        (after_warm.events_replayed, after_warm.bytes_decoded),
        (after_cold.events_replayed, after_cold.bytes_decoded),
        "warm hits must not replay events or decode trace bytes"
    );
    handle.shutdown();
}

#[test]
fn modifying_the_archive_invalidates_the_cached_result() {
    let dir = tmp("invalidate");
    let trace = write_fixture(&dir, 3);
    let (handle, addr) = spawn(ServeOptions::default());
    let target = analyze_target(&trace);

    let before = client::get(&addr, &target).unwrap();
    assert_eq!(before.status, 200, "{}", before.body);
    let cold_events = stats_of(&addr).totals.events_replayed;

    // Rewrite the archive with different content (more ranks).
    write_trace_file(&fixture_trace(5), &trace).unwrap();
    let after = client::get(&addr, &target).unwrap();
    assert_eq!(after.status, 200, "{}", after.body);
    assert_ne!(after.body, before.body, "new content, new result");
    assert!(
        stats_of(&addr).totals.events_replayed > cold_events,
        "changed bytes must miss the cache and re-analyze"
    );
    handle.shutdown();
}

/// Pins every constituent file of the archive to `second`, emulating a
/// filesystem with whole-second mtime granularity.
fn pin_whole_second_mtimes(archive_dir: &Path, second: std::time::SystemTime) {
    for entry in std::fs::read_dir(archive_dir).unwrap() {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(entry.unwrap().path())
            .unwrap();
        file.set_modified(second).unwrap();
    }
}

#[test]
fn same_second_equal_length_rewrite_is_never_served_stale() {
    use std::time::{Duration, SystemTime, UNIX_EPOCH};
    let dir = tmp("same-second");
    let trace = write_fixture(&dir, 3);
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_secs();
    let second = UNIX_EPOCH + Duration::from_secs(secs);
    pin_whole_second_mtimes(&trace, second);

    let (handle, addr) = spawn(ServeOptions::default());
    let target = analyze_target(&trace);
    let before = client::get(&addr, &target).unwrap();
    assert_eq!(before.status, 200, "{}", before.body);

    // Rewrite one stream in place: same length, different bytes, same
    // whole-second mtime — invisible to a pure size+mtime signature.
    let stream = trace.join(archive::stream_file(1));
    let mut bytes = std::fs::read(&stream).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&stream, &bytes).unwrap();
    pin_whole_second_mtimes(&trace, second);

    // The changed bytes must be detected (fresh digest → new analysis
    // or a decode error) — never the memoised result of the old bytes.
    let after = client::get(&addr, &target).unwrap();
    assert!(
        after.status != 200 || after.body != before.body,
        "in-place rewrite within mtime granularity was served stale"
    );
    handle.shutdown();
}

#[test]
fn disk_spill_serves_a_fresh_daemon_without_reanalyzing() {
    let dir = tmp("spill");
    let trace = write_fixture(&dir, 4);
    let cache_dir = dir.join("cache");
    let options = || ServeOptions {
        cache_dir: Some(cache_dir.clone()),
        ..ServeOptions::default()
    };

    let (first, addr) = spawn(options());
    let target = analyze_target(&trace);
    let cold = client::get(&addr, &target).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    first.shutdown();

    // A brand-new daemon over the same spill directory answers from disk:
    // zero events replayed.
    let (second, addr2) = spawn(options());
    let warm = client::get(&addr2, &target).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(warm.body, cold.body, "spilled result is byte-identical");
    assert_eq!(
        stats_of(&addr2).totals.events_replayed,
        0,
        "disk hit must not run the pipeline"
    );
    second.shutdown();
}

#[test]
fn refine_and_config_parameters_shape_the_result() {
    let dir = tmp("refine");
    let trace = write_fixture(&dir, 4);
    let (handle, addr) = spawn(ServeOptions::default());
    let enc = percent_encode(trace.to_str().unwrap());

    let segmented_on = |body: &str| -> u64 {
        let doc: serde_json::Value = serde_json::from_str(body).unwrap();
        let serde_json::Value::Object(fields) = doc else {
            panic!("analysis body is not an object")
        };
        let function = fields
            .iter()
            .find(|(k, _)| k == "function")
            .map(|(_, v)| v.clone())
            .expect("analysis has a function field");
        match function {
            serde_json::Value::Number(n) => n.as_u64().unwrap(),
            other => panic!("unexpected function field {other:?}"),
        }
    };

    let base = client::get(&addr, &format!("/analyze?path={enc}")).unwrap();
    assert_eq!(base.status, 200, "{}", base.body);
    assert!(
        base.body.contains("\"trace_name\": \"served\""),
        "{}",
        base.body
    );

    // Forcing the segmentation function and refining one step both move
    // the segmentation off the dominant function.
    let forced = client::get(&addr, &format!("/analyze?path={enc}&function=inner")).unwrap();
    assert_eq!(forced.status, 200, "{}", forced.body);
    assert_ne!(forced.body, base.body);
    assert_ne!(segmented_on(&forced.body), segmented_on(&base.body));
    let refined = client::get(&addr, &format!("/refine?path={enc}&steps=1")).unwrap();
    assert_eq!(refined.status, 200, "{}", refined.body);
    assert_ne!(segmented_on(&refined.body), segmented_on(&base.body));

    // Refining past the leaf is a client error, not a crash.
    let too_deep = client::get(&addr, &format!("/refine?path={enc}&steps=9")).unwrap();
    assert_eq!(too_deep.status, 422, "{}", too_deep.body);
    assert!(too_deep.body.contains("no finer segmentation function"));

    // Metric channels are served individually...
    let metric = client::get(&addr, &format!("/analyze?path={enc}&metric=CYC")).unwrap();
    assert_eq!(metric.status, 200, "{}", metric.body);
    assert!(metric.body.contains("correlation"), "{}", metric.body);
    // ...and an unknown name 404s, listing what exists.
    let missing = client::get(&addr, &format!("/analyze?path={enc}&metric=FLOPS")).unwrap();
    assert_eq!(missing.status, 404, "{}", missing.body);
    assert!(missing.body.contains("CYC") && missing.body.contains("EXC"));
    handle.shutdown();
}

#[test]
fn error_paths_are_typed_json_and_the_daemon_survives_them() {
    let dir = tmp("errors");
    let trace = write_fixture(&dir, 4);
    let (handle, addr) = spawn(ServeOptions::default());

    // Missing required parameter → 400.
    let resp = client::get(&addr, "/analyze").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("\"error\""));
    assert!(resp.body.contains("path"));

    // Nonexistent trace → 404.
    let resp = client::get(&addr, "/analyze?path=%2Fno%2Fsuch%2Ftrace.pvta").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(resp.body.contains("\"error\""));

    // Bad numeric parameter → 400.
    let enc = percent_encode(trace.to_str().unwrap());
    let resp = client::get(&addr, &format!("/analyze?path={enc}&multiplier=lots")).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    // Unknown endpoint → 404; non-GET → 405.
    let resp = client::get(&addr, "/delete-everything").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);

    // Truncated stream file → typed 422 naming the corrupt rank/offset.
    let stream1 = trace.join(archive::stream_file(1));
    let bytes = std::fs::read(&stream1).unwrap();
    std::fs::write(&stream1, &bytes[..bytes.len() - 9]).unwrap();
    let resp = client::get(&addr, &format!("/analyze?path={enc}")).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("corrupt at byte"), "{}", resp.body);

    // …but partial recovery over the same damaged archive still works.
    let resp = client::get(&addr, &format!("/analyze?path={enc}&partial")).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    // The daemon survives all of the above.
    let health = client::get(&addr, "/health").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("ok"));
    handle.shutdown();
}

#[test]
fn non_get_methods_are_rejected() {
    let (handle, addr) = spawn(ServeOptions::default());
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    write!(stream, "POST /analyze HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");
    assert!(raw.contains("GET-only"));

    // Non-HTTP garbage gets a 400, not a hang or a crash.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    write!(stream, "definitely not http\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
    handle.shutdown();
}

#[test]
fn sharded_daemon_serves_byte_identical_analyses() {
    let dir = tmp("sharded");
    let trace = write_fixture(&dir, 6);
    let (single, addr_single) = spawn(ServeOptions::default());
    let (sharded, addr_sharded) = spawn(ServeOptions {
        shards: 3,
        ..ServeOptions::default()
    });

    let enc = percent_encode(trace.to_str().unwrap());
    for target in [
        format!("/analyze?path={enc}"),
        format!("/analyze?path={enc}&function=inner"),
        format!("/analyze?path={enc}&metric=CYC"),
        format!("/refine?path={enc}&steps=1"),
    ] {
        let a = client::get(&addr_single, &target).unwrap();
        let b = client::get(&addr_sharded, &target).unwrap();
        assert_eq!(a.status, 200, "{target}: {}", a.body);
        assert_eq!(b.status, 200, "{target}: {}", b.body);
        assert_eq!(
            a.body, b.body,
            "{target}: sharded result must be byte-identical"
        );
    }

    // The shard workers replay the same events and emit the same
    // segments the single-process pipeline does (plus per-shard
    // prediction prefixes, so replayed events may only grow).
    let (s1, s3) = (stats_of(&addr_single), stats_of(&addr_sharded));
    assert_eq!(s1.totals.segments_emitted, s3.totals.segments_emitted);
    assert!(s3.totals.events_replayed >= s1.totals.events_replayed);
    single.shutdown();
    sharded.shutdown();
}

#[test]
fn idle_connections_do_not_pin_workers() {
    let dir = tmp("idle");
    let trace = write_fixture(&dir, 3);
    // Two workers, but far more idle connections than that: with the old
    // thread-per-connection accept loop these idle sockets would pin the
    // whole pool and the real request below would hang.
    let (handle, addr) = spawn(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });

    let idle: Vec<std::net::TcpStream> = (0..64)
        .map(|_| std::net::TcpStream::connect(&addr).unwrap())
        .collect();
    // Half of them even dribble a partial request head and then stall.
    use std::io::Write;
    for (i, mut stream) in idle.iter().enumerate() {
        if i % 2 == 0 {
            write!(stream, "GET /hea").unwrap();
        }
    }

    let resp = client::get(&addr, &analyze_target(&trace)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let health = client::get(&addr, "/health").unwrap();
    assert_eq!(health.status, 200);
    drop(idle);
    handle.shutdown();
}

#[test]
fn oversized_request_heads_are_rejected_not_buffered() {
    let (handle, addr) = spawn(ServeOptions::default());
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    // Never send the blank line; just pour headers past the cap.
    write!(stream, "GET /health HTTP/1.1\r\n").unwrap();
    let filler = format!("X-Filler: {}\r\n", "y".repeat(1024));
    let mut result = Ok(());
    for _ in 0..80 {
        result = write!(stream, "{filler}");
        if result.is_err() {
            break; // server already rejected and closed — also a pass
        }
    }
    let mut raw = String::new();
    let _ = stream.read_to_string(&mut raw);
    if result.is_ok() {
        assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
        assert!(raw.contains("too large"), "{raw}");
    }
    handle.shutdown();
}

/// Like [`fixture_trace`] but with every compute load scaled — a
/// persistent slowdown a noise-aware verdict must flag.
fn write_scaled_fixture(dir: &Path, name: &str, ranks: u64, scale: u64) -> PathBuf {
    let mut b = TraceBuilder::new(Clock::microseconds()).with_name("served");
    let iter_f = b.define_function("iteration", FunctionRole::Compute);
    let inner_f = b.define_function("inner", FunctionRole::Compute);
    let mpi_f = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
    for pi in 0..ranks {
        let p = b.define_process(format!("rank {pi}"));
        let w = b.process_mut(p);
        let mut t = 0u64;
        for k in 0..8u64 {
            let load = (100 + (pi * 17 + k * 11) % 50) * scale;
            w.enter(Timestamp(t), iter_f).unwrap();
            w.enter(Timestamp(t + 4), inner_f).unwrap();
            w.leave(Timestamp(t + load / 2), inner_f).unwrap();
            t += load;
            w.enter(Timestamp(t), mpi_f).unwrap();
            w.leave(Timestamp(t + 15), mpi_f).unwrap();
            t += 15;
            w.leave(Timestamp(t), iter_f).unwrap();
        }
    }
    let path = dir.join(name);
    write_trace_file(&b.finish().unwrap(), &path).unwrap();
    path
}

#[test]
fn compare_registered_runs_with_verdict_and_zero_new_analyses() {
    let dir = tmp("compare");
    let base = write_scaled_fixture(&dir, "base.pvta", 4, 1);
    let cand = write_scaled_fixture(&dir, "cand.pvta", 4, 2);
    let (handle, addr) = spawn(ServeOptions {
        store_dir: Some(dir.join("store")),
        ..ServeOptions::default()
    });

    // Register both runs under labels.
    for (path, label) in [(&base, "good"), (&cand, "slow")] {
        let target = format!(
            "/runs/register?path={}&label={label}",
            percent_encode(path.to_str().unwrap())
        );
        let resp = client::get(&addr, &target).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("\"digest\""), "{}", resp.body);
        assert!(resp.body.contains(label), "{}", resp.body);
    }
    let runs = client::get(&addr, "/runs").unwrap();
    assert_eq!(runs.status, 200, "{}", runs.body);
    assert!(runs.body.contains("good") && runs.body.contains("slow"));

    // Cold comparison: analyses run once, verdict flags the 2× slowdown.
    let cold = client::get(&addr, "/compare?base=good&cand=slow").unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert!(cold.body.contains("\"verdict\""), "{}", cold.body);
    assert!(cold.body.contains("Regression"), "{}", cold.body);
    assert!(cold.body.contains("\"functions\""), "{}", cold.body);
    assert!(cold.body.contains("iteration"), "{}", cold.body);
    let after_cold = stats_of(&addr).totals;
    assert!(after_cold.events_replayed > 0);

    // Warm comparisons: byte-stable body, zero new analyses.
    for _ in 0..3 {
        let warm = client::get(&addr, "/compare?base=good&cand=slow").unwrap();
        assert_eq!(warm.status, 200);
        assert_eq!(warm.body, cold.body, "compare body must be byte-stable");
    }
    let after_warm = stats_of(&addr).totals;
    assert_eq!(
        (after_warm.events_replayed, after_warm.bytes_decoded),
        (after_cold.events_replayed, after_cold.bytes_decoded),
        "warm /compare must perform zero new analyses"
    );

    // The reverse direction is an improvement; digest references and
    // raw paths resolve too.
    let reverse = client::get(&addr, "/compare?base=slow&cand=good").unwrap();
    assert!(reverse.body.contains("Improvement"), "{}", reverse.body);
    let digest_of = |body: &str, label: &str| -> String {
        let doc: serde_json::Value = serde_json::from_str(body).unwrap();
        let serde_json::Value::Object(fields) = doc else {
            panic!("not an object")
        };
        let serde_json::Value::Array(runs) = fields
            .iter()
            .find(|(k, _)| k == "runs")
            .map(|(_, v)| v.clone())
            .unwrap()
        else {
            panic!("runs is not an array")
        };
        runs.iter()
            .find_map(|r| {
                let serde_json::Value::Object(f) = r else {
                    return None;
                };
                let matches = f
                    .iter()
                    .any(|(k, v)| k == "label" && *v == serde_json::Value::String(label.into()));
                if !matches {
                    return None;
                }
                f.iter().find(|(k, _)| k == "digest").map(|(_, v)| match v {
                    serde_json::Value::String(s) => s.clone(),
                    _ => panic!("digest is not a string"),
                })
            })
            .expect("label registered")
    };
    let base_digest = digest_of(&runs.body, "good");
    let by_digest = client::get(
        &addr,
        &format!(
            "/compare?base={base_digest}&cand={}",
            percent_encode(cand.to_str().unwrap())
        ),
    )
    .unwrap();
    assert_eq!(by_digest.status, 200, "{}", by_digest.body);
    assert!(by_digest.body.contains("Regression"), "{}", by_digest.body);

    // A tighter threshold is accepted; self-comparison is noise.
    let same = client::get(&addr, "/compare?base=good&cand=good&threshold=0.01").unwrap();
    assert_eq!(same.status, 200, "{}", same.body);
    assert!(same.body.contains("Noise"), "{}", same.body);
    handle.shutdown();
}

#[test]
fn compare_error_paths_are_typed_json() {
    let dir = tmp("compare-errors");
    let good = write_scaled_fixture(&dir, "good.pvta", 4, 1);
    let bad = write_scaled_fixture(&dir, "bad.pvta", 4, 1);
    let (handle, addr) = spawn(ServeOptions::default());
    let enc_good = percent_encode(good.to_str().unwrap());

    // Missing parameters → 400 naming the missing one.
    let resp = client::get(&addr, "/compare").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("\"error\"") && resp.body.contains("base"));
    let resp = client::get(&addr, &format!("/compare?base={enc_good}")).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("cand"), "{}", resp.body);

    // A digest-shaped reference the store does not know → 404, never
    // misread as a relative path.
    let resp = client::get(
        &addr,
        &format!("/compare?base={enc_good}&cand=00112233445566778899aabbccddeeff"),
    )
    .unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);
    assert!(resp.body.contains("not in the run store"), "{}", resp.body);

    // Invalid threshold → 400.
    let resp = client::get(
        &addr,
        &format!("/compare?base={enc_good}&cand={enc_good}&threshold=very"),
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("threshold"), "{}", resp.body);

    // Corrupt candidate archive → typed 422 naming rank and offset.
    let stream1 = bad.join(archive::stream_file(1));
    let bytes = std::fs::read(&stream1).unwrap();
    std::fs::write(&stream1, &bytes[..bytes.len() - 9]).unwrap();
    let resp = client::get(
        &addr,
        &format!(
            "/compare?base={enc_good}&cand={}",
            percent_encode(bad.to_str().unwrap())
        ),
    )
    .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("corrupt at byte"), "{}", resp.body);
    assert!(resp.body.contains("P1"), "names the rank: {}", resp.body);

    // The daemon survives all of the above.
    let health = client::get(&addr, "/health").unwrap();
    assert_eq!(health.status, 200);
    handle.shutdown();
}

#[test]
fn run_store_survives_daemon_restarts() {
    let dir = tmp("store-restart");
    let trace = write_scaled_fixture(&dir, "t.pvta", 3, 1);
    let options = || ServeOptions {
        cache_dir: Some(dir.join("cache")), // store defaults to alongside
        ..ServeOptions::default()
    };

    let (first, addr) = spawn(options());
    let resp = client::get(
        &addr,
        &format!(
            "/runs/register?path={}&label=keeper",
            percent_encode(trace.to_str().unwrap())
        ),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    // Analyze once so the result lands in the disk spill.
    let cold = client::get(&addr, &analyze_target(&trace)).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    first.shutdown();

    // A fresh daemon over the same directories still resolves the label,
    // and the comparison is answered from the disk spill: zero analyses.
    let (second, addr2) = spawn(options());
    let runs = client::get(&addr2, "/runs").unwrap();
    assert!(runs.body.contains("keeper"), "{}", runs.body);
    let warm = client::get(&addr2, &analyze_target(&trace)).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);
    let cmp = client::get(&addr2, "/compare?base=keeper&cand=keeper").unwrap();
    assert_eq!(cmp.status, 200, "{}", cmp.body);
    assert!(cmp.body.contains("Noise"), "{}", cmp.body);
    assert_eq!(
        stats_of(&addr2).totals.events_replayed,
        0,
        "registered run must be served from the spill"
    );
    second.shutdown();
}

#[test]
fn archives_with_literal_plus_in_the_path_are_servable() {
    // Regression: `+` used to be decoded as a space in the `path` query
    // parameter and the request path, making `run+1.pvta` unservable.
    let dir = tmp("plus path");
    let trace = write_scaled_fixture(&dir, "run+1.pvta", 3, 1);
    assert!(trace.to_str().unwrap().contains('+'));
    let (handle, addr) = spawn(ServeOptions::default());
    let resp = client::get(&addr, &analyze_target(&trace)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"trace_name\""));
    handle.shutdown();
}

#[test]
fn v1_diagnose_serves_cause_labelled_clusters_from_the_cache() {
    let dir = tmp("diagnose");
    let trace = write_fixture(&dir, 6);
    let (handle, addr) = spawn(ServeOptions::default());
    let target = format!(
        "/v1/diagnose?path={}",
        percent_encode(trace.to_str().unwrap())
    );

    let cold = client::get(&addr, &target).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    let env = client::parse_envelope(&cold.body).unwrap();
    assert!(env.ok, "{}", cold.body);
    let clusters = env.data.get("clusters").and_then(|c| c.as_array()).unwrap();
    assert!(!clusters.is_empty(), "{}", cold.body);
    for cluster in clusters {
        let cause = cluster.get("cause").and_then(|c| c.as_str()).unwrap();
        assert!(!cause.is_empty(), "every cluster carries a cause label");
    }
    assert!(env.data.get("findings").is_some(), "{}", cold.body);
    let after_cold = stats_of(&addr).totals;
    assert!(after_cold.events_replayed > 0);

    // Warm: the diagnosis is pure post-processing of the cached
    // analysis, so the pipeline counters must not move at all.
    let warm = client::get(&addr, &target).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(warm.body, cold.body, "diagnosis must be deterministic");
    let after_warm = stats_of(&addr).totals;
    assert_eq!(after_warm.events_replayed, after_cold.events_replayed);
    assert_eq!(after_warm.bytes_decoded, after_cold.bytes_decoded);

    // The knobs go through the shared codec: bad values are typed 400s
    // naming the key, and max-clusters caps the summary.
    let bad = client::get(&addr, &format!("{target}&max-clusters=0")).unwrap();
    assert_eq!(bad.status, 400, "{}", bad.body);
    let env = client::parse_envelope(&bad.body).unwrap();
    assert!(env.message.contains("max-clusters"), "{}", bad.body);
    let capped = client::get(&addr, &format!("{target}&max-clusters=2")).unwrap();
    assert_eq!(capped.status, 200, "{}", capped.body);
    let env = client::parse_envelope(&capped.body).unwrap();
    let capped_clusters = env.data.get("clusters").and_then(|c| c.as_array()).unwrap();
    assert!(capped_clusters.len() <= 2);

    // /diagnose is /v1-only: no pre-/v1 daemon ever served it, so the
    // bare path is a 404, not a deprecation shim.
    let bare = client::get(&addr, &target["/v1".len()..]).unwrap();
    assert_eq!(bare.status, 404, "{}", bare.body);

    handle.shutdown();
}

#[test]
fn stats_reports_the_pipeline_shape() {
    let dir = tmp("stats");
    let trace = write_fixture(&dir, 5);
    let (handle, addr) = spawn(ServeOptions::default());
    let resp = client::get(&addr, &analyze_target(&trace)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    let stats = stats_of(&addr);
    assert_eq!(stats.ranks, 5);
    assert!(stats.totals.events_replayed > 0);
    assert!(stats.totals.segments_emitted > 0);
    assert!(!stats.stages.is_empty());
    handle.shutdown();
}

#[test]
fn v1_routes_answer_in_the_envelope() {
    let dir = tmp("v1-envelope");
    let trace = write_fixture(&dir, 4);
    let (handle, addr) = spawn(ServeOptions::default());

    let resp = client::get(&addr, "/v1/health").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let env = client::parse_envelope(&resp.body).unwrap();
    assert!(env.ok, "{}", resp.body);
    assert_eq!(
        env.data.get("status").and_then(|v| v.as_str()),
        Some("ok"),
        "{}",
        resp.body
    );

    let resp = client::get(&addr, &format!("/v1{}", analyze_target(&trace))).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let env = client::parse_envelope(&resp.body).unwrap();
    assert!(env.ok);
    assert!(env.data.get("sos").is_some(), "{}", resp.body);

    // A per-request threads override is accepted and does not change
    // the result (bit-identical at every parallelism).
    let one = client::get(&addr, &format!("/v1{}&threads=1", analyze_target(&trace))).unwrap();
    assert_eq!(one.status, 200, "{}", one.body);
    assert_eq!(one.body, resp.body, "threads must not change the result");

    // Typed failures: missing parameter, bad option value, missing
    // file, unknown route.
    let cases = [
        ("/v1/analyze", 400, "bad-request"),
        (
            "/v1/analyze?path=%2Fmissing.pvta&multiplier=banana",
            400,
            "bad-request",
        ),
        (
            "/v1/analyze?path=%2Fdefinitely%2Fmissing.pvta",
            404,
            "not-found",
        ),
        ("/v1/frobnicate", 404, "not-found"),
    ];
    for (target, status, kind) in cases {
        let resp = client::get(&addr, target).unwrap();
        assert_eq!(resp.status, status, "{target}: {}", resp.body);
        let env = client::parse_envelope(&resp.body).unwrap();
        assert!(!env.ok, "{target}");
        assert_eq!(env.kind, kind, "{target}: {}", resp.body);
        assert!(!env.message.is_empty(), "{target}");
    }
    handle.shutdown();
}

#[test]
fn legacy_routes_are_byte_compatible_shims() {
    let dir = tmp("legacy-shim");
    let trace = write_fixture(&dir, 4);
    let (handle, addr) = spawn(ServeOptions::default());

    // The legacy body is bare JSON — exactly the `/v1` envelope's
    // `data` payload, re-rendered the same way.
    let legacy = client::get(&addr, &analyze_target(&trace)).unwrap();
    assert_eq!(legacy.status, 200, "{}", legacy.body);
    assert_eq!(legacy.header("deprecation"), Some("true"));
    assert!(
        legacy.header("link").unwrap_or("").contains("/v1/analyze"),
        "{:?}",
        legacy.headers
    );
    let doc: serde_json::Value = serde_json::from_str(&legacy.body).unwrap();
    assert!(doc.get("ok").is_none(), "legacy body must not be enveloped");
    let v1 = client::get(&addr, &format!("/v1{}", analyze_target(&trace))).unwrap();
    let env = client::parse_envelope(&v1.body).unwrap();
    let mut data_body = serde_json::to_string_pretty(&env.data).unwrap();
    data_body.push('\n');
    assert_eq!(legacy.body, data_body, "shim and /v1 data must agree");

    // Legacy errors keep the pre-`/v1` `{"error": …}` shape, still
    // flagged as deprecated.
    let err = client::get(&addr, "/analyze").unwrap();
    assert_eq!(err.status, 400, "{}", err.body);
    let doc: serde_json::Value = serde_json::from_str(&err.body).unwrap();
    assert!(doc.get("error").is_some(), "{}", err.body);
    assert!(doc.get("ok").is_none(), "{}", err.body);
    assert_eq!(err.header("deprecation"), Some("true"));

    // Unknown paths are not legacy routes: no deprecation header.
    let nf = client::get(&addr, "/frobnicate").unwrap();
    assert_eq!(nf.status, 404);
    assert_eq!(nf.header("deprecation"), None, "{:?}", nf.headers);
    handle.shutdown();
}

#[test]
fn v1_corrupt_stream_carries_rank_and_offset_detail() {
    let dir = tmp("v1-corrupt-detail");
    let trace = write_fixture(&dir, 4);
    let stream1 = trace.join(archive::stream_file(1));
    let bytes = std::fs::read(&stream1).unwrap();
    std::fs::write(&stream1, &bytes[..bytes.len() - 9]).unwrap();

    let (handle, addr) = spawn(ServeOptions::default());
    let resp = client::get(&addr, &format!("/v1{}", analyze_target(&trace))).unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    let doc: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
    let error = doc.get("error").expect("error object");
    assert_eq!(
        error.get("kind").and_then(|v| v.as_str()),
        Some("corrupt-stream"),
        "{}",
        resp.body
    );
    let detail = error.get("detail").expect("detail object");
    assert_eq!(
        detail.get("rank").and_then(|v| v.as_u64()),
        Some(1),
        "{}",
        resp.body
    );
    assert!(
        detail.get("offset").and_then(|v| v.as_u64()).is_some(),
        "{}",
        resp.body
    );
    handle.shutdown();
}

/// Appends `trace` into a live archive at `path` in `chunk`-record
/// slices per rank with `delay` between flushes, then seals it.
fn grow_live_archive(trace: Trace, path: &Path, chunk: usize, delay: std::time::Duration) {
    use perfvar_trace::format::live::LiveArchiveWriter;
    let mut w =
        LiveArchiveWriter::create(path, &trace.name, trace.clock(), trace.registry()).unwrap();
    let streams = trace.streams();
    let mut offsets = vec![0usize; streams.len()];
    loop {
        let mut wrote = false;
        for (i, stream) in streams.iter().enumerate() {
            let records = stream.records();
            let end = (offsets[i] + chunk).min(records.len());
            for r in &records[offsets[i]..end] {
                w.append(stream.process, r).unwrap();
            }
            wrote |= end > offsets[i];
            offsets[i] = end;
        }
        if !wrote {
            break;
        }
        w.flush().unwrap();
        std::thread::sleep(delay);
    }
    w.finish().unwrap();
}

#[test]
fn sse_stream_follows_a_growing_run_to_the_one_shot_result() {
    let dir = tmp("sse-growing");
    let arch = dir.join("live.pvta");
    let trace = fixture_trace(4);
    let (handle, addr) = spawn(ServeOptions::default());

    // Grow the run in the background while the stream follows it. The
    // anchor must exist before the GET: write the first slice eagerly.
    let writer = {
        let arch = arch.clone();
        std::thread::spawn(move || {
            grow_live_archive(trace, &arch, 16, std::time::Duration::from_millis(20))
        })
    };
    // Wait for the anchor so open() cannot race the writer thread.
    let anchor = arch.join("anchor.pvtd");
    while !anchor.exists() {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let target = format!(
        "/v1/analyze/stream?path={}&interval=10",
        percent_encode(arch.to_str().unwrap())
    );
    let resp = client::get(&addr, &target).unwrap();
    writer.join().unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let events = client::sse_events(&resp.body);
    let deltas: Vec<_> = events.iter().filter(|e| e.event == "delta").collect();
    assert!(!deltas.is_empty(), "no delta events: {}", resp.body);
    for delta in &deltas {
        let doc: serde_json::Value = serde_json::from_str(&delta.data).unwrap();
        assert!(doc.get("new_events").is_some(), "{}", delta.data);
        assert!(delta.id.is_some(), "every delta carries a resume id");
    }
    let result = events.last().expect("stream has events");
    assert_eq!(result.event, "result", "stream must end in a result");

    // The folded stream result equals the one-shot analysis of the
    // (now sealed) archive.
    let one_shot = client::get(
        &addr,
        &format!(
            "/v1/analyze?path={}",
            percent_encode(arch.to_str().unwrap())
        ),
    )
    .unwrap();
    assert_eq!(one_shot.status, 200, "{}", one_shot.body);
    let env = client::parse_envelope(&one_shot.body).unwrap();
    let streamed: serde_json::Value = serde_json::from_str(&result.data).unwrap();
    assert!(
        streamed == env.data,
        "streamed result must equal the one-shot analysis"
    );

    // Resuming with the last delta's id suppresses everything already
    // folded: only the result event remains.
    let last_id = deltas.last().unwrap().id.clone().unwrap();
    let resumed = client::get_with_headers(&addr, &target, &[("Last-Event-ID", &last_id)]).unwrap();
    assert_eq!(resumed.status, 200);
    let resumed_events = client::sse_events(&resumed.body);
    assert!(
        resumed_events.iter().all(|e| e.event != "delta"),
        "resume must suppress already-folded deltas: {}",
        resumed.body
    );
    let resumed_result = resumed_events.iter().find(|e| e.event == "result").unwrap();
    let resumed_doc: serde_json::Value = serde_json::from_str(&resumed_result.data).unwrap();
    assert!(resumed_doc == env.data, "resumed result must match");
    handle.shutdown();
}

#[test]
fn sse_stream_reports_a_torn_append_with_typed_detail() {
    let dir = tmp("sse-torn");
    let arch = dir.join("live.pvta");
    grow_live_archive(fixture_trace(3), &arch, 64, std::time::Duration::ZERO);
    // Tear the tail off rank 1's stream: a torn final record under a
    // sealed run.
    let stream1 = arch.join(archive::stream_file(1));
    let len = std::fs::metadata(&stream1).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&stream1)
        .unwrap();
    f.set_len(len - 2).unwrap();
    drop(f);

    let (handle, addr) = spawn(ServeOptions::default());
    let resp = client::get(
        &addr,
        &format!(
            "/v1/analyze/stream?path={}&interval=10",
            percent_encode(arch.to_str().unwrap())
        ),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let events = client::sse_events(&resp.body);
    let error = events
        .iter()
        .find(|e| e.event == "error")
        .unwrap_or_else(|| panic!("no error event: {}", resp.body));
    let doc: serde_json::Value = serde_json::from_str(&error.data).unwrap();
    assert_eq!(
        doc.get("kind").and_then(|v| v.as_str()),
        Some("corrupt-stream"),
        "{}",
        error.data
    );
    let detail = doc.get("detail").expect("detail object");
    assert_eq!(
        detail.get("rank").and_then(|v| v.as_u64()),
        Some(1),
        "{}",
        error.data
    );
    assert!(detail.get("offset").and_then(|v| v.as_u64()).is_some());
    // An errored run never produces a result event.
    assert!(events.iter().all(|e| e.event != "result"), "{}", resp.body);
    handle.shutdown();
}
