//! Minimal HTTP/1.1 subset for the analysis daemon: GET requests with
//! query strings in, JSON bodies out, one request per connection
//! (`Connection: close`).
//!
//! Parsing is buffer-based, not stream-based: the readiness loop in
//! [`server`](crate::server) accumulates a connection's head bytes
//! without blocking and calls [`parse_request`] once [`head_complete`]
//! says the blank line (or EOF) has arrived. Deliberately not a general
//! HTTP implementation: no keep-alive, no request bodies; the only
//! streaming shape is the *response*-side chunked `text/event-stream`
//! used by `/v1/analyze/stream` ([`write_sse_head`] /
//! [`write_sse_event`] / [`finish_chunked`]). Request lines and heads
//! are size-capped ([`MAX_HEAD_BYTES`]) so a misbehaving client cannot
//! grow server memory.

use std::io::Write;
use std::net::TcpStream;

/// Longest accepted request line (method + target + version).
const MAX_REQUEST_LINE: usize = 16 * 1024;
/// Largest accepted request head (request line + header block). The
/// readiness loop buffers at most this much per connection before
/// answering 400, so slow or malicious clients cannot grow memory.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// One parsed request: the method, the decoded path, the decoded
/// query parameters in order of appearance, and the header block.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Request {
    /// The HTTP method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The percent-decoded path component of the target.
    pub path: String,
    /// Percent-decoded `key=value` query parameters; a bare `key` (no
    /// `=`) decodes to an empty value, so it doubles as a flag.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs in order of appearance, names
    /// lowercased. Most of the GET-only JSON API ignores them; the SSE
    /// endpoint reads `last-event-id` for resume.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// The first value of query parameter `name`, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether query parameter `name` appears at all (flag style).
    pub fn has_param(&self, name: &str) -> bool {
        self.query.iter().any(|(k, _)| k == name)
    }

    /// The first value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Decodes `%XX` escapes in a URL component. Invalid escapes pass
/// through verbatim (lenient, like most servers). `+` is a literal
/// plus: per RFC 3986 it is a valid path character, and `+`-for-space
/// is a form-encoding convention that only applies to query pairs —
/// see [`form_decode`]. Decoding `+` here would make an archive named
/// `run+1.pvta` unservable.
pub fn percent_decode(s: &str) -> String {
    decode_component(s, false)
}

/// Decodes a form-style (`application/x-www-form-urlencoded`) query
/// component: like [`percent_decode`] plus `+`-for-space.
pub fn form_decode(s: &str) -> String {
    decode_component(s, true)
}

fn decode_component(s: &str, plus_is_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(hi), Some(lo)) => {
                    out.push(hi * 16 + lo);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        b @ b'0'..=b'9' => Some(b - b'0'),
        b @ b'a'..=b'f' => Some(b - b'a' + 10),
        b @ b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

/// Percent-encodes a URL query component: unreserved characters pass
/// through, everything else becomes `%XX`. The inverse of
/// [`percent_decode`] for any input.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' | b'/' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn bad(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

/// Whether `buf` holds a complete request head: either the blank-line
/// terminator has arrived, or the peer closed the stream (`eof`) and
/// whatever arrived is all there will ever be.
pub fn head_complete(buf: &[u8], eof: bool) -> bool {
    eof || buf.windows(4).any(|w| w == b"\r\n\r\n")
}

/// Parses one request from a buffered head (everything up to and
/// including the blank line; trailing bytes are ignored). Header lines
/// are retained with lowercased names ([`Request::header`]); malformed
/// header lines are skipped, not fatal. Errors on anything that is not
/// a well-formed HTTP/1.x request line.
///
/// This is the readiness loop's half of request handling: the reactor
/// accumulates bytes until [`head_complete`], then hands the buffer to
/// a worker which parses it here — no thread ever blocks on a socket
/// read.
pub fn parse_request(head: &[u8]) -> std::io::Result<Request> {
    let line_end = head
        .windows(2)
        .position(|w| w == b"\r\n")
        .or_else(|| head.iter().position(|&b| b == b'\n'))
        .unwrap_or(head.len());
    if line_end >= MAX_REQUEST_LINE {
        return Err(bad("request line too long"));
    }
    let line = String::from_utf8_lossy(&head[..line_end]);
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol {version:?}")));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let query = raw_query
        .map(|q| {
            q.split('&')
                .filter(|pair| !pair.is_empty())
                .map(|pair| match pair.split_once('=') {
                    Some((k, v)) => (form_decode(k), form_decode(v)),
                    None => (form_decode(pair), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();
    let headers = String::from_utf8_lossy(head)
        .lines()
        .skip(1) // the request line
        .take_while(|line| !line.trim().is_empty())
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(raw_path),
        query,
        headers,
    })
}

/// The standard reason phrase of the status codes the daemon emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one complete JSON response and flushes it. The connection is
/// closed by the caller afterwards (`Connection: close` is advertised).
pub fn write_response(stream: &TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with(stream, status, body, &[])
}

/// [`write_response`] plus extra response headers (e.g. the
/// `Deprecation`/`Link` pair on legacy route shims).
pub fn write_response_with(
    stream: &TcpStream,
    status: u16,
    body: &str,
    extra: &[(&str, String)],
) -> std::io::Result<()> {
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason_phrase(status),
        body.len(),
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Starts a chunked `text/event-stream` response: status line and
/// headers only. Each subsequent [`write_sse_event`] is one HTTP chunk;
/// [`finish_chunked`] sends the terminating zero-length chunk.
pub fn write_sse_head(stream: &TcpStream) -> std::io::Result<()> {
    let mut stream = stream;
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

/// Writes one SSE event as one HTTP chunk and flushes it, so watchers
/// see every event as soon as it is produced. `data` must be a single
/// line (the daemon sends compact JSON); `id` becomes the event id a
/// client echoes back in `Last-Event-ID` to resume.
pub fn write_sse_event(
    stream: &TcpStream,
    id: Option<&str>,
    event: &str,
    data: &str,
) -> std::io::Result<()> {
    let mut frame = String::new();
    if let Some(id) = id {
        frame.push_str(&format!("id: {id}\n"));
    }
    frame.push_str(&format!("event: {event}\ndata: {data}\n\n"));
    write_chunk(stream, frame.as_bytes())
}

/// Writes one HTTP chunk (`{len:x}\r\n…\r\n`) and flushes.
pub fn write_chunk(stream: &TcpStream, data: &[u8]) -> std::io::Result<()> {
    let mut stream = stream;
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminates a chunked response (zero-length chunk) and flushes.
pub fn finish_chunked(stream: &TcpStream) -> std::io::Result<()> {
    let mut stream = stream;
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_round_trip() {
        for s in ["/tmp/trace dir/t.pvta", "a+b&c=d", "naïve", "plain"] {
            assert_eq!(percent_decode(&percent_encode(s)), s, "{s}");
            assert_eq!(form_decode(&percent_encode(s)), s, "{s}");
        }
        // `+` is literal in plain components (RFC 3986), a space only in
        // form-style ones.
        assert_eq!(percent_decode("a%20b+c"), "a b+c");
        assert_eq!(form_decode("a%20b+c"), "a b c");
        // Invalid escapes pass through.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn plus_survives_in_paths_and_encoded_params() {
        // Regression: the request path must keep `+` literal — an
        // archive named `run+1.pvta` used to become "run 1.pvta".
        let req = parse_request(b"GET /runs/run+1.pvta HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/runs/run+1.pvta");
        // A properly encoded path-valued query param round-trips too.
        let target = format!(
            "GET /analyze?path={} HTTP/1.1\r\n\r\n",
            percent_encode("/tmp/run+1.pvta")
        );
        let req = parse_request(target.as_bytes()).unwrap();
        assert_eq!(req.param("path"), Some("/tmp/run+1.pvta"));
        // Form-style spaces in query pairs still decode.
        let req = parse_request(b"GET /analyze?label=big+run HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.param("label"), Some("big run"));
    }

    #[test]
    fn parses_a_request_head() {
        let head = b"GET /analyze?path=%2Ftmp%2Ft.pvta&partial HTTP/1.1\r\nHost: x\r\n\r\n";
        assert!(head_complete(head, false));
        assert!(!head_complete(b"GET / HTTP/1.1\r\nHost", false));
        assert!(head_complete(b"GET / HTTP/1.1\r\n", true));
        let req = parse_request(head).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.param("path"), Some("/tmp/t.pvta"));
        assert!(req.has_param("partial"));
        assert_eq!(req.header("Host"), Some("x"));
    }

    #[test]
    fn headers_are_retained_case_insensitively_up_to_the_blank_line() {
        let head =
            b"GET /v1/analyze/stream?path=x HTTP/1.1\r\nHost: a\r\nLast-Event-ID: 00ff\r\n\r\nGET /smuggled";
        let req = parse_request(head).unwrap();
        assert_eq!(req.header("last-event-id"), Some("00ff"));
        assert_eq!(req.header("LAST-EVENT-ID"), Some("00ff"));
        assert_eq!(req.header("x-missing"), None);
        // Bytes after the blank line never become headers.
        assert!(req.headers.iter().all(|(k, _)| !k.contains("smuggled")));
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(parse_request(b"").is_err());
        assert!(parse_request(b"GET\r\n\r\n").is_err());
        assert!(parse_request(b"GET /x\r\n\r\n").is_err());
        assert!(parse_request(b"GET /x SPDY/3\r\n\r\n").is_err());
        // A bare-LF request line parses too (lenient, like the reads).
        assert!(parse_request(b"GET /x HTTP/1.0\n\n").is_ok());
    }

    #[test]
    fn request_params() {
        let req = Request {
            method: "GET".into(),
            path: "/analyze".into(),
            query: vec![
                ("path".into(), "/tmp/t.pvta".into()),
                ("partial".into(), String::new()),
            ],
            ..Request::default()
        };
        assert_eq!(req.param("path"), Some("/tmp/t.pvta"));
        assert!(req.has_param("partial"));
        assert!(!req.has_param("metric"));
    }
}
