//! Content-addressed result cache: an in-memory LRU layer with an
//! optional on-disk JSON spill.
//!
//! Keys are 128-bit values derived by [`cache_key`] from the *content*
//! of the request, never from file paths or timestamps: the archive's
//! byte digest ([`perfvar_trace::format::digest::digest_path`]), the
//! result-affecting configuration fields
//! ([`AnalysisConfig::result_key`], which excludes the thread count —
//! the pipeline is bit-identical at every parallelism), the recovery
//! mode, and the number of refinement steps. Two requests that would
//! produce the same bytes share one entry; flipping any input byte or
//! any result-affecting knob moves to a different key.
//!
//! The value is the *rendered* response body (plus one body per metric
//! channel), not the [`Analysis`](perfvar_analysis::Analysis) value: warm hits are a string clone,
//! and byte-identity with the CLI's `--json` output is pinned at fill
//! time instead of depending on re-serialisation.

use perfvar_analysis::{AnalysisConfig, OutOfCoreAnalysis, RecoveryMode};
use perfvar_trace::format::digest::Fnv128;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Derives the content-addressed cache key of one analysis request.
pub fn cache_key(
    digest: u128,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    refine_steps: usize,
) -> u128 {
    let mut h = Fnv128::new();
    h.write(&digest.to_le_bytes());
    let config_key = config.result_key();
    h.write_len(config_key.len() as u64);
    h.write(config_key.as_bytes());
    h.write(&[matches!(mode, RecoveryMode::Partial) as u8]);
    h.write(&(refine_steps as u64).to_le_bytes());
    h.finish()
}

/// One cached analysis: the rendered response bodies.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CachedResult {
    /// The `/analyze` body — pretty-printed [`Analysis`](perfvar_analysis::Analysis) JSON plus a
    /// trailing newline, byte-identical to `perfvar analyze --json`.
    pub body: String,
    /// One `(metric name, rendered CounterAnalysis JSON)` pair per
    /// metric channel of the trace, for `…&metric=NAME` requests.
    pub metrics: Vec<(String, String)>,
    /// Function names of the analysed trace, indexed by function id —
    /// `/compare` uses them to report named per-function deltas without
    /// re-reading the archive. Defaults to empty for spills written by
    /// older daemons (deltas then fall back to `fn#<id>` names).
    #[serde(default)]
    pub functions: Vec<String>,
}

impl CachedResult {
    /// Renders an out-of-core analysis into its cacheable bodies,
    /// reproducing the CLI's `--json` composition
    /// (`to_string_pretty(to_value(analysis))` + `println!`) byte for
    /// byte.
    pub fn render(result: &OutOfCoreAnalysis) -> Result<CachedResult, String> {
        let doc = serde_json::to_value(&result.analysis);
        let mut body =
            serde_json::to_string_pretty(&doc).map_err(|e| format!("serialisation failed: {e}"))?;
        body.push('\n');
        let mut metrics = Vec::with_capacity(result.analysis.counters.len());
        for counter in &result.analysis.counters {
            let name = result.meta.registry.metric(counter.metric).name.clone();
            let mut rendered = serde_json::to_string_pretty(&serde_json::to_value(counter))
                .map_err(|e| format!("serialisation failed: {e}"))?;
            rendered.push('\n');
            metrics.push((name, rendered));
        }
        let functions = result
            .meta
            .registry
            .functions()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        Ok(CachedResult {
            body,
            metrics,
            functions,
        })
    }
}

struct LruState {
    tick: u64,
    entries: HashMap<u128, (u64, Arc<CachedResult>)>,
}

/// The two-layer result cache: a bounded in-memory LRU map, spilled as
/// one JSON file per key into `disk_dir` when configured. Memory hits
/// never touch the filesystem; disk hits are promoted back into memory.
pub struct ResultCache {
    capacity: usize,
    disk_dir: Option<PathBuf>,
    state: Mutex<LruState>,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries in memory (a capacity
    /// of 0 is treated as 1), spilling to `disk_dir` if given.
    pub fn new(capacity: usize, disk_dir: Option<PathBuf>) -> ResultCache {
        ResultCache {
            capacity: capacity.max(1),
            disk_dir,
            state: Mutex::new(LruState {
                tick: 0,
                entries: HashMap::new(),
            }),
        }
    }

    fn spill_file(&self, key: u128) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key:032x}.json")))
    }

    /// Memory-layer lookup only: no filesystem access on any outcome.
    pub fn get_memory(&self, key: u128) -> Option<Arc<CachedResult>> {
        let mut state = self.state.lock().unwrap();
        state.tick += 1;
        let tick = state.tick;
        let (stamp, entry) = state.entries.get_mut(&key)?;
        *stamp = tick;
        Some(entry.clone())
    }

    /// Full lookup: memory first, then the disk spill (promoting a disk
    /// hit back into the memory layer).
    pub fn get(&self, key: u128) -> Option<Arc<CachedResult>> {
        if let Some(entry) = self.get_memory(key) {
            return Some(entry);
        }
        let bytes = std::fs::read(self.spill_file(key)?).ok()?;
        let decoded: CachedResult = serde_json::from_slice(&bytes).ok()?;
        let entry = Arc::new(decoded);
        self.insert_memory(key, entry.clone());
        Some(entry)
    }

    /// Stores an entry in memory and, if configured, on disk. Disk-write
    /// failures are swallowed: the spill is an optimisation, not a
    /// durability promise.
    pub fn put(&self, key: u128, entry: Arc<CachedResult>) {
        if let Some(file) = self.spill_file(key) {
            if let Some(dir) = &self.disk_dir {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Ok(json) = serde_json::to_string(&*entry) {
                let _ = std::fs::write(file, json);
            }
        }
        self.insert_memory(key, entry);
    }

    fn insert_memory(&self, key: u128, entry: Arc<CachedResult>) {
        let mut state = self.state.lock().unwrap();
        state.tick += 1;
        let tick = state.tick;
        state.entries.insert(key, (tick, entry));
        while state.entries.len() > self.capacity {
            let oldest = state
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| *k)
                .expect("non-empty above capacity");
            state.entries.remove(&oldest);
        }
    }

    /// Entries currently resident in the memory layer.
    pub fn len_memory(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: &str) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            body: format!("{{\"tag\": \"{tag}\"}}\n"),
            metrics: vec![("CYC".to_string(), format!("{{\"m\": \"{tag}\"}}\n"))],
            functions: vec!["main".to_string()],
        })
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2, None);
        cache.put(1, entry("a"));
        cache.put(2, entry("b"));
        assert!(cache.get(1).is_some()); // touch 1 → 2 is now oldest
        cache.put(3, entry("c"));
        assert_eq!(cache.len_memory(), 2);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none(), "2 was least recently used");
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn disk_spill_survives_memory_eviction() {
        let dir = std::env::temp_dir()
            .join("perfvar-server-tests")
            .join("spill");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::new(1, Some(dir.clone()));
        cache.put(7, entry("spilled"));
        cache.put(8, entry("resident")); // evicts 7 from memory
        assert!(cache.get_memory(7).is_none());
        let back = cache.get(7).expect("reloaded from disk");
        assert_eq!(*back, *entry("spilled"));
        // The disk hit was promoted: now resident in memory again.
        assert!(cache.get_memory(7).is_some());
        // A fresh cache over the same directory sees the spilled entries.
        let fresh = ResultCache::new(4, Some(dir));
        assert_eq!(*fresh.get(8).expect("from disk"), *entry("resident"));
    }

    #[test]
    fn cache_key_separates_inputs() {
        let config = AnalysisConfig::default();
        let base = cache_key(1, &config, RecoveryMode::Strict, 0);
        assert_eq!(base, cache_key(1, &config, RecoveryMode::Strict, 0));
        assert_ne!(base, cache_key(2, &config, RecoveryMode::Strict, 0));
        assert_ne!(base, cache_key(1, &config, RecoveryMode::Partial, 0));
        assert_ne!(base, cache_key(1, &config, RecoveryMode::Strict, 1));
        let threaded = AnalysisConfig {
            threads: 12,
            ..config.clone()
        };
        assert_eq!(base, cache_key(1, &threaded, RecoveryMode::Strict, 0));
    }
}
