//! The analysis daemon: a thread-pooled TCP accept loop routing GET
//! requests through the content-addressed cache and singleflight group
//! into the out-of-core analysis pipeline.
//!
//! # Endpoints
//!
//! * `GET /analyze?path=P` — full [`Analysis`](perfvar_analysis::Analysis) JSON for the trace at
//!   `P`, byte-identical to `perfvar analyze P --json`. Optional
//!   parameters: `function=NAME` (force the segmentation function),
//!   `multiplier=K` (dominant-function invocation threshold), `partial`
//!   (recover readable ranks of a damaged archive), `metric=NAME`
//!   (serve one hardware-counter correlation instead of the full
//!   report).
//! * `GET /refine?path=P&steps=N` — the analysis after `N` refinement
//!   steps into the dominant function's callees (`steps` defaults
//!   to 1), mirroring `perfvar refine`.
//! * `GET /stats` — cumulative pipeline telemetry across all analyses
//!   this daemon has run, in the `perfvar stats --json` shape.
//! * `GET /health` — liveness probe, `{"status": "ok"}`.
//!
//! Errors come back as `{"error": "…"}` with a 4xx/5xx status: 404 for
//! missing files/routes/metrics, 400 for malformed parameters, 422 for
//! corrupt traces (the typed `CorruptStream` diagnosis in the message),
//! 405 for non-GET methods, 500 for internal failures.

use crate::cache::{cache_key, CachedResult, ResultCache};
use crate::http::{read_request, write_response, Request};
use crate::singleflight::Singleflight;
use perfvar_analysis::parallel::resolve_threads;
use perfvar_analysis::{analyze_path_observed, AnalysisConfig, RecoveryMode, Telemetry};
use perfvar_trace::format::cursor::ArchiveCursor;
use perfvar_trace::format::digest::{constituent_files, digest_path};
use perfvar_trace::format::Format;
use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// Tuning knobs of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads handling connections (each analysis additionally
    /// parallelises internally over ranks).
    pub workers: usize,
    /// Analysis threads per request; `0` means available parallelism,
    /// capped at the rank count.
    pub threads: usize,
    /// In-memory cache capacity in entries.
    pub cache_entries: usize,
    /// Directory for the on-disk JSON spill; `None` disables spilling.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 8,
            threads: 0,
            cache_entries: 64,
            cache_dir: None,
        }
    }
}

/// A serve-layer error: the HTTP status plus the JSON `error` message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// The HTTP status code (4xx/5xx).
    pub status: u16,
    /// Human-readable diagnosis, sent as `{"error": message}`.
    pub message: String,
}

impl ServeError {
    fn new(status: u16, message: impl Into<String>) -> ServeError {
        ServeError {
            status,
            message: message.into(),
        }
    }

    /// The JSON response body for this error.
    pub fn body(&self) -> String {
        let doc = serde_json::json!({ "error": self.message.clone() });
        let mut body = serde_json::to_string_pretty(&doc).unwrap_or_default();
        body.push('\n');
        body
    }
}

/// One file's freshness signature: length and modification time.
type FileSig = (PathBuf, u64, Option<SystemTime>);

/// Memoises archive digests by path, invalidated when any constituent
/// file's size or mtime changes. This is what keeps warm requests off
/// the disk: re-hashing the archive on every hit would read the whole
/// trace back in.
///
/// A size+mtime signature has a blind spot: on filesystems with
/// whole-second mtime granularity, a file rewritten in place with
/// equal length *within the same second* keeps its signature while its
/// bytes change. [`DigestMemo::signature_is_stable`] detects exactly
/// those entries (coarse mtime still inside the granularity window) and
/// refuses to trust the memo for them — the digest is re-hashed from
/// the bytes until the mtime is old enough to be tamper-evident.
#[derive(Default)]
struct DigestMemo {
    known: Mutex<HashMap<PathBuf, (Vec<FileSig>, u128)>>,
}

impl DigestMemo {
    fn signature(path: &Path) -> Result<Vec<FileSig>, ServeError> {
        let files = constituent_files(path).map_err(trace_error)?;
        files
            .into_iter()
            .map(|f| {
                let meta = std::fs::metadata(&f).map_err(|e| io_error(&f, &e))?;
                Ok((f, meta.len(), meta.modified().ok()))
            })
            .collect()
    }

    /// Whether a matching signature proves the bytes are unchanged. A
    /// whole-second mtime (granularity ≥ 1 s — or a one-in-10⁹
    /// coincidence, where caution merely costs a re-hash) less than two
    /// seconds old could have been written *after* a same-second
    /// same-length rewrite; an absent mtime proves nothing at all.
    fn signature_is_stable(sig: &[FileSig]) -> bool {
        let now = SystemTime::now();
        sig.iter().all(|(_, _, mtime)| match mtime {
            None => false,
            Some(m) => {
                let coarse = m
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.subsec_nanos() == 0)
                    .unwrap_or(true);
                !coarse
                    || now
                        .duration_since(*m)
                        .map(|age| age.as_secs() >= 2)
                        .unwrap_or(false)
            }
        })
    }

    fn digest_of(&self, path: &Path) -> Result<u128, ServeError> {
        let sig = DigestMemo::signature(path)?;
        if DigestMemo::signature_is_stable(&sig) {
            if let Some((known_sig, digest)) = self.known.lock().unwrap().get(path) {
                if *known_sig == sig {
                    return Ok(*digest);
                }
            }
        }
        let digest = digest_path(path).map_err(trace_error)?;
        self.known
            .lock()
            .unwrap()
            .insert(path.to_path_buf(), (sig, digest));
        Ok(digest)
    }
}

fn io_error(path: &Path, e: &std::io::Error) -> ServeError {
    let status = match e.kind() {
        std::io::ErrorKind::NotFound => 404,
        _ => 500,
    };
    ServeError::new(status, format!("{}: {e}", path.display()))
}

fn trace_error(e: perfvar_trace::TraceError) -> ServeError {
    match e {
        perfvar_trace::TraceError::Io(ref io) if io.kind() == std::io::ErrorKind::NotFound => {
            ServeError::new(404, e.to_string())
        }
        perfvar_trace::TraceError::Io(_) => ServeError::new(500, e.to_string()),
        other => ServeError::new(422, other.to_string()),
    }
}

fn path_error(e: perfvar_analysis::PathAnalysisError) -> ServeError {
    let message = e.to_string();
    // I/O-level misses (the archive or a stream file vanished) are 404;
    // everything else — corrupt streams, empty traces, analysis
    // failures — is a content problem on an existing input: 422.
    if message.contains("No such file") || message.contains("not found") {
        ServeError::new(404, message)
    } else {
        ServeError::new(422, message)
    }
}

struct ServerState {
    telemetry: Telemetry,
    cache: ResultCache,
    flights: Singleflight<Result<Arc<CachedResult>, ServeError>>,
    digests: DigestMemo,
    threads: usize,
    stop: AtomicBool,
}

/// One analysis request, decoded from the query string.
struct AnalyzeParams {
    path: PathBuf,
    config: AnalysisConfig,
    mode: RecoveryMode,
    refine_steps: usize,
    metric: Option<String>,
}

fn params_of(req: &Request, refine: bool) -> Result<AnalyzeParams, ServeError> {
    let path = req
        .param("path")
        .ok_or_else(|| ServeError::new(400, "missing required parameter: path"))?;
    if path.is_empty() {
        return Err(ServeError::new(400, "missing required parameter: path"));
    }
    let mut config = AnalysisConfig {
        segment_function: req.param("function").map(str::to_string),
        ..AnalysisConfig::default()
    };
    if let Some(raw) = req.param("multiplier") {
        config.dominant_multiplier = raw
            .parse()
            .map_err(|e| ServeError::new(400, format!("invalid multiplier {raw:?}: {e}")))?;
    }
    let mode = if req.has_param("partial") {
        RecoveryMode::Partial
    } else {
        RecoveryMode::Strict
    };
    let refine_steps = if refine {
        match req.param("steps") {
            Some(raw) => raw
                .parse()
                .map_err(|e| ServeError::new(400, format!("invalid steps {raw:?}: {e}")))?,
            None => 1,
        }
    } else {
        0
    };
    Ok(AnalyzeParams {
        path: PathBuf::from(path),
        config,
        mode,
        refine_steps,
        metric: req.param("metric").map(str::to_string),
    })
}

impl ServerState {
    /// Normalises the thread count exactly like the CLI does: for
    /// archives, cap at the rank count read from the anchor file.
    fn normalized_threads(&self, path: &Path) -> Result<usize, ServeError> {
        if Format::from_path(path) == Format::Archive {
            let cursor = ArchiveCursor::open(path).map_err(trace_error)?;
            Ok(resolve_threads(self.threads, cursor.num_processes()))
        } else {
            Ok(resolve_threads(self.threads, 1))
        }
    }

    fn compute_entry(&self, params: &AnalyzeParams) -> Result<Arc<CachedResult>, ServeError> {
        let mut config = params.config.clone();
        config.threads = self.normalized_threads(&params.path)?;
        let mut result = analyze_path_observed(&params.path, &config, params.mode, &self.telemetry)
            .map_err(path_error)?;
        for _ in 0..params.refine_steps {
            result = result
                .refine(&params.path, &config, params.mode)
                .map_err(path_error)?
                .ok_or_else(|| ServeError::new(422, "no finer segmentation function available"))?;
        }
        CachedResult::render(&result)
            .map(Arc::new)
            .map_err(|m| ServeError::new(500, m))
    }

    /// Cache → singleflight → pipeline. Returns the entry and whether
    /// this request actually ran an analysis (for logging/tests).
    fn entry_for(&self, params: &AnalyzeParams) -> Result<Arc<CachedResult>, ServeError> {
        let digest = self.digests.digest_of(&params.path)?;
        let key = cache_key(digest, &params.config, params.mode, params.refine_steps);
        if let Some(hit) = self.cache.get(key) {
            return Ok(hit);
        }
        let (result, _leader) = self.flights.run(key, || {
            // Double-check under the flight: a concurrent leader may have
            // filled the cache between our miss and claiming the flight.
            if let Some(hit) = self.cache.get_memory(key) {
                return Ok(hit);
            }
            let entry = self.compute_entry(params)?;
            self.cache.put(key, entry.clone());
            Ok(entry)
        });
        result
    }

    fn respond(&self, req: &Request) -> Result<String, ServeError> {
        if req.method != "GET" {
            return Err(ServeError::new(
                405,
                format!("method {} not allowed; the API is GET-only", req.method),
            ));
        }
        match req.path.as_str() {
            "/health" => {
                let mut body = serde_json::to_string_pretty(&serde_json::json!({ "status": "ok" }))
                    .unwrap_or_default();
                body.push('\n');
                Ok(body)
            }
            "/stats" => {
                let stats = self
                    .telemetry
                    .snapshot()
                    .ok_or_else(|| ServeError::new(500, "telemetry disabled"))?;
                let mut body = serde_json::to_string_pretty(&serde_json::to_value(&stats))
                    .map_err(|e| ServeError::new(500, format!("serialisation failed: {e}")))?;
                body.push('\n');
                Ok(body)
            }
            "/analyze" | "/refine" => {
                let params = params_of(req, req.path == "/refine")?;
                let entry = self.entry_for(&params)?;
                match &params.metric {
                    None => Ok(entry.body.clone()),
                    Some(name) => entry
                        .metrics
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, body)| body.clone())
                        .ok_or_else(|| {
                            let available: Vec<&str> =
                                entry.metrics.iter().map(|(n, _)| n.as_str()).collect();
                            ServeError::new(
                                404,
                                if available.is_empty() {
                                    format!(
                                        "unknown metric {name:?}: trace has no counter channels"
                                    )
                                } else {
                                    format!(
                                        "unknown metric {name:?}: available metrics are {}",
                                        available.join(", ")
                                    )
                                },
                            )
                        }),
                }
            }
            other => Err(ServeError::new(404, format!("no such endpoint: {other}"))),
        }
    }

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
        let outcome = match read_request(&stream) {
            Ok(req) => self.respond(&req),
            Err(e) => Err(ServeError::new(400, format!("malformed request: {e}"))),
        };
        let _ = match outcome {
            Ok(body) => write_response(&stream, 200, &body),
            Err(e) => write_response(&stream, e.status, &e.body()),
        };
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A bound (but not yet serving) analysis daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
}

/// Handle to a running [`Server`]: its address, a shutdown switch, and
/// the thread joins.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7787`; port `0` picks an ephemeral
    /// port, readable via [`Server::local_addr`]).
    pub fn bind(addr: &str, options: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                telemetry: Telemetry::enabled(),
                cache: ResultCache::new(options.cache_entries, options.cache_dir),
                flights: Singleflight::new(),
                digests: DigestMemo::default(),
                threads: options.threads,
                stop: AtomicBool::new(false),
            }),
            workers: options.workers.max(1),
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept loop and worker pool in background threads.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = std::sync::mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..self.workers)
            .map(|_| {
                let rx = rx.clone();
                let state = self.state.clone();
                std::thread::spawn(move || loop {
                    let next = rx.lock().unwrap().recv();
                    match next {
                        Ok(stream) => {
                            if state.stop.load(Ordering::SeqCst) {
                                break;
                            }
                            state.handle_connection(stream);
                        }
                        Err(_) => break, // acceptor gone
                    }
                })
            })
            .collect();

        let state = self.state.clone();
        let listener = self.listener;
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if state.stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Dropping `tx` here lets every idle worker's recv() fail and
            // the pool drain.
        });

        Ok(ServerHandle {
            addr,
            state: self.state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// Serves forever on the calling thread (the CLI entry point).
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        handle.join();
        Ok(())
    }
}

impl ServerHandle {
    /// The address the daemon is serving on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the worker pool, and joins all threads.
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the daemon exits (it normally never does; use
    /// [`ServerHandle::shutdown`] from another thread to stop it).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
