//! The analysis daemon: a nonblocking readiness loop feeding a worker
//! pool that routes GET requests through the content-addressed cache
//! and singleflight group into the (optionally sharded) out-of-core
//! analysis pipeline.
//!
//! # Architecture
//!
//! A single **reactor** thread owns every socket that is not mid-
//! analysis: it polls the listener plus all connections still reading
//! their request head ([`poll::wait_readable`]), accepts without
//! blocking, and accumulates head bytes per connection. Ten thousand
//! idle connections therefore cost one thread and one buffer each —
//! not ten thousand blocked threads. Once a head is complete the
//! connection is switched back to blocking mode and handed to the
//! worker pool, which parses, computes (cache → singleflight →
//! pipeline), and responds. With [`ServeOptions::shards`] > 1 the
//! pipeline itself fans each archive's ranks out over in-process shard
//! workers whose [`AnalysisPart`](perfvar_analysis::AnalysisPart)s are
//! merged by the coordinator — bit-identical to the single-process
//! result, cached under the same content digest.
//!
//! # Endpoints
//!
//! The API lives under `/v1`. Every `/v1` response is an **envelope**:
//! `{"ok":true,"data":…}` on success, `{"ok":false,"error":{"kind":…,
//! "message":…,"detail":…}}` on failure, where `kind` is a stable typed
//! slug (`bad-request`, `not-found`, `method-not-allowed`,
//! `corrupt-stream`, `corrupt-trace`, `unprocessable`, `internal`) and
//! `detail` carries structured context when the error has any (rank +
//! byte offset for `corrupt-stream`).
//!
//! * `GET /v1/analyze?path=P` — full [`Analysis`] JSON for the trace at
//!   `P` (as `data`), matching `perfvar analyze P --json`. Optional
//!   parameters: `function=NAME` (force the segmentation function),
//!   `multiplier=K` (dominant-function invocation threshold),
//!   `threads=N` (per-request parallelism override — never part of the
//!   cache key; the pipeline is bit-identical at every parallelism),
//!   `read-buffer=BYTES`, `no-mmap`, `partial` (recover readable ranks
//!   of a damaged archive), `metric=NAME` (serve one hardware-counter
//!   correlation instead of the full report). The knobs go through the
//!   same [`AnalysisOptions`] codec the CLI flags use.
//! * `GET /v1/refine?path=P&steps=N` — the analysis after `N`
//!   refinement steps into the dominant function's callees (`steps`
//!   defaults to 1), mirroring `perfvar refine`.
//! * `GET /v1/diagnose?path=P` — the automatic diagnosis for the trace
//!   at `P` (as `data`): behaviour clusters with cause labels, the
//!   propagating-wait front when one is detected, and the ranked
//!   findings — byte-identical to `perfvar diagnose P --json`. Extra
//!   knobs `clusters=K`, `cluster-threshold=T`, `max-clusters=N` go
//!   through the same [`DiagnoseOptions`] codec the CLI flags use; the
//!   underlying analysis comes from the content-addressed cache, so a
//!   warm diagnosis decodes zero trace bytes.
//! * `GET /v1/analyze/stream?path=P&interval=MS` — **server-sent
//!   events** over a live (growing) archive: a chunked
//!   `text/event-stream` of `delta` events (one per poll that moved,
//!   id = the prefix digest of everything folded so far), at most one
//!   typed `error` event (corrupt stream: the damaged rank freezes,
//!   the rest keep streaming), and a final `result` event carrying the
//!   full analysis once the run seals cleanly. A client reconnecting
//!   with `Last-Event-ID: <id>` has deltas suppressed until that
//!   prefix digest reappears.
//! * `GET /v1/runs/register?path=P&label=L` — registers the archive at
//!   `P` in the persistent [run store](crate::store) under its content
//!   digest (computing it if needed), optionally labelled `L`.
//! * `GET /v1/runs` — every registered run: digest, label, path.
//! * `GET /v1/compare?base=R&cand=R` — the differential service:
//!   compares two runs (each reference `R` resolving as store label →
//!   store digest → filesystem path) and returns per-rank and
//!   per-function deltas plus a noise-aware verdict (`threshold=T`
//!   overrides the ±5 % default). Both analyses go through the
//!   content-addressed cache, so comparing cached runs performs zero
//!   new analyses.
//! * `GET /v1/stats` — cumulative pipeline telemetry across all
//!   analyses this daemon has run, in the `perfvar stats --json` shape.
//! * `GET /v1/health` — liveness probe, `data = {"status": "ok"}`.
//!
//! The pre-`/v1` unversioned routes (`/analyze`, `/refine`, `/compare`,
//! `/runs`, `/runs/register`, `/stats`, `/health`) remain as
//! **deprecation shims**: byte-identical bodies to pre-`/v1` daemons —
//! bare JSON on success, `{"error": "…"}` on failure — plus a
//! `Deprecation: true` header and a `Link: </v1/...>;
//! rel="successor-version"` pointer. Statuses are shared by both
//! surfaces: 404 for missing files/routes/metrics, 400 for malformed
//! parameters, 422 for corrupt traces, 405 for non-GET methods, 500
//! for internal failures.

use crate::cache::{cache_key, CachedResult, ResultCache};
use crate::http::{
    finish_chunked, head_complete, parse_request, write_response, write_response_with,
    write_sse_event, write_sse_head, Request, MAX_HEAD_BYTES,
};
use crate::poll;
use crate::singleflight::Singleflight;
use crate::store::{digest_hex, looks_like_digest, RunRecord, RunStore};
use perfvar_analysis::live::LiveAnalysis;
use perfvar_analysis::parallel::resolve_threads;
use perfvar_analysis::{
    analyze_path_sharded_observed, diagnose_analysis, Analysis, AnalysisConfig, AnalysisOptions,
    DiagnoseOptions, RecoveryMode, RunComparison, Telemetry, DEFAULT_NOISE_THRESHOLD,
};
use perfvar_trace::format::cursor::ArchiveCursor;
use perfvar_trace::format::digest::{constituent_files, digest_path};
use perfvar_trace::format::Format;
use std::collections::HashMap;
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// How long a connection may take to deliver its complete request head
/// before the reactor retires it with a 400.
const HEAD_TIMEOUT: Duration = Duration::from_secs(10);
/// The reactor's poll granularity: the longest the loop waits before
/// re-checking the stop flag and head deadlines.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Tuning knobs of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads handling connections (each analysis additionally
    /// parallelises internally over ranks).
    pub workers: usize,
    /// Analysis threads per request; `0` means available parallelism,
    /// capped at the rank count.
    pub threads: usize,
    /// In-memory cache capacity in entries.
    pub cache_entries: usize,
    /// Directory for the on-disk JSON spill; `None` disables spilling.
    pub cache_dir: Option<PathBuf>,
    /// In-process shard workers per analysis: an archive's ranks are
    /// split into this many contiguous shards, each analysed into an
    /// [`AnalysisPart`](perfvar_analysis::AnalysisPart) on its own
    /// thread and merged by the coordinator — bit-identical to the
    /// single-process pipeline (and cached identically, since the shard
    /// count does not enter the cache key). `1` (the default) and
    /// non-archive inputs use the plain out-of-core driver. Each shard
    /// additionally parallelises over [`ServeOptions::threads`].
    pub shards: usize,
    /// Directory for the persistent run store (`runs.json`). `None`
    /// falls back to [`ServeOptions::cache_dir`], so a daemon with a
    /// disk cache keeps its registrations alongside it; without either,
    /// registrations last for the daemon's lifetime only.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: 8,
            threads: 0,
            cache_entries: 64,
            cache_dir: None,
            shards: 1,
            store_dir: None,
        }
    }
}

/// Structured context attached to a typed error — for `corrupt-stream`,
/// the rank and byte offset of the damage, machine-readable so a live
/// dashboard does not have to parse it back out of the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ErrorDetail {
    /// The damaged rank's index.
    pub rank: usize,
    /// Byte offset of the first undecodable record in its stream file.
    pub offset: u64,
}

/// A serve-layer error: HTTP status, a typed `kind` slug, the
/// human-readable message, and optional structured detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// The HTTP status code (4xx/5xx).
    pub status: u16,
    /// The typed error kind: `bad-request`, `not-found`,
    /// `method-not-allowed`, `corrupt-stream`, `corrupt-trace`,
    /// `unprocessable`, or `internal`.
    pub kind: &'static str,
    /// Human-readable diagnosis.
    pub message: String,
    /// Structured context, when the error has any (rank + offset for
    /// `corrupt-stream`).
    pub detail: Option<ErrorDetail>,
}

impl ServeError {
    fn new(status: u16, kind: &'static str, message: impl Into<String>) -> ServeError {
        ServeError {
            status,
            kind,
            message: message.into(),
            detail: None,
        }
    }

    fn with_detail(mut self, detail: ErrorDetail) -> ServeError {
        self.detail = Some(detail);
        self
    }

    /// The error's JSON value in the `/v1` envelope's `error` shape:
    /// `{"kind":…,"message":…,"detail":…}`.
    pub fn error_value(&self) -> serde_json::Value {
        let detail = match &self.detail {
            Some(d) => serde_json::json!({ "rank": d.rank, "offset": d.offset }),
            None => serde_json::Value::Null,
        };
        serde_json::json!({
            "kind": self.kind,
            "message": self.message.clone(),
            "detail": detail,
        })
    }

    /// The legacy (unversioned-route) JSON body, `{"error": message}` —
    /// byte-compatible with pre-`/v1` daemons.
    pub fn body(&self) -> String {
        let doc = serde_json::json!({ "error": self.message.clone() });
        let mut body = serde_json::to_string_pretty(&doc).unwrap_or_default();
        body.push('\n');
        body
    }

    /// The `/v1` envelope body:
    /// `{"ok":false,"error":{"kind","message","detail"}}`.
    pub fn envelope_body(&self) -> String {
        let doc = serde_json::json!({ "ok": false, "error": self.error_value() });
        let mut body = serde_json::to_string_pretty(&doc).unwrap_or_default();
        body.push('\n');
        body
    }
}

/// Wraps a successful raw route body into the `/v1` envelope:
/// `{"ok":true,"data":…}`.
fn envelope_ok(raw: &str) -> Result<String, ServeError> {
    let doc: serde_json::Value = serde_json::from_str(raw).map_err(|e| {
        ServeError::new(500, "internal", format!("response failed to re-parse: {e}"))
    })?;
    let wrapped = serde_json::json!({ "ok": true, "data": doc });
    let mut body = serde_json::to_string_pretty(&wrapped)
        .map_err(|e| ServeError::new(500, "internal", format!("serialisation failed: {e}")))?;
    body.push('\n');
    Ok(body)
}

/// The unversioned routes kept as byte-compatible deprecation shims.
const LEGACY_ROUTES: &[&str] = &[
    "/analyze",
    "/refine",
    "/compare",
    "/runs",
    "/runs/register",
    "/stats",
    "/health",
];

/// The `Deprecation` + successor-`Link` headers a legacy shim carries.
fn deprecation_headers(path: &str) -> Vec<(&'static str, String)> {
    if LEGACY_ROUTES.contains(&path) {
        vec![
            ("Deprecation", "true".to_string()),
            ("Link", format!("</v1{path}>; rel=\"successor-version\"")),
        ]
    } else {
        Vec::new()
    }
}

/// One file's freshness signature: length and modification time.
type FileSig = (PathBuf, u64, Option<SystemTime>);

/// A connection the reactor has read a complete request head from,
/// ready for a worker to parse and answer.
type ReadyConn = (TcpStream, Vec<u8>);

/// Memoises archive digests by path, invalidated when any constituent
/// file's size or mtime changes. This is what keeps warm requests off
/// the disk: re-hashing the archive on every hit would read the whole
/// trace back in.
///
/// A size+mtime signature has a blind spot: on filesystems with
/// whole-second mtime granularity, a file rewritten in place with
/// equal length *within the same second* keeps its signature while its
/// bytes change. [`DigestMemo::signature_is_stable`] detects exactly
/// those entries (coarse mtime still inside the granularity window) and
/// refuses to trust the memo for them — the digest is re-hashed from
/// the bytes until the mtime is old enough to be tamper-evident.
#[derive(Default)]
struct DigestMemo {
    known: Mutex<HashMap<PathBuf, (Vec<FileSig>, u128)>>,
}

impl DigestMemo {
    fn signature(path: &Path) -> Result<Vec<FileSig>, ServeError> {
        let files = constituent_files(path).map_err(trace_error)?;
        files
            .into_iter()
            .map(|f| {
                let meta = std::fs::metadata(&f).map_err(|e| io_error(&f, &e))?;
                Ok((f, meta.len(), meta.modified().ok()))
            })
            .collect()
    }

    /// Whether a matching signature proves the bytes are unchanged. A
    /// whole-second mtime (granularity ≥ 1 s — or a one-in-10⁹
    /// coincidence, where caution merely costs a re-hash) less than two
    /// seconds old could have been written *after* a same-second
    /// same-length rewrite; an absent mtime proves nothing at all.
    fn signature_is_stable(sig: &[FileSig]) -> bool {
        let now = SystemTime::now();
        sig.iter().all(|(_, _, mtime)| match mtime {
            None => false,
            Some(m) => {
                let coarse = m
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.subsec_nanos() == 0)
                    .unwrap_or(true);
                !coarse
                    || now
                        .duration_since(*m)
                        .map(|age| age.as_secs() >= 2)
                        .unwrap_or(false)
            }
        })
    }

    fn digest_of(&self, path: &Path) -> Result<u128, ServeError> {
        let sig = DigestMemo::signature(path)?;
        if DigestMemo::signature_is_stable(&sig) {
            if let Some((known_sig, digest)) = self.known.lock().unwrap().get(path) {
                if *known_sig == sig {
                    return Ok(*digest);
                }
            }
        }
        let digest = digest_path(path).map_err(trace_error)?;
        self.known
            .lock()
            .unwrap()
            .insert(path.to_path_buf(), (sig, digest));
        Ok(digest)
    }
}

fn io_error(path: &Path, e: &std::io::Error) -> ServeError {
    let (status, kind) = match e.kind() {
        std::io::ErrorKind::NotFound => (404, "not-found"),
        _ => (500, "internal"),
    };
    ServeError::new(status, kind, format!("{}: {e}", path.display()))
}

fn trace_error(e: perfvar_trace::TraceError) -> ServeError {
    match e {
        perfvar_trace::TraceError::Io(ref io) if io.kind() == std::io::ErrorKind::NotFound => {
            ServeError::new(404, "not-found", e.to_string())
        }
        perfvar_trace::TraceError::Io(_) => ServeError::new(500, "internal", e.to_string()),
        perfvar_trace::TraceError::CorruptStream {
            process, offset, ..
        } => ServeError::new(422, "corrupt-stream", e.to_string()).with_detail(ErrorDetail {
            rank: process.index(),
            offset,
        }),
        other => ServeError::new(422, "corrupt-trace", other.to_string()),
    }
}

fn path_error(e: perfvar_analysis::PathAnalysisError) -> ServeError {
    // I/O-level misses (the archive or a stream file vanished) are 404;
    // everything else — corrupt streams, empty traces, analysis
    // failures — is a content problem on an existing input: 422.
    match e {
        perfvar_analysis::PathAnalysisError::Trace(e) => trace_error(e),
        perfvar_analysis::PathAnalysisError::Analysis(e) => {
            ServeError::new(422, "unprocessable", e.to_string())
        }
    }
}

struct ServerState {
    telemetry: Telemetry,
    cache: ResultCache,
    flights: Singleflight<Result<Arc<CachedResult>, ServeError>>,
    digests: DigestMemo,
    store: RunStore,
    threads: usize,
    shards: usize,
    stop: AtomicBool,
}

/// One analysis request, decoded from the query string.
struct AnalyzeParams {
    path: PathBuf,
    config: AnalysisConfig,
    mode: RecoveryMode,
    refine_steps: usize,
    metric: Option<String>,
    /// `threads=N` from the query, when present — overrides the
    /// daemon-wide default (never part of the cache key; the pipeline
    /// is bit-identical at every parallelism).
    threads: Option<usize>,
}

/// Decodes the shared analysis knobs out of the query through the one
/// [`AnalysisOptions`] codec the CLI uses — `function`, `multiplier`,
/// `threads`, `read-buffer`, `no-mmap`, `partial` — so the daemon and
/// the CLI cannot drift apart again. Unowned keys (`path`, `steps`,
/// `metric`, …) pass through untouched.
fn options_of(req: &Request) -> Result<AnalysisOptions, ServeError> {
    let mut options = AnalysisOptions::default();
    for (key, value) in &req.query {
        let value = (!value.is_empty()).then_some(value.as_str());
        options
            .absorb(key, value)
            .map_err(|e| ServeError::new(400, "bad-request", e.to_string()))?;
    }
    Ok(options)
}

/// Decodes the diagnosis knobs (`clusters`, `cluster-threshold`,
/// `max-clusters`) out of the query through the one [`DiagnoseOptions`]
/// codec the CLI flags use. Unowned keys pass through untouched.
fn diagnose_options_of(req: &Request) -> Result<DiagnoseOptions, ServeError> {
    let mut options = DiagnoseOptions::default();
    for (key, value) in &req.query {
        let value = (!value.is_empty()).then_some(value.as_str());
        options
            .absorb(key, value)
            .map_err(|e| ServeError::new(400, "bad-request", e.to_string()))?;
    }
    Ok(options)
}

/// The config + recovery mode a request's query describes.
fn config_of(req: &Request) -> Result<(AnalysisConfig, RecoveryMode), ServeError> {
    let options = options_of(req)?;
    Ok((options.config(), options.recovery_mode()))
}

fn params_of(req: &Request, refine: bool) -> Result<AnalyzeParams, ServeError> {
    let path = req
        .param("path")
        .ok_or_else(|| ServeError::new(400, "bad-request", "missing required parameter: path"))?;
    if path.is_empty() {
        return Err(ServeError::new(
            400,
            "bad-request",
            "missing required parameter: path",
        ));
    }
    let options = options_of(req)?;
    let refine_steps = if refine {
        match req.param("steps") {
            Some(raw) => raw.parse().map_err(|e| {
                ServeError::new(400, "bad-request", format!("invalid steps {raw:?}: {e}"))
            })?,
            None => 1,
        }
    } else {
        0
    };
    Ok(AnalyzeParams {
        path: PathBuf::from(path),
        config: options.config(),
        mode: options.recovery_mode(),
        refine_steps,
        metric: req.param("metric").map(str::to_string),
        threads: req.has_param("threads").then_some(options.threads),
    })
}

/// One side of a `/compare`, resolved to an archive on disk.
struct ResolvedRun {
    /// The reference as the client sent it.
    reference: String,
    /// The archive path to analyse.
    path: PathBuf,
    /// The store record the reference resolved through, if any.
    record: Option<RunRecord>,
}

impl ServerState {
    /// Resolves a `/compare` run reference: store label → store digest →
    /// filesystem path. A reference *shaped* like a digest that the
    /// store does not know is a 404 (a mistyped digest must not be
    /// misread as a relative path).
    fn resolve_run(&self, reference: &str) -> Result<ResolvedRun, ServeError> {
        if let Some(record) = self.store.find(reference) {
            return Ok(ResolvedRun {
                reference: reference.to_string(),
                path: PathBuf::from(record.path.clone()),
                record: Some(record),
            });
        }
        if looks_like_digest(reference) {
            return Err(ServeError::new(
                404,
                "not-found",
                format!("digest {reference} is not in the run store"),
            ));
        }
        Ok(ResolvedRun {
            reference: reference.to_string(),
            path: PathBuf::from(reference),
            record: None,
        })
    }

    /// The `/compare` handler: resolve both references, fetch both
    /// analyses through the cache (zero new analyses when warm), and
    /// render deltas plus the noise-aware verdict. The body contains no
    /// timestamps or other run-varying state, so repeated comparisons
    /// of the same runs are byte-identical.
    fn compare(&self, req: &Request) -> Result<String, ServeError> {
        let base_ref = req.param("base").ok_or_else(|| {
            ServeError::new(400, "bad-request", "missing required parameter: base")
        })?;
        let cand_ref = req.param("cand").ok_or_else(|| {
            ServeError::new(400, "bad-request", "missing required parameter: cand")
        })?;
        if base_ref.is_empty() || cand_ref.is_empty() {
            return Err(ServeError::new(400, "bad-request", "empty run reference"));
        }
        let threshold = match req.param("threshold") {
            Some(raw) => raw
                .parse::<f64>()
                .ok()
                .filter(|t| t.is_finite() && *t >= 0.0)
                .ok_or_else(|| {
                    ServeError::new(
                        400,
                        "bad-request",
                        format!("invalid threshold {raw:?}: expected a non-negative number"),
                    )
                })?,
            None => DEFAULT_NOISE_THRESHOLD,
        };
        let (config, mode) = config_of(req)?;
        let base = self.resolve_run(base_ref)?;
        let cand = self.resolve_run(cand_ref)?;
        let side =
            |run: &ResolvedRun| -> Result<(Arc<CachedResult>, Analysis, String), ServeError> {
                let digest = self.digests.digest_of(&run.path)?;
                let entry = self.entry_for(&AnalyzeParams {
                    path: run.path.clone(),
                    config: config.clone(),
                    mode,
                    refine_steps: 0,
                    metric: None,
                    threads: None,
                })?;
                let analysis: Analysis = serde_json::from_str(&entry.body).map_err(|e| {
                    ServeError::new(
                        500,
                        "internal",
                        format!("cached analysis failed to parse: {e}"),
                    )
                })?;
                Ok((entry, analysis, digest_hex(digest)))
            };
        let (base_entry, base_analysis, base_digest) = side(&base)?;
        let (cand_entry, cand_analysis, cand_digest) = side(&cand)?;
        let comparison = RunComparison::compare_analyses(
            &base_analysis,
            &base_entry.functions,
            &cand_analysis,
            &cand_entry.functions,
        );
        let verdict = comparison.verdict(threshold);
        let run_doc = |run: &ResolvedRun, digest: &str| {
            serde_json::json!({
                "reference": run.reference.clone(),
                "digest": digest,
                "label": run.record.as_ref().map(|r| r.label.clone()).unwrap_or_default(),
                "path": run.path.display().to_string(),
            })
        };
        let doc = serde_json::json!({
            "base": run_doc(&base, &base_digest),
            "cand": run_doc(&cand, &cand_digest),
            "comparison": serde_json::to_value(&comparison),
            "verdict": serde_json::to_value(&verdict),
        });
        let mut body = serde_json::to_string_pretty(&doc)
            .map_err(|e| ServeError::new(500, "internal", format!("serialisation failed: {e}")))?;
        body.push('\n');
        Ok(body)
    }

    /// The `/runs/register` handler: digest the archive and record it.
    fn register_run(&self, req: &Request) -> Result<String, ServeError> {
        let path = req.param("path").filter(|p| !p.is_empty()).ok_or_else(|| {
            ServeError::new(400, "bad-request", "missing required parameter: path")
        })?;
        let path = PathBuf::from(path);
        let digest = self.digests.digest_of(&path)?;
        let record = self
            .store
            .register(digest, req.param("label"), &path)
            .map_err(|m| {
                ServeError::new(500, "internal", format!("run store write failed: {m}"))
            })?;
        let mut body = serde_json::to_string_pretty(&serde_json::to_value(&record))
            .map_err(|e| ServeError::new(500, "internal", format!("serialisation failed: {e}")))?;
        body.push('\n');
        Ok(body)
    }

    /// The `/runs` handler: every registration, in order.
    fn list_runs(&self) -> Result<String, ServeError> {
        let doc = serde_json::json!({ "runs": serde_json::to_value(&self.store.list()) });
        let mut body = serde_json::to_string_pretty(&doc)
            .map_err(|e| ServeError::new(500, "internal", format!("serialisation failed: {e}")))?;
        body.push('\n');
        Ok(body)
    }

    /// Normalises the thread count exactly like the CLI does: for
    /// archives, cap at the rank count read from the anchor file.
    fn normalized_threads(&self, requested: usize, path: &Path) -> Result<usize, ServeError> {
        if Format::from_path(path) == Format::Archive {
            let cursor = ArchiveCursor::open(path).map_err(trace_error)?;
            Ok(resolve_threads(requested, cursor.num_processes()))
        } else {
            Ok(resolve_threads(requested, 1))
        }
    }

    fn compute_entry(&self, params: &AnalyzeParams) -> Result<Arc<CachedResult>, ServeError> {
        let mut config = params.config.clone();
        config.threads =
            self.normalized_threads(params.threads.unwrap_or(self.threads), &params.path)?;
        // Shard-count 1 (and any non-archive input) falls through to the
        // plain out-of-core driver inside `analyze_path_sharded_observed`;
        // either way the result bytes — and thus the cache entry — are
        // identical, so `shards` stays out of the cache key.
        let mut result = analyze_path_sharded_observed(
            &params.path,
            &config,
            params.mode,
            self.shards,
            &self.telemetry,
        )
        .map_err(path_error)?;
        for _ in 0..params.refine_steps {
            result = result
                .refine(&params.path, &config, params.mode)
                .map_err(path_error)?
                .ok_or_else(|| {
                    ServeError::new(
                        422,
                        "unprocessable",
                        "no finer segmentation function available",
                    )
                })?;
        }
        CachedResult::render(&result)
            .map(Arc::new)
            .map_err(|m| ServeError::new(500, "internal", m))
    }

    /// The `GET /v1/diagnose` handler: run (or reuse) the analysis for
    /// `path=…` through the content-addressed cache, then diagnose it —
    /// clustering, cause labels, wave detection. The diagnosis itself is
    /// pure post-processing of the cached [`Analysis`], so a warm
    /// request decodes zero trace bytes; the body is byte-identical to
    /// `perfvar diagnose <path> --json`.
    fn diagnose(&self, req: &Request) -> Result<String, ServeError> {
        let params = params_of(req, false)?;
        let config = diagnose_options_of(req)?.config();
        let entry = self.entry_for(&params)?;
        let analysis: Analysis = serde_json::from_str(&entry.body).map_err(|e| {
            ServeError::new(500, "internal", format!("cached analysis unreadable: {e}"))
        })?;
        let function = entry
            .functions
            .get(analysis.function.index())
            .cloned()
            .unwrap_or_else(|| format!("fn#{}", analysis.function.index()));
        let counter_names: Vec<String> =
            entry.metrics.iter().map(|(name, _)| name.clone()).collect();
        let diagnosis = diagnose_analysis(&analysis, &function, &counter_names, &config);
        let mut body = serde_json::to_string_pretty(&diagnosis)
            .map_err(|e| ServeError::new(500, "internal", format!("serialisation failed: {e}")))?;
        body.push('\n');
        Ok(body)
    }

    /// Cache → singleflight → pipeline. Returns the entry and whether
    /// this request actually ran an analysis (for logging/tests).
    fn entry_for(&self, params: &AnalyzeParams) -> Result<Arc<CachedResult>, ServeError> {
        let digest = self.digests.digest_of(&params.path)?;
        let key = cache_key(digest, &params.config, params.mode, params.refine_steps);
        if let Some(hit) = self.cache.get(key) {
            return Ok(hit);
        }
        let (result, _leader) = self.flights.run(key, || {
            // Double-check under the flight: a concurrent leader may have
            // filled the cache between our miss and claiming the flight.
            if let Some(hit) = self.cache.get_memory(key) {
                return Ok(hit);
            }
            let entry = self.compute_entry(params)?;
            self.cache.put(key, entry.clone());
            Ok(entry)
        });
        result
    }

    /// Routes one request to its handler and returns the *raw* route
    /// body (the pre-`/v1` shape). Versioned requests reach this with
    /// the `/v1` prefix already stripped; [`handle_connection`] decides
    /// whether to wrap the result in the envelope or serve it verbatim
    /// through a legacy shim.
    fn respond(&self, req: &Request, path: &str) -> Result<String, ServeError> {
        if req.method != "GET" {
            return Err(ServeError::new(
                405,
                "method-not-allowed",
                format!("method {} not allowed; the API is GET-only", req.method),
            ));
        }
        match path {
            "/health" => {
                let mut body = serde_json::to_string_pretty(&serde_json::json!({ "status": "ok" }))
                    .unwrap_or_default();
                body.push('\n');
                Ok(body)
            }
            "/stats" => {
                let stats = self
                    .telemetry
                    .snapshot()
                    .ok_or_else(|| ServeError::new(500, "internal", "telemetry disabled"))?;
                let mut body = serde_json::to_string_pretty(&serde_json::to_value(&stats))
                    .map_err(|e| {
                        ServeError::new(500, "internal", format!("serialisation failed: {e}"))
                    })?;
                body.push('\n');
                Ok(body)
            }
            "/compare" => self.compare(req),
            "/diagnose" => self.diagnose(req),
            "/runs" => self.list_runs(),
            "/runs/register" => self.register_run(req),
            "/analyze" | "/refine" => {
                let params = params_of(req, path == "/refine")?;
                let entry = self.entry_for(&params)?;
                match &params.metric {
                    None => Ok(entry.body.clone()),
                    Some(name) => entry
                        .metrics
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, body)| body.clone())
                        .ok_or_else(|| {
                            let available: Vec<&str> =
                                entry.metrics.iter().map(|(n, _)| n.as_str()).collect();
                            ServeError::new(
                                404,
                                "not-found",
                                if available.is_empty() {
                                    format!(
                                        "unknown metric {name:?}: trace has no counter channels"
                                    )
                                } else {
                                    format!(
                                        "unknown metric {name:?}: available metrics are {}",
                                        available.join(", ")
                                    )
                                },
                            )
                        }),
                }
            }
            other => Err(ServeError::new(
                404,
                "not-found",
                format!("no such endpoint: {other}"),
            )),
        }
    }

    /// Worker half of request handling: the reactor already buffered the
    /// complete head; parse it, compute, respond, close. `/v1/…` paths
    /// answer in the `{"ok",…}` envelope; the bare legacy paths answer
    /// byte-identically to pre-`/v1` daemons plus a `Deprecation`
    /// header. `GET /v1/analyze/stream` takes over the socket entirely
    /// and streams SSE until the watched run seals.
    fn handle_connection(self: &Arc<Self>, stream: TcpStream, head: Vec<u8>) {
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let req = match parse_request(&head) {
            Ok(req) => req,
            Err(e) => {
                let err = ServeError::new(400, "bad-request", format!("malformed request: {e}"));
                let _ = write_response(&stream, err.status, &err.body());
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        };
        if req.path == "/v1/analyze/stream" && req.method == "GET" {
            self.stream_analysis(stream, &req);
            return;
        }
        let (versioned, path) = match req.path.strip_prefix("/v1") {
            Some(rest) if rest.starts_with('/') => (true, rest.to_string()),
            _ => (false, req.path.clone()),
        };
        // `/diagnose` is the first post-`/v1` endpoint: it has no
        // pre-`/v1` shape to shim, so the bare path stays a 404.
        let outcome = if !versioned && path == "/diagnose" {
            Err(ServeError::new(
                404,
                "not-found",
                "no such endpoint: /diagnose — use /v1/diagnose",
            ))
        } else {
            self.respond(&req, &path)
        };
        let _ = if versioned {
            match outcome.and_then(|raw| envelope_ok(&raw)) {
                Ok(body) => write_response(&stream, 200, &body),
                Err(e) => write_response(&stream, e.status, &e.envelope_body()),
            }
        } else {
            let extra = deprecation_headers(&req.path);
            match outcome {
                Ok(body) => write_response_with(&stream, 200, &body, &extra),
                Err(e) => write_response_with(&stream, e.status, &e.body(), &extra),
            }
        };
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }

    /// The `GET /v1/analyze/stream` handler: validate the query, open a
    /// [`LiveAnalysis`] over the (possibly still growing) archive, and
    /// hand the socket to a dedicated streamer thread — workers go back
    /// to the pool immediately, so slow streams never starve the JSON
    /// API.
    fn stream_analysis(self: &Arc<Self>, stream: TcpStream, req: &Request) {
        let refuse = |e: ServeError| {
            let _ = write_response(&stream, e.status, &e.envelope_body());
            let _ = stream.shutdown(std::net::Shutdown::Both);
        };
        let setup = || -> Result<(LiveAnalysis, Duration), ServeError> {
            let path = req.param("path").filter(|p| !p.is_empty()).ok_or_else(|| {
                ServeError::new(400, "bad-request", "missing required parameter: path")
            })?;
            let options = options_of(req)?;
            let interval = match req.param("interval") {
                Some(raw) => raw.parse::<u64>().map_err(|e| {
                    ServeError::new(400, "bad-request", format!("invalid interval {raw:?}: {e}"))
                })?,
                None => 200,
            };
            let live = LiveAnalysis::open(path, options.config()).map_err(path_error)?;
            Ok((live, Duration::from_millis(interval.max(10))))
        };
        let (live, interval) = match setup() {
            Ok(ready) => ready,
            Err(e) => return refuse(e),
        };
        let resume = req.header("last-event-id").map(str::to_string);
        let state = Arc::clone(self);
        std::thread::spawn(move || state.stream_loop(stream, live, interval, resume));
    }

    /// The streamer thread body: emits one `delta` SSE event per poll
    /// that moved, a single typed `error` event if a stream goes
    /// corrupt, and a final `result` event carrying the full analysis
    /// once the run seals cleanly. Event ids are the prefix digest of
    /// everything folded so far, so a client reconnecting with
    /// `Last-Event-ID` skips the deltas it has already applied.
    fn stream_loop(
        &self,
        stream: TcpStream,
        mut live: LiveAnalysis,
        interval: Duration,
        resume: Option<String>,
    ) {
        if write_sse_head(&stream).is_err() {
            return;
        }
        // Until the resume id's prefix digest shows up, deltas are
        // suppressed — the client already folded that prefix.
        let mut suppress = resume.is_some();
        let mut errored = false;
        loop {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let mut delta = live.poll();
            let id = format!("{:032x}", delta.fingerprint);
            if let Some(error) = delta.error.take() {
                if !errored {
                    errored = true;
                    let e = trace_error(error);
                    let data = serde_json::to_string(&e.error_value()).unwrap_or_default();
                    if write_sse_event(&stream, Some(&id), "error", &data).is_err() {
                        return;
                    }
                }
            }
            let moved = delta.new_events > 0 || delta.new_bytes > 0;
            if moved && !suppress {
                let snapshot = live.snapshot();
                let doc = serde_json::json!({
                    "new_events": delta.new_events,
                    "new_bytes": delta.new_bytes,
                    "new_segments": delta.new_segments.len(),
                    "touched_ranks": delta.touched_ranks.clone(),
                    "events": snapshot.events,
                    "bytes": snapshot.bytes,
                    "finished": delta.finished,
                });
                let data = serde_json::to_string(&doc).unwrap_or_default();
                if write_sse_event(&stream, Some(&id), "delta", &data).is_err() {
                    return;
                }
            }
            if suppress && resume.as_deref() == Some(id.as_str()) {
                suppress = false;
            }
            if delta.finished {
                if !errored {
                    match live.finalize() {
                        Ok(result) => {
                            let data =
                                serde_json::to_string(&serde_json::to_value(&result.analysis))
                                    .unwrap_or_default();
                            let _ = write_sse_event(&stream, Some(&id), "result", &data);
                        }
                        Err(e) => {
                            let err = path_error(e);
                            let data =
                                serde_json::to_string(&err.error_value()).unwrap_or_default();
                            let _ = write_sse_event(&stream, Some(&id), "error", &data);
                        }
                    }
                }
                break;
            }
            std::thread::sleep(interval);
        }
        let _ = finish_chunked(&stream);
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

/// A connection the reactor is still reading the request head from.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    deadline: Instant,
}

/// What the reactor decided about one connection this tick.
enum Drive {
    /// Head incomplete, deadline not reached — keep polling.
    Pending,
    /// Head complete (terminator seen, or EOF with data): hand the
    /// buffered head to a worker.
    Dispatch,
    /// Answer this error inline and close (oversized head, timeout).
    Reject(ServeError),
    /// Peer vanished without sending anything useful — just close.
    Gone,
}

/// Drains whatever is currently readable into the connection's head
/// buffer (never blocking) and classifies the connection's state.
fn drive_conn(conn: &mut Conn, readable: bool, now: Instant) -> Drive {
    if readable {
        let mut chunk = [0u8; 4096];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    // EOF: whatever arrived is the whole head.
                    return if conn.buf.is_empty() {
                        Drive::Gone
                    } else {
                        Drive::Dispatch
                    };
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    if conn.buf.len() > MAX_HEAD_BYTES {
                        return Drive::Reject(ServeError::new(
                            400,
                            "bad-request",
                            "request head too large",
                        ));
                    }
                    if head_complete(&conn.buf, false) {
                        return Drive::Dispatch;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Drive::Gone,
            }
        }
    }
    if now >= conn.deadline {
        return Drive::Reject(ServeError::new(
            400,
            "bad-request",
            "timed out reading the request head",
        ));
    }
    Drive::Pending
}

/// The reactor: one thread polling the listener plus every head-reading
/// connection. Exits when the stop flag is raised (checked at least
/// every [`POLL_TICK`]); dropping its `tx` then drains the worker pool.
fn reactor(listener: TcpListener, state: Arc<ServerState>, tx: Sender<ReadyConn>) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<poll::Fd> = Vec::new();
    while !state.stop.load(Ordering::SeqCst) {
        fds.clear();
        fds.push(poll::fd_of(&listener));
        fds.extend(conns.iter().map(|c| poll::fd_of(&c.stream)));
        let ready = match poll::wait_readable(&fds, POLL_TICK) {
            Ok(ready) => ready,
            Err(_) => continue,
        };

        // Drive existing connections first — `ready[1..]` is aligned
        // with `conns` before any accept mutates the list.
        let now = Instant::now();
        let mut keep = Vec::with_capacity(conns.len());
        for (idx, mut conn) in conns.drain(..).enumerate() {
            let readable = ready.get(idx + 1).copied().unwrap_or(false);
            match drive_conn(&mut conn, readable, now) {
                Drive::Pending => keep.push(conn),
                Drive::Dispatch => {
                    // Workers use plain blocking writes; undo the
                    // reactor's nonblocking mode before handing over.
                    let _ = conn.stream.set_nonblocking(false);
                    if tx.send((conn.stream, conn.buf)).is_err() {
                        return;
                    }
                }
                Drive::Reject(e) => {
                    let _ = conn.stream.set_nonblocking(false);
                    let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = write_response(&conn.stream, e.status, &e.body());
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                }
                Drive::Gone => {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                }
            }
        }
        conns = keep;

        if ready.first().copied().unwrap_or(false) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        conns.push(Conn {
                            stream,
                            buf: Vec::new(),
                            deadline: Instant::now() + HEAD_TIMEOUT,
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
    }
}

/// A bound (but not yet serving) analysis daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    workers: usize,
}

/// Handle to a running [`Server`]: its address, a shutdown switch, and
/// the thread joins.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7787`; port `0` picks an ephemeral
    /// port, readable via [`Server::local_addr`]).
    pub fn bind(addr: &str, options: ServeOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let store_dir = options
            .store_dir
            .clone()
            .or_else(|| options.cache_dir.clone());
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                telemetry: Telemetry::enabled(),
                cache: ResultCache::new(options.cache_entries, options.cache_dir),
                flights: Singleflight::new(),
                digests: DigestMemo::default(),
                store: RunStore::open(store_dir.as_deref()),
                threads: options.threads,
                shards: options.shards.max(1),
                stop: AtomicBool::new(false),
            }),
            workers: options.workers.max(1),
        })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the reactor and worker pool in background threads.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let (tx, rx): (Sender<ReadyConn>, Receiver<ReadyConn>) = std::sync::mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..self.workers)
            .map(|_| {
                let rx = rx.clone();
                let state = self.state.clone();
                std::thread::spawn(move || loop {
                    let next = rx.lock().unwrap().recv();
                    match next {
                        Ok((stream, head)) => {
                            if state.stop.load(Ordering::SeqCst) {
                                break;
                            }
                            state.handle_connection(stream, head);
                        }
                        Err(_) => break, // reactor gone
                    }
                })
            })
            .collect();

        let state = self.state.clone();
        let listener = self.listener;
        // Dropping `tx` when the reactor exits lets every idle worker's
        // recv() fail and the pool drain.
        let acceptor = std::thread::spawn(move || reactor(listener, state, tx));

        Ok(ServerHandle {
            addr,
            state: self.state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// Serves forever on the calling thread (the CLI entry point).
    pub fn run(self) -> std::io::Result<()> {
        let handle = self.spawn()?;
        handle.join();
        Ok(())
    }
}

impl ServerHandle {
    /// The address the daemon is serving on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the worker pool, and joins all threads.
    pub fn shutdown(mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        // One throwaway connection makes the listener readable so the
        // reactor's poll returns now instead of after a full tick.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the daemon exits (it normally never does; use
    /// [`ServerHandle::shutdown`] from another thread to stop it).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}
