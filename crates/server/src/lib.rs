//! # perfvar-server — the analysis daemon
//!
//! Serves perfvar analyses as JSON over a minimal std-only HTTP/1.1
//! layer ([`http`]): `GET /v1/analyze?path=…` returns the analysis
//! of `perfvar analyze --json` in the `{"ok",…}` envelope, computed
//! once and then answered from a content-addressed cache; `GET
//! /v1/analyze/stream` follows a *growing* archive with server-sent
//! events. The pre-`/v1` routes remain as byte-compatible deprecation
//! shims.
//!
//! The interesting parts:
//!
//! * [`cache`] — results keyed on *content* (archive byte digest +
//!   result-affecting config), not paths: an in-memory LRU with an
//!   optional on-disk JSON spill. Thread count is excluded from the
//!   key because the pipeline is bit-identical at every parallelism.
//! * [`singleflight`] — N concurrent requests for the same uncached
//!   trace trigger exactly one analysis; the rest wait and share it.
//! * [`store`] — the persistent run store behind `GET /runs`,
//!   `/runs/register` and the label/digest references `GET /compare`
//!   resolves; one JSON file alongside the disk cache.
//! * [`server`] — the nonblocking readiness loop (one reactor thread
//!   owns every idle connection), the worker pool, routing, optional
//!   rank sharding per analysis ([`ServeOptions::shards`]), and the
//!   shared [`Telemetry`](perfvar_analysis::Telemetry) recorder behind
//!   `GET /stats`.
//! * [`poll`] — the std-only `poll(2)` shim the reactor waits on; the
//!   crate's only unsafe code, scoped to one FFI call.
//! * [`client`] — a matching minimal blocking client for tests,
//!   benchmarks, and smoke checks.
//!
//! ```no_run
//! use perfvar_server::{Server, ServeOptions};
//!
//! let server = Server::bind("127.0.0.1:0", ServeOptions::default())?;
//! println!("listening on {}", server.local_addr()?);
//! server.run()?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the poll(2) FFI shim in [`poll`] carries the one
// scoped `#[allow(unsafe_code)]` in the crate.
#![deny(unsafe_code)]

pub mod cache;
pub mod client;
pub mod http;
pub mod poll;
pub mod server;
pub mod singleflight;
pub mod store;

pub use cache::{cache_key, CachedResult, ResultCache};
pub use client::{
    get, get_with_headers, parse_envelope, sse_events, Envelope, HttpResponse, SseEvent,
};
pub use server::{ErrorDetail, ServeError, ServeOptions, Server, ServerHandle};
pub use singleflight::Singleflight;
pub use store::{RunRecord, RunStore};
