//! Request coalescing: N concurrent requests for the same uncached key
//! trigger exactly one computation.
//!
//! The first caller to claim a key becomes the *leader* and runs the
//! computation; every concurrent caller for the same key parks on a
//! condvar and receives a clone of the leader's result. The flight is
//! removed once the leader finishes, so a later request for the same
//! key (e.g. after a cache eviction) starts a fresh flight.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

struct FlightState<T> {
    leader_claimed: bool,
    result: Option<T>,
}

struct Flight<T> {
    state: Mutex<FlightState<T>>,
    done: Condvar,
}

/// Coalesces concurrent computations per 128-bit key.
pub struct Singleflight<T: Clone> {
    flights: Mutex<HashMap<u128, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for Singleflight<T> {
    fn default() -> Singleflight<T> {
        Singleflight::new()
    }
}

impl<T: Clone> Singleflight<T> {
    /// An empty singleflight group.
    pub fn new() -> Singleflight<T> {
        Singleflight {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Runs `compute` for `key`, coalescing with any in-flight call for
    /// the same key. Returns the result and whether *this* caller was
    /// the leader that actually computed it.
    pub fn run(&self, key: u128, compute: impl FnOnce() -> T) -> (T, bool) {
        let flight = {
            let mut flights = self.flights.lock().unwrap();
            flights
                .entry(key)
                .or_insert_with(|| {
                    Arc::new(Flight {
                        state: Mutex::new(FlightState {
                            leader_claimed: false,
                            result: None,
                        }),
                        done: Condvar::new(),
                    })
                })
                .clone()
        };

        let is_leader = {
            let mut state = flight.state.lock().unwrap();
            if state.leader_claimed {
                false
            } else {
                state.leader_claimed = true;
                true
            }
        };

        if is_leader {
            let result = compute();
            {
                let mut state = flight.state.lock().unwrap();
                state.result = Some(result.clone());
            }
            // Retire the flight before waking followers: a brand-new
            // request arriving now must start a fresh computation rather
            // than observe a stale one.
            self.flights.lock().unwrap().remove(&key);
            flight.done.notify_all();
            (result, true)
        } else {
            let mut state = flight.state.lock().unwrap();
            while state.result.is_none() {
                state = flight.done.wait(state).unwrap();
            }
            (state.result.clone().expect("checked above"), false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_calls_each_compute() {
        let group = Singleflight::new();
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let (v, leader) = group.run(1, || calls.fetch_add(1, Ordering::SeqCst));
            assert!(leader, "no concurrency → every caller leads");
            let _ = v;
        }
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn concurrent_callers_share_one_computation() {
        let group = Arc::new(Singleflight::new());
        let calls = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));

        let handles: Vec<_> = (0..16)
            .map(|_| {
                let group = group.clone();
                let calls = calls.clone();
                let gate = gate.clone();
                std::thread::spawn(move || {
                    group.run(42, move || {
                        // Hold the flight open until the main thread has
                        // seen every worker start, so all 16 coalesce.
                        let (lock, cv) = &*gate;
                        let mut open = lock.lock().unwrap();
                        while !*open {
                            open = cv.wait(open).unwrap();
                        }
                        calls.fetch_add(1, Ordering::SeqCst);
                        7u32
                    })
                })
            })
            .collect();

        // Give every thread a chance to join the flight, then open the gate.
        std::thread::sleep(std::time::Duration::from_millis(50));
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }

        let mut leaders = 0;
        for h in handles {
            let (v, leader) = h.join().unwrap();
            assert_eq!(v, 7);
            leaders += leader as usize;
        }
        assert_eq!(leaders, 1, "exactly one leader");
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one computation");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let group = Singleflight::new();
        let (_, l1) = group.run(1, || "a");
        let (_, l2) = group.run(2, || "b");
        assert!(l1 && l2);
    }
}
