//! A tiny blocking HTTP client for the daemon's API — used by the CLI
//! smoke checks, the benchmark harness, and the integration tests. Not
//! a general HTTP client: one GET per connection, whole-body reads
//! (chunked transfer encoding is decoded, so the SSE stream endpoint is
//! readable too — the body arrives once the server seals the stream).

use std::io::{Read, Write};
use std::net::TcpStream;

/// One response from the daemon: status code, headers, and complete
/// body (de-chunked when the server used chunked transfer encoding).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// The HTTP status code.
    pub status: u16,
    /// Response header `(name, value)` pairs, names lowercased — the
    /// legacy-shim tests read `deprecation` and `link` from here.
    pub headers: Vec<(String, String)>,
    /// The response body (JSON for every daemon endpoint; SSE framing
    /// for the stream endpoint — see [`sse_events`]).
    pub body: String,
}

impl HttpResponse {
    /// The first value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed `/v1` response envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Envelope {
    /// Whether the request succeeded (`"ok": true`).
    pub ok: bool,
    /// The `data` payload on success.
    pub data: serde_json::Value,
    /// The typed `error.kind` on failure (empty on success).
    pub kind: String,
    /// The `error.message` on failure (empty on success).
    pub message: String,
}

/// Parses a `/v1` envelope body (`{"ok":…,"data":…,"error":…}`).
pub fn parse_envelope(body: &str) -> std::io::Result<Envelope> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let doc: serde_json::Value =
        serde_json::from_str(body).map_err(|e| bad(format!("envelope is not JSON: {e}")))?;
    let field = |name: &str| -> Option<serde_json::Value> {
        match &doc {
            serde_json::Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone()),
            _ => None,
        }
    };
    let ok = matches!(field("ok"), Some(serde_json::Value::Bool(true)));
    let error_field = |name: &str| -> String {
        match field("error") {
            Some(serde_json::Value::Object(fields)) => fields
                .iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| match v {
                    serde_json::Value::String(s) => Some(s.clone()),
                    _ => None,
                })
                .unwrap_or_default(),
            _ => String::new(),
        }
    };
    Ok(Envelope {
        ok,
        data: field("data").unwrap_or(serde_json::Value::Null),
        kind: error_field("kind"),
        message: error_field("message"),
    })
}

/// Issues `GET {target}` against `addr` (e.g. `"127.0.0.1:7787"`,
/// target `"/v1/analyze?path=%2Ftmp%2Ft.pvta"`) and reads the full
/// response.
pub fn get(addr: &str, target: &str) -> std::io::Result<HttpResponse> {
    get_with_headers(addr, target, &[])
}

/// [`get`] plus extra request headers — e.g. `("Last-Event-ID", id)`
/// to resume an SSE stream.
pub fn get_with_headers(
    addr: &str,
    target: &str,
    extra: &[(&str, &str)],
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {target} HTTP/1.1\r\nHost: {addr}\r\n")?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "Connection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// One server-sent event, as parsed from an SSE body by [`sse_events`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SseEvent {
    /// The `id:` field (echoed back as `Last-Event-ID` to resume).
    pub id: Option<String>,
    /// The `event:` field (`delta`, `result`, `error`).
    pub event: String,
    /// The `data:` payload (multi-line data joined with `\n`).
    pub data: String,
}

/// Splits a `text/event-stream` body into its events.
pub fn sse_events(body: &str) -> Vec<SseEvent> {
    let mut events = Vec::new();
    for block in body.split("\n\n") {
        let mut id = None;
        let mut event = String::new();
        let mut data: Vec<&str> = Vec::new();
        for line in block.lines() {
            if let Some(v) = line.strip_prefix("id:") {
                id = Some(v.trim().to_string());
            } else if let Some(v) = line.strip_prefix("event:") {
                event = v.trim().to_string();
            } else if let Some(v) = line.strip_prefix("data:") {
                data.push(v.strip_prefix(' ').unwrap_or(v));
            }
        }
        if !event.is_empty() || !data.is_empty() {
            events.push(SseEvent {
                id,
                event,
                data: data.join("\n"),
            });
        }
    }
    events
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("status line has no numeric code"))?;
    let headers: Vec<(String, String)> = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    let chunked = headers
        .iter()
        .any(|(name, value)| name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked"));
    let body = if chunked {
        dechunk(body).ok_or_else(|| bad("malformed chunked body"))?
    } else {
        body.to_string()
    };
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Decodes an HTTP/1.1 chunked body. Tolerates a truncated final chunk
/// (the server died mid-stream): everything decoded so far is returned.
fn dechunk(raw: &str) -> Option<String> {
    let mut out = String::new();
    let mut rest = raw;
    loop {
        let (size_line, tail) = rest.split_once("\r\n")?;
        let size = usize::from_str_radix(size_line.trim(), 16).ok()?;
        if size == 0 {
            return Some(out);
        }
        if tail.len() < size {
            // Truncated mid-chunk: surface what arrived.
            out.push_str(tail);
            return Some(out);
        }
        out.push_str(&tail[..size]);
        rest = tail[size..].strip_prefix("\r\n").unwrap_or(&tail[size..]);
        if rest.is_empty() {
            return Some(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_response() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\n{}\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, "{}\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
    }

    #[test]
    fn dechunks_a_chunked_response() {
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n7\r\n, world\r\n0\r\n\r\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.body, "hello, world");
        // A stream cut off mid-chunk still yields the received prefix.
        let cut = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\ntrunc";
        assert_eq!(parse_response(cut).unwrap().body, "trunc");
    }

    #[test]
    fn parses_sse_framing() {
        let body = "id: 00ff\nevent: delta\ndata: {\"new_events\":3}\n\nevent: result\ndata: line1\ndata: line2\n\n";
        let events = sse_events(body);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].id.as_deref(), Some("00ff"));
        assert_eq!(events[0].event, "delta");
        assert_eq!(events[0].data, "{\"new_events\":3}");
        assert_eq!(events[1].data, "line1\nline2");
    }

    #[test]
    fn parses_an_envelope() {
        let ok = parse_envelope("{\"ok\": true, \"data\": {\"status\": \"ok\"}}").unwrap();
        assert!(ok.ok);
        let err = parse_envelope(
            "{\"ok\": false, \"error\": {\"kind\": \"not-found\", \"message\": \"no\", \"detail\": null}}",
        )
        .unwrap();
        assert!(!err.ok);
        assert_eq!(err.kind, "not-found");
        assert_eq!(err.message, "no");
    }
}
