//! A tiny blocking HTTP client for the daemon's API — used by the CLI
//! smoke checks, the benchmark harness, and the integration tests. Not
//! a general HTTP client: one GET per connection, whole-body reads.

use std::io::{Read, Write};
use std::net::TcpStream;

/// One response from the daemon: status code and complete body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The response body (JSON for every daemon endpoint).
    pub body: String,
}

/// Issues `GET {target}` against `addr` (e.g. `"127.0.0.1:7787"`,
/// target `"/analyze?path=%2Ftmp%2Ft.pvta"`) and reads the full
/// response.
pub fn get(addr: &str, target: &str) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("status line has no numeric code"))?;
    Ok(HttpResponse {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_response() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\n{}\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 404);
        assert_eq!(resp.body, "{}\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
    }
}
