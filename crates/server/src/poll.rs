//! A minimal readiness shim over `poll(2)` for the daemon's
//! nonblocking accept loop.
//!
//! `std` has no readiness API, and the workspace is dependency-free by
//! policy, so the one symbol the reactor needs is declared directly
//! against the platform C library. This is the only unsafe code in the
//! crate (the crate is `#![deny(unsafe_code)]`; the FFI below carries a
//! scoped allow), and it is wrapped in the safe [`wait_readable`]:
//! hand it borrowed sockets, get back one readiness flag per socket.
//!
//! On non-Unix targets there is no `poll(2)`; [`wait_readable`] then
//! degrades to a fixed 5 ms sleep that reports every descriptor ready,
//! which turns the reactor into a coarse polling loop — correct (all
//! reads are nonblocking and tolerate spurious readiness) but not
//! scalable. The 10k-idle-connection property is claimed on Unix only.

use std::time::Duration;

#[cfg(unix)]
mod sys {
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// `struct pollfd` from `<poll.h>`.
    #[repr(C)]
    struct PollFd {
        fd: RawFd,
        events: i16,
        revents: i16,
    }

    /// "Data may be read without blocking" — the only event the reactor
    /// subscribes to. Error/hangup conditions (`POLLERR`, `POLLHUP`,
    /// `POLLNVAL`) are delivered in `revents` regardless of `events`,
    /// and are reported as readiness here so the caller's next read
    /// observes the EOF or error and retires the connection.
    const POLLIN: i16 = 0x001;

    #[allow(unsafe_code)]
    mod ffi {
        extern "C" {
            pub fn poll(fds: *mut super::PollFd, nfds: std::os::raw::c_ulong, timeout: i32) -> i32;
        }
    }

    pub fn wait_readable(fds: &[RawFd], timeout: Duration) -> std::io::Result<Vec<bool>> {
        let mut pollfds: Vec<PollFd> = fds
            .iter()
            .map(|&fd| PollFd {
                fd,
                events: POLLIN,
                revents: 0,
            })
            .collect();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `pollfds` is a live, exclusively borrowed buffer of
        // exactly `nfds` `struct pollfd` entries for the duration of the
        // call, and `poll` writes only within it.
        #[allow(unsafe_code)]
        let rc = unsafe {
            ffi::poll(
                pollfds.as_mut_ptr(),
                pollfds.len() as std::os::raw::c_ulong,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = std::io::Error::last_os_error();
            // A signal during the wait is not an error; report "nothing
            // ready" and let the caller's loop come back around.
            if err.kind() == std::io::ErrorKind::Interrupted {
                return Ok(vec![false; fds.len()]);
            }
            return Err(err);
        }
        Ok(pollfds.iter().map(|p| p.revents != 0).collect())
    }
}

#[cfg(not(unix))]
mod sys {
    use std::time::Duration;

    pub fn wait_readable(fds: &[i32], timeout: Duration) -> std::io::Result<Vec<bool>> {
        std::thread::sleep(timeout.min(Duration::from_millis(5)));
        Ok(vec![true; fds.len()])
    }
}

/// The raw descriptor type [`wait_readable`] polls. `RawFd` on Unix; a
/// placeholder on other targets (where the fallback ignores the values).
#[cfg(unix)]
pub type Fd = std::os::unix::io::RawFd;
/// The raw descriptor type [`wait_readable`] polls.
#[cfg(not(unix))]
pub type Fd = i32;

/// The raw descriptor of a socket, for [`wait_readable`]. On non-Unix
/// targets the value is a placeholder (the fallback ignores it).
#[cfg(unix)]
pub fn fd_of<T: std::os::unix::io::AsRawFd>(socket: &T) -> Fd {
    socket.as_raw_fd()
}
/// The raw descriptor of a socket, for [`wait_readable`].
#[cfg(not(unix))]
pub fn fd_of<T>(_socket: &T) -> Fd {
    0
}

/// Blocks until at least one of `fds` is readable (or has hung up or
/// errored — any condition a read would observe), or `timeout` elapses.
/// Returns one flag per descriptor, in order; all `false` on timeout.
///
/// Spurious wakes are allowed: a `true` flag means "a read is worth
/// attempting", not "a read will succeed" — callers must keep their
/// sockets nonblocking and treat `WouldBlock` as a no-op.
pub fn wait_readable(fds: &[Fd], timeout: Duration) -> std::io::Result<Vec<bool>> {
    if fds.is_empty() {
        std::thread::sleep(timeout);
        return Ok(Vec::new());
    }
    sys::wait_readable(fds, timeout)
}
