//! Persistent run store: labelled, digest-keyed archive registrations.
//!
//! The result cache makes repeated analyses free but is anonymous — a
//! dashboard polling `/compare` needs *names* for runs. The store maps
//! a content digest (the same 128-bit FNV the cache keys on) to the
//! archive path it was registered from plus an optional human label
//! ("v1.3", "nightly-2026-08-07"). It is deliberately tiny: a mutex
//! around a record list, persisted as one pretty-printed JSON file
//! (`runs.json`) rewritten on every registration, so registrations
//! survive daemon restarts alongside the disk cache spill.
//!
//! Lookups resolve a *reference*: an exact label first, then an exact
//! 32-hex-digit digest. Anything else is not the store's business —
//! the server falls back to treating the reference as a filesystem
//! path, so `/compare?base=v1&cand=/tmp/new.pvta` mixes both worlds.

use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One registered run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Content digest of the archive, as 32 lowercase hex digits — the
    /// same value the result cache keys on.
    pub digest: String,
    /// Human-readable label; empty when registered without one. Labels
    /// are unique: re-using a label moves it to the new digest.
    #[serde(default)]
    pub label: String,
    /// The archive path the run was registered from, verbatim.
    pub path: String,
    /// Registration time, seconds since the Unix epoch (0 if the clock
    /// was unavailable).
    #[serde(default)]
    pub registered_unix: u64,
}

/// Formats a digest the way the store (and the cache's spill files)
/// write it: 32 lowercase hex digits.
pub fn digest_hex(digest: u128) -> String {
    format!("{digest:032x}")
}

/// Whether a reference is *shaped* like a digest (32 hex digits) — used
/// to distinguish "digest not in store" (404) from "treat as a path".
pub fn looks_like_digest(reference: &str) -> bool {
    reference.len() == 32 && reference.bytes().all(|b| b.is_ascii_hexdigit())
}

/// The run store: an in-memory record list with an optional JSON file
/// behind it. Without a directory it still works for the daemon's
/// lifetime; with one, every mutation is persisted before returning.
pub struct RunStore {
    file: Option<PathBuf>,
    records: Mutex<Vec<RunRecord>>,
}

impl RunStore {
    /// Opens the store in `dir` (creating `dir/runs.json` on the first
    /// registration), loading any existing records. An unreadable or
    /// corrupt store file starts empty rather than bricking the daemon.
    /// `None` keeps the store purely in memory.
    pub fn open(dir: Option<&Path>) -> RunStore {
        let file = dir.map(|d| d.join("runs.json"));
        let records = file
            .as_ref()
            .and_then(|f| std::fs::read(f).ok())
            .and_then(|bytes| serde_json::from_slice(&bytes).ok())
            .unwrap_or_default();
        RunStore {
            file,
            records: Mutex::new(records),
        }
    }

    /// Registers (or re-registers) a run: upserts by digest, keeping
    /// registration order. A non-empty label is claimed exclusively —
    /// any other record holding it is relabelled to empty. Returns the
    /// stored record. Fails only when persisting to disk fails.
    pub fn register(
        &self,
        digest: u128,
        label: Option<&str>,
        path: &Path,
    ) -> Result<RunRecord, String> {
        let digest = digest_hex(digest);
        let label = label.unwrap_or("").to_string();
        let mut records = self.records.lock().unwrap();
        if !label.is_empty() {
            for r in records.iter_mut() {
                if r.label == label && r.digest != digest {
                    r.label = String::new();
                }
            }
        }
        let record = match records.iter_mut().find(|r| r.digest == digest) {
            Some(existing) => {
                if !label.is_empty() {
                    existing.label = label;
                }
                existing.path = path.display().to_string();
                existing.clone()
            }
            None => {
                let record = RunRecord {
                    digest,
                    label,
                    path: path.display().to_string(),
                    registered_unix: SystemTime::now()
                        .duration_since(UNIX_EPOCH)
                        .map(|d| d.as_secs())
                        .unwrap_or(0),
                };
                records.push(record.clone());
                record
            }
        };
        self.persist(&records)?;
        Ok(record)
    }

    fn persist(&self, records: &[RunRecord]) -> Result<(), String> {
        let Some(file) = &self.file else {
            return Ok(());
        };
        if let Some(dir) = file.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        let json = serde_json::to_string_pretty(&records.to_vec())
            .map_err(|e| format!("run store serialisation failed: {e}"))?;
        std::fs::write(file, json).map_err(|e| format!("{}: {e}", file.display()))
    }

    /// All records, in registration order.
    pub fn list(&self) -> Vec<RunRecord> {
        self.records.lock().unwrap().clone()
    }

    /// Number of registered runs.
    pub fn len(&self) -> usize {
        self.records.lock().unwrap().len()
    }

    /// Whether the store has no registrations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a reference: exact label match first (labels are the
    /// human handle), then exact digest match.
    pub fn find(&self, reference: &str) -> Option<RunRecord> {
        let records = self.records.lock().unwrap();
        records
            .iter()
            .find(|r| !r.label.is_empty() && r.label == reference)
            .or_else(|| records.iter().find(|r| r.digest == reference))
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("perfvar-server-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn register_list_find() {
        let store = RunStore::open(None);
        assert!(store.is_empty());
        store
            .register(0xabc, Some("v1"), Path::new("/tmp/a.pvta"))
            .unwrap();
        store
            .register(0xdef, None, Path::new("/tmp/b.pvta"))
            .unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.find("v1").unwrap().path, "/tmp/a.pvta");
        assert_eq!(store.find(&digest_hex(0xdef)).unwrap().path, "/tmp/b.pvta");
        assert!(store.find("v2").is_none());
        assert!(store.find(&digest_hex(0x123)).is_none());
    }

    #[test]
    fn register_upserts_by_digest_and_labels_stay_unique() {
        let store = RunStore::open(None);
        store
            .register(1, Some("best"), Path::new("/tmp/a.pvta"))
            .unwrap();
        store
            .register(2, Some("best"), Path::new("/tmp/b.pvta"))
            .unwrap();
        // The label moved; the old record remains, unlabelled.
        assert_eq!(store.len(), 2);
        assert_eq!(store.find("best").unwrap().digest, digest_hex(2));
        assert_eq!(store.find(&digest_hex(1)).unwrap().label, "");
        // Re-registering the same digest updates in place.
        store
            .register(2, Some("renamed"), Path::new("/tmp/c.pvta"))
            .unwrap();
        assert_eq!(store.len(), 2);
        let r = store.find("renamed").unwrap();
        assert_eq!(r.digest, digest_hex(2));
        assert_eq!(r.path, "/tmp/c.pvta");
    }

    #[test]
    fn store_survives_reopen() {
        let dir = tmp_dir("store-reopen");
        {
            let store = RunStore::open(Some(&dir));
            store
                .register(0x77, Some("keep"), Path::new("/tmp/keep.pvta"))
                .unwrap();
        }
        let reopened = RunStore::open(Some(&dir));
        assert_eq!(reopened.len(), 1);
        assert_eq!(reopened.find("keep").unwrap().path, "/tmp/keep.pvta");
        // A corrupt store file degrades to empty instead of failing.
        std::fs::write(dir.join("runs.json"), b"{not json").unwrap();
        assert!(RunStore::open(Some(&dir)).is_empty());
    }

    #[test]
    fn digest_shape_detection() {
        assert!(looks_like_digest(&digest_hex(0)));
        assert!(looks_like_digest(&digest_hex(u128::MAX)));
        assert!(!looks_like_digest("v1"));
        assert!(!looks_like_digest("/tmp/t.pvta"));
        assert!(!looks_like_digest("00112233445566778899aabbccddeeff0")); // 33
    }
}
