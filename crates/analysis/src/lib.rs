//! # perfvar-analysis — the paper's core contribution
//!
//! Implements the three-step methodology of *"Detection and Visualization
//! of Performance Variations to Guide Identification of Application
//! Bottlenecks"* (Weber et al., ICPP 2016):
//!
//! 1. **Identify the time-dominant function** (§IV) — [`dominant`]:
//!    among functions invoked at least `2p` times (`p` = process count),
//!    the one with the highest aggregated *inclusive* time. Its
//!    invocations partition the run into *segments*.
//! 2. **Compute runtime imbalances** (§V) — [`segment`] and [`sos`]:
//!    each segment's duration is the invocation's inclusive time; the
//!    **synchronization-oblivious segment time (SOS-time)** subtracts all
//!    time spent in synchronization/communication functions inside the
//!    segment, revealing which *process* is actually slow rather than who
//!    waits for whom.
//! 3. **Guide the analyst** (§VI–VII) — [`imbalance`] flags outlier
//!    processes and segments; [`counters`] correlates hardware-counter
//!    channels with SOS-times (the paper's WRF validation); [`report`]
//!    assembles everything into a hotspot report. Rendering lives in the
//!    `perfvar-viz` crate.
//!
//! The foundation is [`invocation`]: a call-stack replay that turns each
//! process's event stream into a list of function invocations with
//! inclusive/exclusive times (the paper's Fig. 1 semantics) and the
//! synchronization time contained in each. The default pipeline
//! ([`report::analyze`]) *fuses* those semantics into one streaming pass
//! per process (see [`stream`] and [`fused`]); for traces too large to
//! load at all, [`outofcore::analyze_path`] drives the identical fused
//! pipeline straight from the on-disk file through the incremental
//! cursors of `perfvar-trace`, holding only per-worker streaming state.
//!
//! ```
//! use perfvar_analysis::prelude::*;
//! use perfvar_sim::prelude::*;
//!
//! let trace = simulate(&workloads::SingleOutlier::new(4, 8, 2).spec()).unwrap();
//! let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
//! // The injected outlier (rank 2) dominates the SOS-time matrix.
//! assert_eq!(analysis.imbalance.hottest_process().unwrap().index(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod callpath;
pub mod clustering;
pub mod compare;
pub mod counters;
pub mod diagnose;
pub mod dominant;
pub mod findings;
pub mod fused;
pub mod imbalance;
pub mod invocation;
pub mod live;
pub mod messages;
pub mod options;
pub mod outofcore;
pub mod parallel;
pub mod part;
pub mod phases;
pub mod profile;
pub mod report;
pub mod segment;
pub mod sos;
pub mod stream;
pub mod telemetry;
pub mod waitstates;

/// Convenient glob-import of the analysis pipeline.
pub mod prelude {
    pub use crate::callpath::{CallPathId, CallTree};
    pub use crate::clustering::{Cluster, ClusterConfig, ProcessClustering};
    pub use crate::compare::{
        bisect_first_regression, BisectOutcome, FunctionDelta, RunComparison, RunSummary, Verdict,
        VerdictClass, DEFAULT_NOISE_THRESHOLD,
    };
    pub use crate::counters::{correlate_with_sos, CounterMatrix};
    pub use crate::diagnose::{
        diagnose_analysis, diagnose_meta, DiagnoseConfig, DiagnosedCluster, Diagnosis,
        WaveDiagnosis,
    };
    pub use crate::dominant::{DominantRanking, DominantSelection};
    pub use crate::findings::{auto_refine, findings, findings_meta, Finding, FindingKind};
    pub use crate::fused::{fuse_segments, FusedSegments};
    pub use crate::imbalance::{ImbalanceAnalysis, Outlier, WasteAnalysis};
    pub use crate::invocation::{Invocation, ProcessInvocations};
    pub use crate::live::{FunctionTotal, LiveAnalysis, LiveDelta, LiveSnapshot, RankSnapshot};
    pub use crate::messages::{CommMatrix, MatchedMessage, MessageAnalysis};
    pub use crate::options::{AnalysisOptions, DiagnoseOptions, OptionsError};
    pub use crate::outofcore::{
        analyze_path, analyze_path_observed, analyze_path_with, OutOfCoreAnalysis,
        PathAnalysisError, RecoveryMode, StreamFailure,
    };
    pub use crate::part::{
        analyze_path_sharded, analyze_path_sharded_observed, archive_part, archive_part_observed,
        AnalysisPart, PartOutcome,
    };
    pub use crate::phases::{Phase, PhaseConfig, PhaseDetection};
    pub use crate::profile::FunctionProfile;
    pub use crate::report::{
        analyze, analyze_observed, analyze_reference, Analysis, AnalysisConfig, AnalysisError,
    };
    pub use crate::segment::{Segment, Segmentation};
    pub use crate::sos::SosMatrix;
    pub use crate::stream::{replay_visit, ClosedFrame, ReplayMachine, ReplayVisitor};
    pub use crate::telemetry::{PipelineStats, Progress, Stage, Telemetry};
    pub use crate::waitstates::{ProcessWaitStates, WaitStateAnalysis};
}

pub use callpath::CallTree;
pub use clustering::ProcessClustering;
pub use compare::{
    bisect_first_regression, BisectOutcome, FunctionDelta, RunComparison, Verdict, VerdictClass,
    DEFAULT_NOISE_THRESHOLD,
};
pub use counters::CounterMatrix;
pub use diagnose::{
    diagnose_analysis, diagnose_meta, DiagnoseConfig, DiagnosedCluster, Diagnosis, WaveDiagnosis,
};
pub use dominant::{DominantRanking, DominantSelection};
pub use fused::{fuse_segments, FusedSegments};
pub use imbalance::ImbalanceAnalysis;
pub use invocation::{Invocation, ProcessInvocations};
pub use live::{LiveAnalysis, LiveDelta, LiveSnapshot};
pub use options::{AnalysisOptions, DiagnoseOptions, OptionsError};
pub use outofcore::{
    analyze_path, analyze_path_observed, analyze_path_with, OutOfCoreAnalysis, PathAnalysisError,
    RecoveryMode, StreamFailure,
};
pub use part::{
    analyze_path_sharded, analyze_path_sharded_observed, archive_part, archive_part_observed,
    AnalysisPart, PartOutcome,
};
pub use profile::FunctionProfile;
pub use report::{
    analyze, analyze_observed, analyze_reference, Analysis, AnalysisConfig, AnalysisError,
};
pub use segment::{Segment, Segmentation};
pub use sos::SosMatrix;
pub use stream::{replay_visit, ClosedFrame, ReplayMachine, ReplayVisitor};
pub use telemetry::{PipelineStats, Telemetry};
