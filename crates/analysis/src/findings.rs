//! Severity-ranked findings: the "guide the analyst" product.
//!
//! The paper's goal is that the analyst "is pointed directly to the
//! cause of the performance bottleneck" — and its related work notes
//! that Scalasca ranks located patterns "by their severity and impact on
//! the application performance". This module condenses an [`Analysis`]
//! into a ranked list of [`Finding`]s with human-readable explanations:
//! overloaded processes, outlier invocations, temporal drift, and
//! counter correlations, each scored by its estimated impact.
//!
//! [`auto_refine`] automates the paper's §VII-B refinement loop: step
//! down the dominant ranking until the hotspot is isolated to (nearly)
//! a single invocation, then stop.

use crate::report::{analyze, Analysis, AnalysisConfig};
use perfvar_trace::{Clock, ProcessId, Registry, Trace, TraceMeta};
use serde::{Deserialize, Serialize};

/// The kind of a finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FindingKind {
    /// One or more processes carry outlier computational load.
    OverloadedProcesses {
        /// The flagged processes, hottest first.
        processes: Vec<ProcessId>,
    },
    /// One or a few single invocations are outliers (e.g. an OS
    /// interruption).
    OutlierInvocations {
        /// `(process, ordinal)` of the flagged segments, hottest first.
        segments: Vec<(ProcessId, usize)>,
    },
    /// Segment durations drift over the run.
    TemporalDrift {
        /// Relative increase of the fitted duration over the run.
        relative_increase: f64,
    },
    /// The run switches between distinct duration regimes.
    RegimeShift {
        /// First ordinal of each phase after the initial one.
        boundaries: Vec<usize>,
    },
    /// A hardware counter explains the SOS variation.
    CounterCorrelation {
        /// The metric channel name.
        metric: String,
        /// Pearson correlation with SOS-time.
        correlation: f64,
    },
    /// A whole behaviour cluster of processes carries persistent
    /// computational overload — the cluster-summarised form of
    /// [`FindingKind::OverloadedProcesses`] emitted by
    /// [`diagnose`](crate::diagnose) at scale.
    OverloadedCluster {
        /// Index of the cluster in the diagnosis' cluster list.
        cluster: usize,
        /// Member processes of the overloaded cluster, ascending.
        processes: Vec<ProcessId>,
        /// Name of the segmentation function carrying the load.
        function: String,
    },
    /// Waiting time propagates from rank to rank, one segment ordinal
    /// per hop — a desynchronisation ("idle") wave after Afzal et al.,
    /// not a static imbalance: the computational load is balanced and
    /// only the *synchronisation* time carries the pattern.
    PropagatingWait {
        /// The rank whose one-off delay started the wave.
        origin: ProcessId,
        /// Segment ordinal at which the wave left the origin.
        start_ordinal: usize,
        /// Number of ranks the front has swept.
        affected_ranks: usize,
    },
}

/// One ranked finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Finding {
    /// What was found.
    pub kind: FindingKind,
    /// Severity in `[0, 1]`: the estimated fraction of aggregate CPU
    /// time implicated (waste-based for load findings; correlation
    /// strength for counter findings; capped relative drift for trends).
    pub severity: f64,
    /// One-sentence human-readable description.
    pub description: String,
}

/// Extracts the ranked findings of an analysis.
pub fn findings(trace: &Trace, analysis: &Analysis) -> Vec<Finding> {
    findings_impl(trace.clock(), trace.registry(), analysis)
}

/// Like [`findings`] but working from trace *metadata* — the findings
/// only consult the clock (to format durations) and the registry (to
/// name metrics), so the out-of-core path extracts them without ever
/// holding a [`Trace`].
pub fn findings_meta(meta: &TraceMeta, analysis: &Analysis) -> Vec<Finding> {
    findings_impl(meta.clock, &meta.registry, analysis)
}

fn findings_impl(clock: Clock, registry: &Registry, analysis: &Analysis) -> Vec<Finding> {
    let mut out = Vec::new();
    let waste_fraction = analysis.waste.waste_fraction();

    if !analysis.imbalance.process_outliers.is_empty() {
        let processes = analysis.imbalance.process_outliers.clone();
        let names: Vec<String> = processes.iter().take(8).map(|p| p.to_string()).collect();
        out.push(Finding {
            kind: FindingKind::OverloadedProcesses {
                processes: processes.clone(),
            },
            severity: waste_fraction,
            description: format!(
                "{} process(es) carry outlier computational load ({}{}); \
                 ≈{:.0}% of aggregate CPU time is spent waiting for the slowest",
                processes.len(),
                names.join(", "),
                if processes.len() > 8 { ", …" } else { "" },
                waste_fraction * 100.0
            ),
        });
    }

    // Segment outliers are reported as localised spikes only when they
    // are few; a process that is slow in *every* iteration is already
    // covered by the overloaded-processes finding above.
    let spike_like = !analysis.imbalance.segment_outliers.is_empty()
        && analysis.imbalance.segment_outliers.len()
            <= 3 * analysis.imbalance.process_outliers.len().max(1);
    if spike_like {
        let segments: Vec<(ProcessId, usize)> = analysis
            .imbalance
            .segment_outliers
            .iter()
            .map(|o| (o.process, o.ordinal))
            .collect();
        let top = &analysis.imbalance.segment_outliers[0];
        out.push(Finding {
            kind: FindingKind::OutlierInvocations {
                segments: segments.clone(),
            },
            severity: waste_fraction,
            description: format!(
                "{} isolated slow invocation(s); worst: {} segment #{} with SOS {} \
                 (score {:.0})",
                segments.len(),
                top.process,
                top.ordinal,
                clock.format_duration(top.sos),
                top.score
            ),
        });
    }

    // Regime switches (distinct from gradual drift): phase detection on
    // the per-ordinal duration series.
    let phases = crate::phases::PhaseDetection::detect_durations(
        &analysis.sos,
        crate::phases::PhaseConfig::default(),
    );
    if phases.len() > 1 {
        let means: Vec<f64> = phases.phases.iter().map(|p| p.mean).collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0f64, f64::max);
        let severity = if hi > 0.0 {
            ((hi - lo) / hi).clamp(0.0, 1.0)
        } else {
            0.0
        };
        out.push(Finding {
            kind: FindingKind::RegimeShift {
                boundaries: phases.boundaries(),
            },
            severity: severity * 0.5, // regime info guides, load findings rank higher
            description: format!(
                "the run switches duration regimes at ordinal(s) {:?} \
                 (phase means {} … {})",
                phases.boundaries(),
                lo.round(),
                hi.round()
            ),
        });
    }

    let drift = analysis.imbalance.duration_trend.relative_increase;
    if drift.abs() > 0.25 {
        out.push(Finding {
            kind: FindingKind::TemporalDrift {
                relative_increase: drift,
            },
            severity: (drift.abs() / 4.0).min(1.0),
            description: format!(
                "segment durations {} by {:.0}% over the run",
                if drift > 0.0 { "grow" } else { "shrink" },
                drift.abs() * 100.0
            ),
        });
    }

    for counter in &analysis.counters {
        if let Some(r) = counter.sos_correlation {
            if r.abs() > 0.8 {
                let metric = registry.metric(counter.metric).name.clone();
                out.push(Finding {
                    kind: FindingKind::CounterCorrelation {
                        metric: metric.clone(),
                        correlation: r,
                    },
                    severity: r.abs(),
                    description: format!(
                        "counter {metric:?} correlates with SOS-time (r = {r:+.2}) — \
                         a likely root-cause indicator"
                    ),
                });
            }
        }
    }

    out.sort_by(|a, b| b.severity.total_cmp(&a.severity));
    out
}

/// Automates §VII-B's refinement: repeatedly steps to the next-finer
/// segmentation function while that sharpens the hotspot, i.e. while the
/// number of flagged segments drops (towards the paper's "single
/// function call — red line"). Returns the sharpest analysis reached and
/// the number of refinement steps taken.
pub fn auto_refine(
    trace: &Trace,
    config: &AnalysisConfig,
    max_steps: usize,
) -> Result<(Analysis, usize), crate::report::AnalysisError> {
    let mut current = analyze(trace, config)?;
    let mut steps = 0;
    while steps < max_steps {
        let current_outliers = current.imbalance.segment_outliers.len();
        if current_outliers == 0 {
            break;
        }
        let Some(finer) = current.refine(trace, config) else {
            break;
        };
        let finer_outliers = finer.imbalance.segment_outliers.len();
        // Keep refining while the picture stays at least as sharp at a
        // genuinely finer granularity; a refinement that loses the signal
        // (0 outliers — e.g. stepping into pure-MPI functions whose SOS
        // is zero) or blurs it (more outliers) is rejected.
        let genuinely_finer = finer.segmentation.max_segments_per_process()
            > current.segmentation.max_segments_per_process();
        if finer_outliers == 0 || finer_outliers > current_outliers || !genuinely_finer {
            break;
        }
        current = finer;
        steps += 1;
    }
    Ok((current, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvar_sim::prelude::*;
    use perfvar_sim::workloads::{BalancedStencil, GradualSlowdown, SingleOutlier, Wrf};

    #[test]
    fn balanced_run_yields_no_findings() {
        let trace = simulate(&BalancedStencil::new(6, 10).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        assert!(findings(&trace, &analysis).is_empty());
    }

    #[test]
    fn outlier_yields_invocation_finding() {
        let trace = simulate(&SingleOutlier::new(6, 10, 2).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let f = findings(&trace, &analysis);
        assert!(
            f.iter().any(
                |f| matches!(&f.kind, FindingKind::OutlierInvocations { segments }
                if segments.first() == Some(&(ProcessId(2), 5)))
            ),
            "{f:?}"
        );
    }

    #[test]
    fn wrf_yields_process_and_counter_findings() {
        let trace = simulate(&Wrf::small(2, 3, 10).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let f = findings(&trace, &analysis);
        assert!(
            f.iter().any(
                |f| matches!(&f.kind, FindingKind::OverloadedProcesses { processes }
                if processes.contains(&ProcessId(3)))
            ),
            "{f:?}"
        );
        assert!(
            f.iter().any(
                |f| matches!(&f.kind, FindingKind::CounterCorrelation { correlation, .. }
                if *correlation > 0.8)
            ),
            "{f:?}"
        );
        // Sorted by severity.
        for w in f.windows(2) {
            assert!(w[0].severity >= w[1].severity);
        }
    }

    #[test]
    fn gradual_slowdown_yields_drift_finding() {
        let trace = simulate(&GradualSlowdown::new(4, 15).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let f = findings(&trace, &analysis);
        assert!(
            f.iter().any(
                |f| matches!(&f.kind, FindingKind::TemporalDrift { relative_increase }
                if *relative_increase > 1.0)
            ),
            "{f:?}"
        );
    }

    #[test]
    fn regime_shift_reported() {
        use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};
        // 3 processes, 24 iterations; all durations triple half-way.
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for _ in 0..3 {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for k in 0..24 {
                let load = if k < 12 { 100 } else { 300 };
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace = b.finish().unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let f = findings(&trace, &analysis);
        let shift = f
            .iter()
            .find_map(|f| match &f.kind {
                FindingKind::RegimeShift { boundaries } => Some(boundaries.clone()),
                _ => None,
            })
            .expect("regime shift reported");
        assert_eq!(shift, vec![12]);
    }

    #[test]
    fn auto_refine_sharpens_fd4_hotspot() {
        let w = workloads::CosmoSpecsFd4::small(16, 3);
        let trace = simulate(&w.spec()).unwrap();
        let config = AnalysisConfig::default();
        let (sharp, steps) = auto_refine(&trace, &config, 5).unwrap();
        assert!(steps <= 5);
        assert_eq!(sharp.imbalance.segment_outliers.len(), 1);
        let hot = &sharp.imbalance.segment_outliers[0];
        assert_eq!(hot.process.index(), w.interrupted_rank);
    }

    #[test]
    fn auto_refine_is_stable_on_balanced_runs() {
        let trace = simulate(&BalancedStencil::new(4, 8).spec()).unwrap();
        let config = AnalysisConfig::default();
        let (analysis, steps) = auto_refine(&trace, &config, 5).unwrap();
        assert_eq!(steps, 0);
        assert!(!analysis.imbalance.has_findings());
    }

    #[test]
    fn descriptions_are_informative() {
        let trace = simulate(&SingleOutlier::new(5, 8, 1).spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let f = findings(&trace, &analysis);
        assert!(!f.is_empty());
        for finding in &f {
            assert!(!finding.description.is_empty());
            assert!((0.0..=1.0).contains(&finding.severity), "{finding:?}");
        }
    }
}
