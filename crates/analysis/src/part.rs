//! Mergeable partial analyses: the end-of-run merge as a first-class
//! value.
//!
//! The paper's pipeline is defined *per process* — profiles, segments
//! and SOS-times are computed independently for every rank and only
//! combined at the very end. [`AnalysisPart`] reifies that combination
//! step: it carries the per-rank contributions (profile rows, fused
//! segment/counter partials, extent, stream failures) plus the pipeline
//! [`Counters`] spent producing them, and composes under [`merge`].
//!
//! [`merge`]: AnalysisPart::merge
//!
//! # The merge algebra
//!
//! Parts over **disjoint rank sets** of the same trace and config form a
//! commutative monoid:
//!
//! * **identity** — `empty().merge(p) == p.merge(empty()) == p`;
//! * **commutativity** — `a.merge(b) == b.merge(a)`;
//! * **associativity** — `a.merge(b).merge(c) == a.merge(b.merge(c))`.
//!
//! All three hold *exactly* (bit-for-bit), not approximately: per-rank
//! contributions are kept keyed by rank index and never pre-aggregated,
//! so [`finalize`](AnalysisPart::finalize) always sees them in rank
//! order no matter how the set was partitioned or in which order the
//! pieces were merged. `tests/properties.rs` proves this by property
//! test against [`analyze_path`](crate::outofcore::analyze_path): any
//! partition of an archive's ranks, analysed by [`archive_part`] and
//! merged in any order, finalizes to a bit-identical
//! [`Analysis`](crate::report::Analysis).
//!
//! Merging parts with **overlapping ranks** or **mismatched shapes**
//! (different function/metric counts or speculation targets — i.e. parts
//! of different traces or configs) is a logic error and panics; the laws
//! above are claimed only where a merge is meaningful.
//!
//! # From parts to an `Analysis`
//!
//! A coordinator (a sharded `perfvar serve`, a test, a future
//! live-analysis tailer) produces one part per shard via
//! [`archive_part`], folds them with `merge`, and calls
//! [`finalize`](AnalysisPart::finalize). Because each shard resolves the
//! speculative segmentation target deterministically from the same
//! archive and config, all parts agree on the guess; `finalize` verifies
//! it against the *global* dominant ranking and either completes
//! ([`PartOutcome::Done`]) or hands the part back with the true function
//! ([`PartOutcome::Mispredicted`]) so the driver can re-run the shards
//! with an explicit override — which can never mispredict.
//! [`analyze_path_sharded`] packages exactly that loop.
//!
//! # Example: a manual two-part merge
//!
//! ```
//! use perfvar_analysis::{
//!     analyze_path, archive_part, AnalysisConfig, AnalysisPart, PartOutcome, RecoveryMode,
//! };
//! use perfvar_sim::workloads::{BalancedStencil, Workload};
//! use perfvar_trace::format::cursor::ArchiveCursor;
//!
//! // A 4-rank archive to shard.
//! let trace = perfvar_sim::simulate(&BalancedStencil::new(4, 6).spec()).unwrap();
//! let dir = std::env::temp_dir().join("perfvar-doc-two-part-merge.pvta");
//! perfvar_trace::format::write_trace_file(&trace, &dir).unwrap();
//!
//! // Two shards analyse disjoint halves of the rank space independently.
//! let config = AnalysisConfig::default();
//! let lo = archive_part(&dir, &config, RecoveryMode::Strict, 0..2).unwrap();
//! let hi = archive_part(&dir, &config, RecoveryMode::Strict, 2..4).unwrap();
//!
//! // The coordinator folds them — from the identity, in either order.
//! let merged = AnalysisPart::empty().merge(hi).merge(lo);
//! assert_eq!(merged.num_ranks(), 4);
//!
//! // Finalizing against the archive's definitions yields the analysis.
//! let cursor = ArchiveCursor::open(&dir).unwrap();
//! let outcome = merged
//!     .finalize(cursor.name(), cursor.clock(), cursor.registry(), &config)
//!     .unwrap();
//! let PartOutcome::Done(sharded) = outcome else {
//!     panic!("an SPMD workload's rank-0 prefix predicts correctly");
//! };
//!
//! // Bit-identical to the single-process out-of-core analysis.
//! assert_eq!(sharded.analysis, analyze_path(&dir, &config).unwrap());
//! ```

use crate::dominant::DominantRanking;
use crate::fused::{merge_fused, metric_modes};
use crate::outofcore::{
    combined_rank, cursor_options, empty_fused, predict_archive_function, speculation_target,
    Extent, FusedPartial, OutOfCoreAnalysis, PathAnalysisError, RankCombined, RecoveryMode,
    StreamFailure,
};
use crate::parallel::par_map_ranks;
use crate::profile::{ProfileRow, ProfileTable};
use crate::report::{assemble, segmentation_function, AnalysisConfig};
use crate::telemetry::{Counters, Stage, Telemetry};
use perfvar_trace::format::cursor::ArchiveCursor;
use perfvar_trace::format::Format;
use perfvar_trace::{Clock, FunctionId, ProcessId, Registry, Timestamp, TraceError};
use std::collections::BTreeMap;
use std::path::Path;

/// The shape every mergeable part of one analysis must share: the
/// registry dimensions and the speculative segmentation target. Two
/// parts with equal shapes came from the same trace layout and the same
/// effective config, so their rank contributions compose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Shape {
    num_functions: usize,
    num_metrics: usize,
    target: FunctionId,
}

/// One rank's contribution: its profile rows, the fused partial for the
/// speculation target, its extent, and — in partial mode — the stream
/// failure that replaced the data.
#[derive(Debug)]
struct RankPart {
    rows: Vec<ProfileRow>,
    fused: FusedPartial,
    num_events: u64,
    first: Option<Timestamp>,
    last: Option<Timestamp>,
    failure: Option<TraceError>,
}

/// A mergeable partial analysis covering a subset of a trace's ranks.
///
/// See the [module docs](self) for the merge laws. Build parts with
/// [`archive_part`] (or receive one back from a mispredicted
/// [`finalize`](AnalysisPart::finalize)), combine them with
/// [`merge`](AnalysisPart::merge), and turn the union into an
/// [`Analysis`](crate::report::Analysis) with
/// [`finalize`](AnalysisPart::finalize) once every rank of the trace is
/// covered.
///
/// ```
/// use perfvar_analysis::outofcore::{analyze_path, RecoveryMode};
/// use perfvar_analysis::part::{archive_part, AnalysisPart, PartOutcome};
/// use perfvar_analysis::report::AnalysisConfig;
/// use perfvar_trace::format::cursor::ArchiveCursor;
/// use perfvar_trace::format::write_trace_file;
/// use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};
///
/// // Four ranks, eight iterations each, written as a PVTA archive.
/// let mut b = TraceBuilder::new(Clock::microseconds()).with_name("parts");
/// let f = b.define_function("iteration", FunctionRole::Compute);
/// for pi in 0..4u64 {
///     let p = b.define_process(format!("rank {pi}"));
///     let w = b.process_mut(p);
///     for k in 0..8u64 {
///         w.enter(Timestamp(k * 10), f).unwrap();
///         w.leave(Timestamp(k * 10 + 4 + pi % 2), f).unwrap();
///     }
/// }
/// let trace = b.finish().unwrap();
/// let dir = std::env::temp_dir().join("perfvar-part-doc.pvta");
/// write_trace_file(&trace, &dir).unwrap();
///
/// // Analyse ranks {0, 1} and {2, 3} independently — this could happen
/// // in two different worker processes — and merge the two partials.
/// let config = AnalysisConfig::default();
/// let left = archive_part(&dir, &config, RecoveryMode::Strict, 0..2).unwrap();
/// let right = archive_part(&dir, &config, RecoveryMode::Strict, 2..4).unwrap();
/// let merged = AnalysisPart::empty().merge(left).merge(right);
/// assert_eq!(merged.num_ranks(), 4);
///
/// // Finalizing the union reproduces the single-process analysis bit
/// // for bit.
/// let cursor = ArchiveCursor::open(&dir).unwrap();
/// let outcome = merged
///     .finalize(cursor.name(), cursor.clock(), cursor.registry(), &config)
///     .unwrap();
/// let PartOutcome::Done(sharded) = outcome else {
///     panic!("an SPMD trace confirms its speculation");
/// };
/// assert_eq!(sharded.analysis, analyze_path(&dir, &config).unwrap());
/// ```
#[derive(Debug)]
pub struct AnalysisPart {
    /// `None` only for the empty part — it adopts the other side's shape
    /// on merge.
    shape: Option<Shape>,
    ranks: BTreeMap<usize, RankPart>,
    counters: Counters,
}

/// What [`AnalysisPart::finalize`] produced.
#[derive(Debug)]
pub enum PartOutcome {
    /// The speculation was confirmed; the analysis is complete (with
    /// [`passes`](OutOfCoreAnalysis::passes) set to `1` — a driver that
    /// re-passed should overwrite it).
    Done(Box<OutOfCoreAnalysis>),
    /// The global dominant ranking disagreed with the speculative
    /// target the parts were built for. The part comes back untouched;
    /// re-run the shards with `expected` as the explicit
    /// [`AnalysisConfig::segment_function`] override (which cannot
    /// mispredict) and finalize the new union.
    Mispredicted {
        /// The function the segmentation must actually use.
        expected: FunctionId,
        /// The surviving part, returned so a driver with cheap fused
        /// re-pass access (same process, open cursor) can patch it via
        /// the crate-internal hooks instead of recomputing profiles.
        part: AnalysisPart,
    },
}

impl AnalysisPart {
    /// The two-sided identity of [`merge`](AnalysisPart::merge): covers
    /// no ranks, counts nothing, and adopts the other side's shape.
    pub fn empty() -> AnalysisPart {
        AnalysisPart {
            shape: None,
            ranks: BTreeMap::new(),
            counters: Counters::default(),
        }
    }

    /// Whether this part covers no ranks at all.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Number of ranks this part covers (including failed ones).
    pub fn num_ranks(&self) -> usize {
        self.ranks.len()
    }

    /// The rank indices this part covers, in ascending order.
    pub fn rank_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.ranks.keys().copied()
    }

    /// Pipeline throughput counters accumulated while producing this
    /// part (events replayed, bytes decoded, segments emitted, SOS
    /// clamps, recovered ranks). Sums across [`merge`]: the union's
    /// counters equal the sum of the pieces', so a coordinator can
    /// report shard totals without a shared telemetry sink.
    ///
    /// [`merge`]: AnalysisPart::merge
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Combines two parts over disjoint rank sets of the same analysis.
    ///
    /// Associative and commutative with [`AnalysisPart::empty`] as the
    /// identity — see the [module docs](self) for why these hold bit-
    /// exactly.
    ///
    /// # Panics
    ///
    /// If both parts cover a common rank, or their shapes disagree
    /// (parts of different traces, registries, or configs).
    pub fn merge(mut self, other: AnalysisPart) -> AnalysisPart {
        match (&self.shape, &other.shape) {
            (Some(a), Some(b)) => assert_eq!(
                a, b,
                "merged parts must share one trace shape and speculation target"
            ),
            (None, Some(b)) => self.shape = Some(*b),
            _ => {}
        }
        for (index, rank) in other.ranks {
            let clash = self.ranks.insert(index, rank);
            assert!(
                clash.is_none(),
                "rank {index} is covered by both parts; merge needs disjoint rank sets"
            );
        }
        self.counters.merge(&other.counters);
        self
    }

    /// Turns a complete union of parts into the final analysis.
    ///
    /// `trace_name`, `clock` and `registry` come from the archive header
    /// (e.g. an [`ArchiveCursor`]); `config` must be the config the
    /// parts were built with. The part must cover *every* rank of the
    /// trace, exactly once.
    ///
    /// Computes the global [`ProfileTable`] and dominant ranking from
    /// the per-rank rows, verifies the speculation target shared by the
    /// parts, and either assembles the [`OutOfCoreAnalysis`]
    /// ([`PartOutcome::Done`]) or returns the part with the true
    /// function ([`PartOutcome::Mispredicted`]).
    ///
    /// # Panics
    ///
    /// If the covered ranks are not exactly `0..registry.num_processes()`.
    pub fn finalize(
        self,
        trace_name: &str,
        clock: Clock,
        registry: &Registry,
        config: &AnalysisConfig,
    ) -> Result<PartOutcome, PathAnalysisError> {
        let np = registry.num_processes();
        assert_eq!(
            self.ranks.len(),
            np,
            "finalize needs all {np} ranks; this part covers {}",
            self.ranks.len()
        );
        assert!(
            self.ranks.keys().copied().eq(0..np),
            "finalize needs ranks 0..{np} exactly once"
        );
        let nf = registry.num_functions();
        let modes = metric_modes(registry, config.analyze_counters);
        if let Some(shape) = &self.shape {
            assert_eq!(
                (shape.num_functions, shape.num_metrics),
                (nf, modes.len()),
                "part shape disagrees with the registry/config it is finalized against"
            );
        }

        // Global profiles and ranking from the still-per-rank rows (the
        // BTreeMap iterates in rank order, whatever the merge order was).
        let profiles = ProfileTable::from_rows(nf, self.ranks.values().map(|r| r.rows.clone()));
        let ranking =
            DominantRanking::with_multiplier_for(np, &profiles, config.dominant_multiplier);
        let dominant = ranking.selection();
        let function = segmentation_function(registry, &dominant, config)?;
        if self.shape.is_some_and(|s| s.target != function) {
            return Ok(PartOutcome::Mispredicted {
                expected: function,
                part: self,
            });
        }

        let mut extent = Extent::default();
        let mut failures = Vec::new();
        let mut fused_partials = Vec::with_capacity(np);
        for (index, rank) in self.ranks {
            extent.absorb(rank.num_events, rank.first, rank.last);
            fused_partials.push(rank.fused);
            if let Some(error) = rank.failure {
                failures.push(StreamFailure {
                    process: ProcessId::from_index(index),
                    error,
                });
            }
        }
        let fused = merge_fused(registry, function, &modes, fused_partials);
        let meta = extent.meta(trace_name.to_string(), clock, registry.clone());
        let analysis = assemble(
            meta.name.clone(),
            config,
            dominant,
            function,
            profiles,
            fused.segmentation,
            fused.counters,
        );
        Ok(PartOutcome::Done(Box::new(OutOfCoreAnalysis {
            analysis,
            meta,
            failures,
            passes: 1,
        })))
    }

    /// An empty part pinned to a shape (drivers start from this and add
    /// ranks).
    pub(crate) fn for_shape(
        num_functions: usize,
        num_metrics: usize,
        target: FunctionId,
    ) -> AnalysisPart {
        AnalysisPart {
            shape: Some(Shape {
                num_functions,
                num_metrics,
                target,
            }),
            ranks: BTreeMap::new(),
            counters: Counters::default(),
        }
    }

    /// Adds one successfully streamed rank.
    pub(crate) fn add_rank(&mut self, index: usize, rank: RankCombined) {
        self.counters.events_replayed += rank.num_events;
        self.counters.bytes_decoded += rank.bytes;
        self.counters.segments_emitted += rank.fused.0.len() as u64;
        self.counters.sos_clamped += rank.sos_clamped;
        let clash = self.ranks.insert(
            index,
            RankPart {
                rows: rank.rows,
                fused: rank.fused,
                num_events: rank.num_events,
                first: rank.first,
                last: rank.last,
                failure: None,
            },
        );
        assert!(clash.is_none(), "rank {index} added twice");
    }

    /// Adds one unreadable rank: it contributes exactly what an empty
    /// stream would, plus the failure record.
    pub(crate) fn add_failed_rank(&mut self, index: usize, error: TraceError) {
        let shape = self.shape.expect("failed ranks need a shaped part");
        self.counters.recovery_events += 1;
        let clash = self.ranks.insert(
            index,
            RankPart {
                rows: vec![ProfileRow::default(); shape.num_functions],
                fused: empty_fused(shape.num_metrics),
                num_events: 0,
                first: None,
                last: None,
                failure: Some(error),
            },
        );
        assert!(clash.is_none(), "rank {index} added twice");
    }

    /// Whether `index` is covered by a failure record.
    pub(crate) fn rank_failed(&self, index: usize) -> bool {
        self.ranks
            .get(&index)
            .is_some_and(|rank| rank.failure.is_some())
    }

    /// Replaces a rank's fused partial (the misprediction re-pass keeps
    /// the profile rows and extent of the combined pass). Counter totals
    /// are cumulative across passes, like the telemetry layer's.
    pub(crate) fn set_fused(&mut self, index: usize, fused: FusedPartial) {
        let rank = self.ranks.get_mut(&index).expect("rank exists");
        self.counters.segments_emitted += fused.0.len() as u64;
        rank.fused = fused;
    }

    /// Degrades a rank whose *re-pass* failed (the file changed between
    /// passes): empty fused contribution, failure recorded, but the
    /// combined pass's profile rows and extent stay — exactly what the
    /// fused-only re-pass semantics have always been.
    pub(crate) fn fail_rank_fused_only(&mut self, index: usize, error: TraceError, metrics: usize) {
        let rank = self.ranks.get_mut(&index).expect("rank exists");
        self.counters.recovery_events += 1;
        rank.fused = empty_fused(metrics);
        rank.failure = Some(error);
    }

    /// Re-pins the speculation target after a mispredict re-pass, so the
    /// next [`finalize`](AnalysisPart::finalize) verifies against the
    /// function the fused partials now actually describe.
    pub(crate) fn retarget(&mut self, target: FunctionId) {
        if let Some(shape) = &mut self.shape {
            shape.target = target;
        }
    }

    /// Adds whole-pass byte counts that are not attributable to a single
    /// rank (the sequential PVT reader measures the file once).
    pub(crate) fn count_bytes(&mut self, bytes: u64) {
        self.counters.bytes_decoded += bytes;
    }
}

/// Analyses a subset of an archive's ranks into an [`AnalysisPart`].
///
/// This is the shard worker's entry point: each worker streams only the
/// ranks it was given (one combined profile+fused pass per rank, work-
/// stolen across [`AnalysisConfig::threads`]) and the coordinator
/// [`merge`](AnalysisPart::merge)s the parts. The speculation target is
/// resolved *locally but deterministically* — from the explicit
/// [`AnalysisConfig::segment_function`] override when present, else from
/// the same bounded rank-0 prefix every other shard reads — so parts of
/// the same archive and config always share a shape.
///
/// In [`RecoveryMode::Strict`] the first unreadable rank aborts; in
/// [`RecoveryMode::Partial`] it is recorded in the part and contributes
/// like an empty stream.
///
/// # Panics
///
/// If `ranks` names an index outside `0..num_processes` or repeats one.
pub fn archive_part(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    ranks: impl IntoIterator<Item = usize>,
) -> Result<AnalysisPart, PathAnalysisError> {
    archive_part_observed(path, config, mode, ranks, &Telemetry::noop())
}

/// Like [`archive_part`] but recording telemetry (see
/// [`crate::telemetry`]); with [`Telemetry::noop`] this *is*
/// [`archive_part`].
pub fn archive_part_observed(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    ranks: impl IntoIterator<Item = usize>,
    telemetry: &Telemetry,
) -> Result<AnalysisPart, PathAnalysisError> {
    let path = path.as_ref();
    let cursor = ArchiveCursor::open_with(path, cursor_options(config))?;
    telemetry.set_read_buffer(config.read_buffer_bytes as u64);
    let registry = cursor.registry();
    let np = cursor.num_processes();
    let nf = registry.num_functions();
    let modes = metric_modes(registry, config.analyze_counters);
    let rank_list: Vec<usize> = ranks.into_iter().collect();
    for &rank in &rank_list {
        assert!(
            rank < np,
            "rank {rank} out of range for an archive with {np} ranks"
        );
    }

    let guess = {
        let _span = telemetry.span(Stage::Profile);
        speculation_target(registry, config, || {
            predict_archive_function(&cursor, config, telemetry)
        })?
    };

    telemetry.begin_ranks(Stage::Fuse, rank_list.len());
    let combined = {
        let _span = telemetry.span(Stage::Fuse);
        par_map_ranks(rank_list.len(), config.threads, |slot| {
            let pid = ProcessId::from_index(rank_list[slot.index()]);
            combined_rank(&cursor, pid, nf, guess, &modes, telemetry)
        })
    };

    let mut part = AnalysisPart::for_shape(nf, modes.len(), guess);
    for (slot, result) in combined.into_iter().enumerate() {
        let index = rank_list[slot];
        match result {
            Ok(rank) => part.add_rank(index, rank),
            Err(error) => {
                if mode == RecoveryMode::Strict {
                    return Err(error.into());
                }
                telemetry.count_recovery(1);
                part.add_failed_rank(index, error);
            }
        }
    }
    Ok(part)
}

/// [`analyze_path`](crate::outofcore::analyze_path) through the shard
/// pipeline: splits an archive's ranks into `shards` contiguous shard
/// workers, each producing an [`AnalysisPart`] on its own thread, merges
/// the parts, and finalizes — bit-identical to the single-process result
/// by the merge laws (property-tested in `tests/properties.rs`).
///
/// Non-archive inputs (a single sequential file cannot be sharded) and
/// `shards <= 1` fall through to the plain out-of-core driver. A
/// mispredicted speculation costs one full sharded re-pass with the true
/// function pinned, exactly mirroring the single-process fallback
/// ([`OutOfCoreAnalysis::passes`] reports `2`).
pub fn analyze_path_sharded(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    shards: usize,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    analyze_path_sharded_observed(path, config, mode, shards, &Telemetry::noop())
}

/// Like [`analyze_path_sharded`] but recording telemetry; shard workers
/// feed the same counters a single-process run would.
pub fn analyze_path_sharded_observed(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    shards: usize,
    telemetry: &Telemetry,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    let path = path.as_ref();
    if shards <= 1 || Format::from_path(path) != Format::Archive {
        return crate::outofcore::analyze_path_observed(path, config, mode, telemetry);
    }
    let (name, clock, registry, np) = {
        let cursor = ArchiveCursor::open_with(path, cursor_options(config))?;
        (
            cursor.name().to_string(),
            cursor.clock(),
            cursor.registry().clone(),
            cursor.num_processes(),
        )
    };
    if np <= 1 {
        return crate::outofcore::analyze_path_observed(path, config, mode, telemetry);
    }

    let shards = shards.min(np);
    let part = run_shards(path, config, mode, np, shards, telemetry)?;
    let mut passes = 1;
    let outcome = {
        let _span = telemetry.span(Stage::Assemble);
        part.finalize(&name, clock, &registry, config)?
    };
    let mut ooc = match outcome {
        PartOutcome::Done(done) => *done,
        PartOutcome::Mispredicted { expected, .. } => {
            // Re-shard with the true function pinned; the override path
            // of `speculation_target` cannot mispredict.
            passes = 2;
            let pinned = AnalysisConfig {
                segment_function: Some(registry.function_name(expected).to_string()),
                ..config.clone()
            };
            let part = run_shards(path, &pinned, mode, np, shards, telemetry)?;
            let _span = telemetry.span(Stage::Assemble);
            match part.finalize(&name, clock, &registry, &pinned)? {
                PartOutcome::Done(done) => *done,
                PartOutcome::Mispredicted { .. } => {
                    unreachable!("an explicit override cannot mispredict")
                }
            }
        }
    };
    ooc.passes = passes;
    Ok(ooc)
}

/// Fans `np` ranks out over `shards` contiguous shard workers (one
/// thread each, mirroring what worker *processes* would do) and merges
/// their parts.
fn run_shards(
    path: &Path,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    np: usize,
    shards: usize,
    telemetry: &Telemetry,
) -> Result<AnalysisPart, PathAnalysisError> {
    let per = np.div_ceil(shards);
    let results: Vec<Result<AnalysisPart, PathAnalysisError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                let lo = s * per;
                let hi = ((s + 1) * per).min(np);
                scope.spawn(move || archive_part_observed(path, config, mode, lo..hi, telemetry))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    let mut part = AnalysisPart::empty();
    for result in results {
        part = part.merge(result?);
    }
    Ok(part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outofcore::analyze_path_with;
    use perfvar_trace::format::{archive, write_trace_file};
    use perfvar_trace::{FunctionRole, MetricMode as Mode, Trace, TraceBuilder};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfvar-part-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Multi-rank trace with nested calls, a sync function, and metric
    /// channels of every mode — the same shape the out-of-core tests use.
    fn fixture(ranks: u64) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("parts");
        let iter_f = b.define_function("iteration", FunctionRole::Compute);
        let inner_f = b.define_function("inner", FunctionRole::Compute);
        let mpi_f = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        let acc = b.define_metric("CYC", Mode::Accumulating, "cycles");
        let del = b.define_metric("EXC", Mode::Delta, "#");
        for pi in 0..ranks {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = 0u64;
            let mut cyc = 0u64;
            for k in 0..6u64 {
                let load = 100 + (pi * 13 + k * 7) % 40;
                w.enter(Timestamp(t), iter_f).unwrap();
                w.metric(Timestamp(t), acc, cyc).unwrap();
                w.enter(Timestamp(t + 5), inner_f).unwrap();
                w.metric(Timestamp(t + 9), del, k + 1).unwrap();
                w.leave(Timestamp(t + load / 2), inner_f).unwrap();
                t += load;
                cyc += load * 3;
                w.enter(Timestamp(t), mpi_f).unwrap();
                w.leave(Timestamp(t + 20), mpi_f).unwrap();
                t += 20;
                w.metric(Timestamp(t), acc, cyc).unwrap();
                w.leave(Timestamp(t), iter_f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    fn archive_of(name: &str, ranks: u64) -> std::path::PathBuf {
        let dir = tmp(name);
        write_trace_file(&fixture(ranks), &dir).unwrap();
        dir
    }

    fn done(outcome: PartOutcome) -> OutOfCoreAnalysis {
        match outcome {
            PartOutcome::Done(done) => *done,
            PartOutcome::Mispredicted { .. } => panic!("SPMD fixture must confirm speculation"),
        }
    }

    fn finalize_at(dir: &Path, part: AnalysisPart, config: &AnalysisConfig) -> OutOfCoreAnalysis {
        let cursor = ArchiveCursor::open(dir).unwrap();
        done(
            part.finalize(cursor.name(), cursor.clock(), cursor.registry(), config)
                .unwrap(),
        )
    }

    #[test]
    fn empty_part_is_a_two_sided_merge_identity() {
        let dir = archive_of("identity.pvta", 3);
        let config = AnalysisConfig::default();
        let build = || archive_part(&dir, &config, RecoveryMode::Strict, 0..3).unwrap();
        let plain = build();
        let left = AnalysisPart::empty().merge(build());
        let right = build().merge(AnalysisPart::empty());
        assert_eq!(left.counters(), plain.counters());
        assert_eq!(right.counters(), plain.counters());
        let reference = finalize_at(&dir, plain, &config);
        assert_eq!(
            finalize_at(&dir, left, &config).analysis,
            reference.analysis
        );
        assert_eq!(
            finalize_at(&dir, right, &config).analysis,
            reference.analysis
        );
        assert!(AnalysisPart::empty().is_empty());
        assert_eq!(
            AnalysisPart::empty()
                .merge(AnalysisPart::empty())
                .num_ranks(),
            0
        );
    }

    #[test]
    fn single_rank_parts_merge_to_the_full_analysis() {
        let dir = archive_of("singles.pvta", 4);
        let config = AnalysisConfig::default();
        let mut merged = AnalysisPart::empty();
        // Deliberately out of order: 2, 0, 3, 1.
        for rank in [2usize, 0, 3, 1] {
            let single = archive_part(&dir, &config, RecoveryMode::Strict, [rank]).unwrap();
            assert_eq!(single.num_ranks(), 1);
            assert_eq!(single.rank_indices().collect::<Vec<_>>(), vec![rank]);
            merged = merged.merge(single);
        }
        let sharded = finalize_at(&dir, merged, &config);
        let reference = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
        assert_eq!(sharded.analysis, reference.analysis);
        assert_eq!(sharded.meta, reference.meta);
    }

    #[test]
    fn partial_recovery_part_merges_with_intact_shards() {
        let dir = archive_of("recovery.pvta", 4);
        // Truncate rank 1's stream: the shard holding it must degrade in
        // Partial mode while the other shard stays intact.
        let stream1 = dir.join(archive::stream_file(1));
        let bytes = std::fs::read(&stream1).unwrap();
        std::fs::write(&stream1, &bytes[..bytes.len() - 7]).unwrap();

        let config = AnalysisConfig::default();
        let damaged = archive_part(&dir, &config, RecoveryMode::Partial, 0..2).unwrap();
        assert!(damaged.rank_failed(1));
        assert!(!damaged.rank_failed(0));
        assert_eq!(damaged.counters().recovery_events, 1);
        let intact = archive_part(&dir, &config, RecoveryMode::Strict, 2..4).unwrap();
        let sharded = finalize_at(&dir, damaged.merge(intact), &config);

        let reference = analyze_path_with(&dir, &config, RecoveryMode::Partial).unwrap();
        assert!(reference.is_partial());
        assert_eq!(sharded.analysis, reference.analysis);
        assert_eq!(sharded.meta, reference.meta);
        assert_eq!(sharded.failures.len(), 1);
        assert_eq!(sharded.failures[0].process, reference.failures[0].process);
        assert_eq!(
            sharded.failures[0].error.to_string(),
            reference.failures[0].error.to_string()
        );
    }

    #[test]
    fn counters_sum_across_shards() {
        let dir = archive_of("counters.pvta", 4);
        let config = AnalysisConfig::default();
        let shard = |ranks: std::ops::Range<usize>| {
            archive_part(&dir, &config, RecoveryMode::Strict, ranks).unwrap()
        };
        let whole = shard(0..4);
        assert!(whole.counters().events_replayed > 0);
        assert!(whole.counters().bytes_decoded > 0);
        assert!(whole.counters().segments_emitted > 0);
        let mut summed = Counters::default();
        let mut merged = AnalysisPart::empty();
        for piece in [shard(0..1), shard(1..3), shard(3..4)] {
            summed.merge(piece.counters());
            merged = merged.merge(piece);
        }
        assert_eq!(&summed, whole.counters());
        assert_eq!(merged.counters(), whole.counters());
    }

    #[test]
    fn sharded_driver_matches_and_reports_shard_telemetry() {
        let dir = archive_of("driver.pvta", 4);
        let config = AnalysisConfig::default();
        let telemetry = Telemetry::enabled();
        let sharded =
            analyze_path_sharded_observed(&dir, &config, RecoveryMode::Strict, 2, &telemetry)
                .unwrap();
        let reference = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
        assert_eq!(sharded.analysis, reference.analysis);
        assert_eq!(sharded.meta, reference.meta);
        assert_eq!(sharded.passes, 1);
        // The shard workers feed the shared sink exactly like the
        // single-process driver does — except that every shard reads the
        // rank-0 prediction prefix, so replayed events can only grow.
        let observed = Telemetry::enabled();
        crate::outofcore::analyze_path_observed(&dir, &config, RecoveryMode::Strict, &observed)
            .unwrap();
        let a = telemetry.snapshot().unwrap();
        let b = observed.snapshot().unwrap();
        assert_eq!(a.totals.segments_emitted, b.totals.segments_emitted);
        assert!(a.totals.events_replayed >= b.totals.events_replayed);
        assert_eq!(a.totals.recovery_events, 0);
    }

    #[test]
    #[should_panic(expected = "disjoint rank sets")]
    fn overlapping_parts_refuse_to_merge() {
        let dir = archive_of("overlap.pvta", 3);
        let config = AnalysisConfig::default();
        let a = archive_part(&dir, &config, RecoveryMode::Strict, 0..2).unwrap();
        let b = archive_part(&dir, &config, RecoveryMode::Strict, 1..3).unwrap();
        let _ = a.merge(b);
    }

    #[test]
    #[should_panic(expected = "speculation target")]
    fn mismatched_shapes_refuse_to_merge() {
        let dir = archive_of("shapes.pvta", 3);
        let config = AnalysisConfig::default();
        let pinned = AnalysisConfig {
            segment_function: Some("inner".into()),
            ..AnalysisConfig::default()
        };
        let a = archive_part(&dir, &config, RecoveryMode::Strict, 0..2).unwrap();
        let b = archive_part(&dir, &pinned, RecoveryMode::Strict, 2..3).unwrap();
        let _ = a.merge(b);
    }
}
