//! Time-dominant function identification (§IV of the paper).
//!
//! > *For `p` processing elements, `f` is invoked at least `2p` times and
//! > there exists no other function that satisfies this condition and has
//! > higher aggregated inclusive time.*
//!
//! The invocation-count threshold excludes top-call-level functions like
//! `main` (which have exactly `p` invocations and cannot segment the
//! run). [`DominantRanking`] also keeps the full ordered candidate list:
//! the paper's case study B refines the analysis by "choosing a function
//! with a smaller inclusive time" to get finer segments, which is exactly
//! a step down this ranking.

use crate::profile::ProfileTable;
use perfvar_trace::{DurationTicks, FunctionId, Trace};
use serde::{Deserialize, Serialize};

/// Why a function was (not) selected — for reporting.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionOutcome {
    /// The function is the time-dominant function.
    Dominant,
    /// Candidate: passes the invocation-count rule but another candidate
    /// has higher aggregated inclusive time.
    Candidate {
        /// Position in the ranking (0 = dominant).
        rank: usize,
    },
    /// Rejected: invoked fewer than `multiplier × p` times.
    TooFewInvocations {
        /// Actual invocation count.
        count: u64,
        /// The threshold it failed.
        required: u64,
    },
    /// Rejected: never invoked.
    NeverInvoked,
}

/// The result of dominant-function selection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DominantSelection {
    /// The selected function, if any candidate passed the rule.
    pub function: Option<FunctionId>,
    /// The threshold used (`multiplier × p`).
    pub required_invocations: u64,
    /// All candidates in ranking order (highest aggregated inclusive
    /// first). `function == candidates.first()`.
    pub candidates: Vec<FunctionId>,
}

/// Dominant-function ranking over a trace, supporting refinement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DominantRanking {
    required_invocations: u64,
    /// `(function, aggregated inclusive, invocation count)` in the
    /// deterministic dominant order: inclusive time descending, then
    /// invocation count descending, then function id ascending. The
    /// count tie-break prefers the *finer* function (more invocations →
    /// more segments), and the id tie-break pins ties completely so
    /// every pipeline variant and thread count selects the same
    /// function.
    ranking: Vec<(FunctionId, DurationTicks, u64)>,
}

impl DominantRanking {
    /// Builds the ranking using the paper's threshold multiplier of 2.
    pub fn new(trace: &Trace, profiles: &ProfileTable) -> DominantRanking {
        DominantRanking::with_multiplier(trace, profiles, 2)
    }

    /// Builds the ranking with a custom invocation-count multiplier
    /// (`required = multiplier × p`). The paper uses 2; higher values
    /// force finer segmentation.
    pub fn with_multiplier(
        trace: &Trace,
        profiles: &ProfileTable,
        multiplier: u64,
    ) -> DominantRanking {
        DominantRanking::with_multiplier_for(trace.num_processes(), profiles, multiplier)
    }

    /// Like [`with_multiplier`](DominantRanking::with_multiplier) but
    /// taking the process count directly — the selection depends on the
    /// trace only through `p`, so out-of-core callers that never hold a
    /// [`Trace`] rank with this.
    pub fn with_multiplier_for(
        num_processes: usize,
        profiles: &ProfileTable,
        multiplier: u64,
    ) -> DominantRanking {
        let p = num_processes as u64;
        let required = multiplier * p;
        let mut ranking: Vec<(FunctionId, DurationTicks, u64)> = profiles
            .iter()
            .filter(|(_, prof)| prof.count >= required && prof.count > 0)
            .map(|(f, prof)| (f, prof.inclusive, prof.count))
            .collect();
        // Deterministic tie-break: time, then invocation count, then id.
        // Aggregated sums are independent of worker scheduling, so the
        // order — and therefore the dominant function — is identical for
        // `analyze`, `analyze_reference` and `analyze_path` at any
        // thread count.
        ranking.sort_by_key(|(f, incl, count)| {
            (std::cmp::Reverse(*incl), std::cmp::Reverse(*count), f.0)
        });
        DominantRanking {
            required_invocations: required,
            ranking,
        }
    }

    /// The time-dominant function (rank 0), if any function qualifies.
    pub fn dominant(&self) -> Option<FunctionId> {
        self.ranking.first().map(|(f, ..)| *f)
    }

    /// The invocation-count threshold in force.
    pub fn required_invocations(&self) -> u64 {
        self.required_invocations
    }

    /// All qualifying candidates, highest aggregated inclusive first.
    pub fn candidates(&self) -> impl ExactSizeIterator<Item = FunctionId> + '_ {
        self.ranking.iter().map(|(f, ..)| *f)
    }

    /// The aggregated inclusive time of a candidate, if it qualifies.
    pub fn inclusive_of(&self, function: FunctionId) -> Option<DurationTicks> {
        self.ranking
            .iter()
            .find(|(f, ..)| *f == function)
            .map(|(_, d, _)| *d)
    }

    /// Refinement (§VII-B): the next candidate **after** `current` in the
    /// ranking — a qualifying function with smaller aggregated inclusive
    /// time, giving finer segments. Returns `None` if `current` is not a
    /// candidate or is already the finest.
    pub fn refine(&self, current: FunctionId) -> Option<FunctionId> {
        let pos = self.ranking.iter().position(|(f, ..)| *f == current)?;
        self.ranking.get(pos + 1).map(|(f, ..)| *f)
    }

    /// Summarises the selection (for reports and the CLI).
    pub fn selection(&self) -> DominantSelection {
        DominantSelection {
            function: self.dominant(),
            required_invocations: self.required_invocations,
            candidates: self.candidates().collect(),
        }
    }

    /// Explains the outcome for one function.
    pub fn explain(&self, function: FunctionId, profiles: &ProfileTable) -> SelectionOutcome {
        if let Some(pos) = self.ranking.iter().position(|(f, ..)| *f == function) {
            return if pos == 0 {
                SelectionOutcome::Dominant
            } else {
                SelectionOutcome::Candidate { rank: pos }
            };
        }
        let count = profiles.get(function).count;
        if count == 0 {
            SelectionOutcome::NeverInvoked
        } else {
            SelectionOutcome::TooFewInvocations {
                count,
                required: self.required_invocations,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use crate::profile::tests::fig2_trace;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};

    fn ranking_of(trace: &Trace) -> (DominantRanking, ProfileTable) {
        let profiles = ProfileTable::from_invocations(trace, &replay_all(trace));
        (DominantRanking::new(trace, &profiles), profiles)
    }

    /// The paper's Fig. 2: `main` has the highest aggregated inclusive
    /// time (54) but only `p = 3` invocations; `a` (36 ticks, 9 calls) is
    /// the dominant function.
    #[test]
    fn fig2_dominant_function_is_a() {
        let trace = fig2_trace();
        let (ranking, profiles) = ranking_of(&trace);
        let reg = trace.registry();
        let a = reg.function_by_name("a").unwrap();
        let main_f = reg.function_by_name("main").unwrap();
        assert_eq!(ranking.dominant(), Some(a));
        assert_eq!(ranking.required_invocations(), 6);
        assert_eq!(
            ranking.explain(main_f, &profiles),
            SelectionOutcome::TooFewInvocations {
                count: 3,
                required: 6
            }
        );
        assert_eq!(ranking.explain(a, &profiles), SelectionOutcome::Dominant);
    }

    #[test]
    fn fig2_refinement_steps_down_the_ranking() {
        let trace = fig2_trace();
        let (ranking, _) = ranking_of(&trace);
        let reg = trace.registry();
        let a = reg.function_by_name("a").unwrap();
        let b = reg.function_by_name("b").unwrap();
        let c = reg.function_by_name("c").unwrap();
        // b: 5 invocations × 3 procs, inclusive 3+3+1+1+... per process:
        // inside-a b's are 1 tick ×3, between-a b's are 2 ticks ×2 → 7/proc = 21.
        // c: 3 × 1 tick per process → 9.
        assert_eq!(ranking.refine(a), Some(b));
        assert_eq!(ranking.refine(b), Some(c));
        assert_eq!(ranking.refine(c), None);
        // Refining a non-candidate yields None.
        let main_f = reg.function_by_name("main").unwrap();
        assert_eq!(ranking.refine(main_f), None);
    }

    #[test]
    fn i_fails_invocation_rule() {
        // `i` is invoked once per process (3 < 6).
        let trace = fig2_trace();
        let (ranking, profiles) = ranking_of(&trace);
        let i = trace.registry().function_by_name("i").unwrap();
        assert!(matches!(
            ranking.explain(i, &profiles),
            SelectionOutcome::TooFewInvocations { count: 3, .. }
        ));
        assert!(!ranking.candidates().any(|f| f == i));
    }

    #[test]
    fn multiplier_one_admits_main() {
        let trace = fig2_trace();
        let profiles = ProfileTable::from_invocations(&trace, &replay_all(&trace));
        let ranking = DominantRanking::with_multiplier(&trace, &profiles, 1);
        let main_f = trace.registry().function_by_name("main").unwrap();
        // With multiplier 1 the threshold is p = 3 and main qualifies —
        // and wins on aggregated inclusive time. This is exactly why the
        // paper uses 2p.
        assert_eq!(ranking.dominant(), Some(main_f));
    }

    #[test]
    fn empty_trace_has_no_dominant() {
        let trace = TraceBuilder::new(Clock::microseconds()).finish().unwrap();
        let (ranking, _) = ranking_of(&trace);
        assert_eq!(ranking.dominant(), None);
        assert!(ranking.selection().function.is_none());
    }

    #[test]
    fn never_invoked_explained() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("ghost", FunctionRole::Compute);
        b.define_process("p0");
        let trace = b.finish().unwrap();
        let (ranking, profiles) = ranking_of(&trace);
        assert_eq!(
            ranking.explain(f, &profiles),
            SelectionOutcome::NeverInvoked
        );
    }

    #[test]
    fn ties_break_deterministically_by_id() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f1 = b.define_function("f1", FunctionRole::Compute);
        let f2 = b.define_function("f2", FunctionRole::Compute);
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        // Both functions: 2 invocations, 5 ticks inclusive each.
        for (f, base) in [(f1, 0u64), (f2, 10), (f1, 20), (f2, 30)] {
            w.enter(Timestamp(base), f).unwrap();
            w.leave(Timestamp(base + 5), f).unwrap();
        }
        let trace = b.finish().unwrap();
        let (ranking, _) = ranking_of(&trace);
        assert_eq!(ranking.dominant(), Some(f1));
        assert_eq!(ranking.refine(f1), Some(f2));
    }

    /// Regression: equal aggregated inclusive time must fall back to the
    /// invocation count (descending) *before* the id, so the finer
    /// function wins. Previously the sort jumped straight from time to
    /// id and `f2` here would lose despite segmenting the run better.
    #[test]
    fn ties_on_time_break_by_invocation_count() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f1 = b.define_function("coarse", FunctionRole::Compute);
        let f2 = b.define_function("fine", FunctionRole::Compute);
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        // f1: 2 invocations × 5 ticks; f2: 5 invocations × 2 ticks.
        // Both aggregate to 10 ticks inclusive, but f2 is invoked more.
        for base in [0u64, 10] {
            w.enter(Timestamp(base), f1).unwrap();
            w.leave(Timestamp(base + 5), f1).unwrap();
        }
        for base in [20u64, 30, 40, 50, 60] {
            w.enter(Timestamp(base), f2).unwrap();
            w.leave(Timestamp(base + 2), f2).unwrap();
        }
        let trace = b.finish().unwrap();
        let (ranking, _) = ranking_of(&trace);
        assert_eq!(ranking.inclusive_of(f1), ranking.inclusive_of(f2));
        assert_eq!(ranking.dominant(), Some(f2), "higher count must win ties");
        assert_eq!(ranking.refine(f2), Some(f1));
    }

    mod properties {
        use super::*;
        use crate::profile::ProfileRow;
        use proptest::prelude::*;

        /// A per-process partial with small values so aggregated sums
        /// collide often — ties are the interesting case here.
        fn rows(num_functions: usize) -> impl Strategy<Value = Vec<ProfileRow>> {
            proptest::collection::vec(
                (0u64..4, 0u64..6).prop_map(|(count, inclusive)| ProfileRow {
                    count,
                    inclusive: count.min(1) * inclusive,
                    exclusive: 0,
                }),
                num_functions..num_functions + 1,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The candidate ranking is strictly ordered by
            /// `(inclusive ↓, count ↓, id ↑)` — no two adjacent entries
            /// compare equal, so the dominant function is a pure
            /// function of the aggregated profile, independent of
            /// worker scheduling or which pipeline produced it.
            #[test]
            fn ranking_is_strictly_ordered(
                partials in proptest::collection::vec(rows(6), 1..4),
                multiplier in 0u64..3,
            ) {
                let num_processes = partials.len();
                let profiles = ProfileTable::from_rows(6, partials);
                let ranking = DominantRanking::with_multiplier_for(
                    num_processes,
                    &profiles,
                    multiplier,
                );
                let keys: Vec<_> = ranking
                    .candidates()
                    .map(|f| {
                        let prof = profiles.get(f);
                        (
                            std::cmp::Reverse(prof.inclusive),
                            std::cmp::Reverse(prof.count),
                            f.0,
                        )
                    })
                    .collect();
                for pair in keys.windows(2) {
                    prop_assert!(pair[0] < pair[1], "ranking not strict: {pair:?}");
                }
            }
        }
    }

    #[test]
    fn inclusive_of_reports_candidates_only() {
        let trace = fig2_trace();
        let (ranking, _) = ranking_of(&trace);
        let reg = trace.registry();
        let a = reg.function_by_name("a").unwrap();
        let main_f = reg.function_by_name("main").unwrap();
        assert_eq!(ranking.inclusive_of(a), Some(DurationTicks(36)));
        assert_eq!(ranking.inclusive_of(main_f), None);
    }
}
