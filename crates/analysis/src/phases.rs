//! Phase detection: behavioural regimes over segment ordinals.
//!
//! The paper stresses that timestamped traces "can also efficiently
//! highlight behavior that changes over time". The trend fit
//! ([`Trend`](crate::imbalance::Trend)) captures *gradual* change; this
//! module detects *regime switches* — e.g. "iterations 0–39 averaged
//! 10 ms, iterations 40–79 averaged 25 ms" — via binary-segmentation
//! change-point detection on the per-ordinal mean duration (or SOS)
//! series, with an SSE-gain acceptance test.

use crate::sos::SosMatrix;
use serde::{Deserialize, Serialize};

/// Phase-detection parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PhaseConfig {
    /// Minimum number of segments per phase.
    pub min_length: usize,
    /// A split must reduce the sum of squared errors by at least this
    /// fraction of the parent interval's SSE.
    pub min_gain: f64,
    /// The means of adjacent phases must differ by at least this
    /// fraction of the overall mean (filters statistically significant
    /// but practically irrelevant splits).
    pub min_shift: f64,
}

impl Default for PhaseConfig {
    fn default() -> PhaseConfig {
        PhaseConfig {
            min_length: 3,
            min_gain: 0.3,
            min_shift: 0.15,
        }
    }
}

/// One detected phase: the half-open ordinal range `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// First ordinal of the phase.
    pub start: usize,
    /// One past the last ordinal.
    pub end: usize,
    /// Mean series value within the phase.
    pub mean: f64,
}

impl Phase {
    /// Number of ordinals covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the phase covers no ordinals.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The detected phase structure of a series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseDetection {
    /// Phases in ordinal order; contiguous and covering the full series.
    pub phases: Vec<Phase>,
}

impl PhaseDetection {
    /// Detects phases in `series` with `config`.
    pub fn detect(series: &[f64], config: PhaseConfig) -> PhaseDetection {
        let n = series.len();
        if n == 0 {
            return PhaseDetection { phases: Vec::new() };
        }
        // Prefix sums for O(1) interval SSE.
        let mut sum = vec![0.0f64; n + 1];
        let mut sumsq = vec![0.0f64; n + 1];
        for (i, &v) in series.iter().enumerate() {
            sum[i + 1] = sum[i] + v;
            sumsq[i + 1] = sumsq[i] + v * v;
        }
        let mean_of = |a: usize, b: usize| -> f64 { (sum[b] - sum[a]) / (b - a) as f64 };
        let sse_of = |a: usize, b: usize| -> f64 {
            let s = sum[b] - sum[a];
            let q = sumsq[b] - sumsq[a];
            (q - s * s / (b - a) as f64).max(0.0)
        };
        let overall_mean = mean_of(0, n).abs().max(f64::EPSILON);

        // Binary segmentation.
        let mut boundaries = vec![0usize, n];
        let mut work = vec![(0usize, n)];
        while let Some((a, b)) = work.pop() {
            if b - a < 2 * config.min_length {
                continue;
            }
            let parent_sse = sse_of(a, b);
            if parent_sse <= f64::EPSILON {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for split in (a + config.min_length)..=(b - config.min_length) {
                let child_sse = sse_of(a, split) + sse_of(split, b);
                let gain = parent_sse - child_sse;
                if best.is_none() || gain > best.unwrap().1 {
                    best = Some((split, gain));
                }
            }
            let Some((split, gain)) = best else { continue };
            let shift = (mean_of(a, split) - mean_of(split, b)).abs();
            if gain >= config.min_gain * parent_sse && shift >= config.min_shift * overall_mean {
                boundaries.push(split);
                work.push((a, split));
                work.push((split, b));
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        let phases = boundaries
            .windows(2)
            .map(|w| Phase {
                start: w[0],
                end: w[1],
                mean: mean_of(w[0], w[1]),
            })
            .collect();
        PhaseDetection { phases }
    }

    /// Detects phases in the per-ordinal mean *duration* series of a
    /// matrix (the natural "did the run change regime?" question).
    pub fn detect_durations(matrix: &SosMatrix, config: PhaseConfig) -> PhaseDetection {
        PhaseDetection::detect(&matrix.duration_by_ordinal(), config)
    }

    /// Number of phases.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the series was empty.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Boundaries between phases (first ordinal of each phase after the
    /// initial one).
    pub fn boundaries(&self) -> Vec<usize> {
        self.phases.iter().skip(1).map(|p| p.start).collect()
    }

    /// The phase containing `ordinal`, if in range.
    pub fn phase_of(&self, ordinal: usize) -> Option<&Phase> {
        self.phases
            .iter()
            .find(|p| p.start <= ordinal && ordinal < p.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_series(levels: &[(usize, f64)]) -> Vec<f64> {
        levels
            .iter()
            .flat_map(|&(n, v)| std::iter::repeat_n(v, n))
            .collect()
    }

    #[test]
    fn flat_series_is_one_phase() {
        let d = PhaseDetection::detect(&step_series(&[(30, 100.0)]), PhaseConfig::default());
        assert_eq!(d.len(), 1);
        assert_eq!(
            d.phases[0],
            Phase {
                start: 0,
                end: 30,
                mean: 100.0
            }
        );
        assert!(d.boundaries().is_empty());
    }

    #[test]
    fn single_step_found_exactly() {
        let series = step_series(&[(20, 100.0), (20, 300.0)]);
        let d = PhaseDetection::detect(&series, PhaseConfig::default());
        assert_eq!(d.len(), 2, "{:?}", d.phases);
        assert_eq!(d.boundaries(), vec![20]);
        assert!((d.phases[0].mean - 100.0).abs() < 1e-9);
        assert!((d.phases[1].mean - 300.0).abs() < 1e-9);
    }

    #[test]
    fn three_regimes_found() {
        let series = step_series(&[(15, 100.0), (15, 400.0), (15, 150.0)]);
        let d = PhaseDetection::detect(&series, PhaseConfig::default());
        assert_eq!(d.len(), 3, "{:?}", d.phases);
        assert_eq!(d.boundaries(), vec![15, 30]);
    }

    #[test]
    fn noise_alone_does_not_split() {
        // ±3 % noise around a constant: no phase boundary.
        let series: Vec<f64> = (0..40)
            .map(|i| 1000.0 + if i % 2 == 0 { 30.0 } else { -30.0 })
            .collect();
        let d = PhaseDetection::detect(&series, PhaseConfig::default());
        assert_eq!(d.len(), 1, "{:?}", d.phases);
    }

    #[test]
    fn small_shift_filtered_by_min_shift() {
        // A clean but tiny (5 %) step: statistically sharp, practically
        // irrelevant at the default 15 % shift threshold.
        let series = step_series(&[(20, 1000.0), (20, 1050.0)]);
        let d = PhaseDetection::detect(&series, PhaseConfig::default());
        assert_eq!(d.len(), 1);
        // Lowering the threshold finds it.
        let sensitive = PhaseDetection::detect(
            &series,
            PhaseConfig {
                min_shift: 0.01,
                ..PhaseConfig::default()
            },
        );
        assert_eq!(sensitive.len(), 2);
    }

    #[test]
    fn min_length_respected() {
        // A 2-ordinal blip cannot become its own phase at min_length 3.
        let series = step_series(&[(20, 100.0), (2, 500.0), (20, 100.0)]);
        let d = PhaseDetection::detect(&series, PhaseConfig::default());
        for p in &d.phases {
            assert!(p.len() >= 3, "{:?}", d.phases);
        }
    }

    #[test]
    fn phases_partition_the_series() {
        let series = step_series(&[(10, 1.0), (10, 9.0), (10, 4.0), (10, 20.0)]);
        let d = PhaseDetection::detect(&series, PhaseConfig::default());
        assert_eq!(d.phases.first().unwrap().start, 0);
        assert_eq!(d.phases.last().unwrap().end, series.len());
        for w in d.phases.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert!(d.phase_of(0).is_some());
        assert!(d.phase_of(series.len()).is_none());
    }

    #[test]
    fn empty_series() {
        let d = PhaseDetection::detect(&[], PhaseConfig::default());
        assert!(d.is_empty());
        assert_eq!(d.phase_of(0), None);
    }

    #[test]
    fn detect_on_matrix_durations() {
        use crate::invocation::replay_all;
        use crate::segment::Segmentation;
        use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};
        // Two processes, 12 iterations: the last 6 take 3× longer.
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for _ in 0..2 {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for k in 0..12 {
                let load = if k < 6 { 100 } else { 300 };
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace = b.finish().unwrap();
        let m = SosMatrix::from_segmentation(&Segmentation::new(&trace, &replay_all(&trace), f));
        let d = PhaseDetection::detect_durations(&m, PhaseConfig::default());
        assert_eq!(d.boundaries(), vec![6]);
    }
}
