//! Run-to-run comparison of SOS-time analyses.
//!
//! The paper's workflow ends with a fix ("introduce dynamic load
//! balancing for the SPECS model"); this module closes the loop by
//! comparing the analysis of two runs — before and after — the way the
//! authors' earlier alignment-based trace comparison (Weber et al.,
//! Euro-Par 2013, cited as related work) compares whole traces, but on
//! the SOS abstraction: per-process computational load, per-function
//! profile deltas, and a global imbalance index.
//!
//! The **imbalance index** is the classic load-imbalance percentage
//! `(max − mean) / max` over per-process total SOS-times: 0 for a
//! perfectly balanced run, → 1 when one process does all the work.
//!
//! For regression hunting the comparison carries a **noise-aware
//! verdict**: the change statistic is the *robust makespan* — the
//! maximum over processes of (median segment SOS × segment count) —
//! rather than the raw total, so a single outlier segment (an OS
//! interruption, one slow iteration) cannot flip the verdict, while a
//! persistent shift moves every segment and therefore the median. The
//! verdict classifies the relative change against a threshold; see
//! [`RunComparison::verdict`] and [`bisect_first_regression`] for the
//! O(log n) driver over an ordered run sequence.

use crate::profile::ProfileTable;
use crate::report::Analysis;
use crate::sos::SosMatrix;
use perfvar_trace::{FunctionId, ProcessId};
use serde::{Deserialize, Serialize};

/// Default relative-change threshold separating signal from noise:
/// changes within ±5 % of the baseline robust makespan are classified
/// as [`VerdictClass::Noise`].
pub const DEFAULT_NOISE_THRESHOLD: f64 = 0.05;

/// Summary of one run, as used by the comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Number of processes.
    pub processes: usize,
    /// Total SOS-time across all segments (overall computational load).
    pub total_sos: u64,
    /// Mean per-process total SOS.
    pub mean_process_sos: f64,
    /// Maximum per-process total SOS.
    pub max_process_sos: u64,
    /// `(max − mean) / max`, 0 = balanced.
    pub imbalance_index: f64,
    /// Max over processes of median segment SOS × segment count — the
    /// outlier-robust load of the slowest process, used by the verdict.
    #[serde(default)]
    pub robust_makespan: f64,
}

impl RunSummary {
    /// Summarises an SOS matrix.
    pub fn from_matrix(matrix: &SosMatrix) -> RunSummary {
        let totals = matrix.process_totals();
        let processes = totals.len();
        let total_sos: u64 = totals.iter().map(|d| d.0).sum();
        let max_process_sos = totals.iter().map(|d| d.0).max().unwrap_or(0);
        let mean_process_sos = if processes > 0 {
            total_sos as f64 / processes as f64
        } else {
            0.0
        };
        let imbalance_index = if max_process_sos > 0 {
            (max_process_sos as f64 - mean_process_sos) / max_process_sos as f64
        } else {
            0.0
        };
        let robust_makespan = (0..processes)
            .map(|i| {
                let row = matrix.process_sos(ProcessId::from_index(i));
                median_ticks(row.iter().map(|d| d.0)) * row.len() as f64
            })
            .fold(0.0_f64, f64::max);
        RunSummary {
            processes,
            total_sos,
            mean_process_sos,
            max_process_sos,
            imbalance_index,
            robust_makespan,
        }
    }
}

/// Median of a sequence of tick values (mean of the two middle samples
/// for even lengths; 0 for an empty sequence).
fn median_ticks(values: impl Iterator<Item = u64>) -> f64 {
    let mut sorted: Vec<u64> = values.collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_unstable();
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
    }
}

/// Per-process load change between two runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessDelta {
    /// The process (present in both runs).
    pub process: ProcessId,
    /// Total SOS in the baseline run.
    pub before: u64,
    /// Total SOS in the candidate run.
    pub after: u64,
}

impl ProcessDelta {
    /// Relative change `(after − before) / before`; ∞-safe (0 baseline →
    /// returns `after as f64`).
    pub fn relative_change(&self) -> f64 {
        if self.before == 0 {
            self.after as f64
        } else {
            (self.after as f64 - self.before as f64) / self.before as f64
        }
    }
}

/// One function's contribution to a run, as compared across runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionLoad {
    /// Invocation count across all processes.
    pub count: u64,
    /// Inclusive time (ticks).
    pub inclusive: u64,
    /// Exclusive time (ticks).
    pub exclusive: u64,
}

/// Per-function profile change between two runs, matched by *name* so
/// the runs may register functions in different orders. A function
/// absent from one run has an all-zero [`FunctionLoad`] on that side.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FunctionDelta {
    /// Function name (the match key across the two runs).
    pub name: String,
    /// Profile in the baseline run.
    pub before: FunctionLoad,
    /// Profile in the candidate run.
    pub after: FunctionLoad,
}

impl FunctionDelta {
    /// Relative change of exclusive time; ∞-safe (0 baseline → returns
    /// `after.exclusive as f64`).
    pub fn relative_change(&self) -> f64 {
        if self.before.exclusive == 0 {
            self.after.exclusive as f64
        } else {
            (self.after.exclusive as f64 - self.before.exclusive as f64)
                / self.before.exclusive as f64
        }
    }
}

/// How a candidate run relates to its baseline, given a noise threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerdictClass {
    /// Robust makespan grew by more than the threshold.
    Regression,
    /// Robust makespan shrank by more than the threshold.
    Improvement,
    /// Within the noise band.
    Noise,
}

impl std::fmt::Display for VerdictClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            VerdictClass::Regression => "regression",
            VerdictClass::Improvement => "improvement",
            VerdictClass::Noise => "noise",
        })
    }
}

/// The noise-aware classification of a comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// The classification.
    pub class: VerdictClass,
    /// Relative change of the robust makespan, `(after − before) / before`.
    pub relative_change: f64,
    /// The threshold the change was classified against.
    pub threshold: f64,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({:+.1}% robust makespan, threshold ±{:.0}%)",
            self.class,
            self.relative_change * 100.0,
            self.threshold * 100.0
        )
    }
}

/// The comparison of two analysed runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunComparison {
    /// Baseline run summary.
    pub before: RunSummary,
    /// Candidate run summary.
    pub after: RunSummary,
    /// Per-process deltas over the processes present in both runs.
    pub deltas: Vec<ProcessDelta>,
    /// Processes present only in the baseline run (the candidate shrank).
    #[serde(default)]
    pub unmatched_before: Vec<ProcessId>,
    /// Processes present only in the candidate run (the candidate grew).
    #[serde(default)]
    pub unmatched_after: Vec<ProcessId>,
    /// Per-function deltas, sorted by name. Empty when the comparison
    /// was built from bare SOS matrices (no profile available).
    #[serde(default)]
    pub functions: Vec<FunctionDelta>,
}

impl RunComparison {
    /// Compares two SOS matrices (typically the same workload before and
    /// after a fix). Process counts may differ; deltas cover the common
    /// prefix and the surplus ranks of the longer run are recorded in
    /// [`RunComparison::unmatched_before`] / `unmatched_after` rather
    /// than silently dropped.
    pub fn compare(before: &SosMatrix, after: &SosMatrix) -> RunComparison {
        let before_totals = before.process_totals();
        let after_totals = after.process_totals();
        let common = before_totals.len().min(after_totals.len());
        let deltas = (0..common)
            .map(|i| ProcessDelta {
                process: ProcessId::from_index(i),
                before: before_totals[i].0,
                after: after_totals[i].0,
            })
            .collect();
        let unmatched_before = (common..before_totals.len())
            .map(ProcessId::from_index)
            .collect();
        let unmatched_after = (common..after_totals.len())
            .map(ProcessId::from_index)
            .collect();
        RunComparison {
            before: RunSummary::from_matrix(before),
            after: RunSummary::from_matrix(after),
            deltas,
            unmatched_before,
            unmatched_after,
            functions: Vec::new(),
        }
    }

    /// Compares two full analyses: the SOS comparison of [`RunComparison::compare`]
    /// plus per-function profile deltas. `before_functions` /
    /// `after_functions` name the function ids of the respective runs
    /// (index = id); missing names fall back to `fn#<id>`.
    pub fn compare_analyses(
        before: &Analysis,
        before_functions: &[String],
        after: &Analysis,
        after_functions: &[String],
    ) -> RunComparison {
        let mut cmp = RunComparison::compare(&before.sos, &after.sos);
        cmp.functions = function_deltas(
            &before.profiles,
            before_functions,
            &after.profiles,
            after_functions,
        );
        cmp
    }

    /// Change in the imbalance index (negative = the candidate run is
    /// better balanced).
    pub fn imbalance_change(&self) -> f64 {
        self.after.imbalance_index - self.before.imbalance_index
    }

    /// Classifies the candidate against the baseline: relative change of
    /// the robust makespan beyond `threshold` is a regression (or an
    /// improvement when negative), anything within the band is noise.
    pub fn verdict(&self, threshold: f64) -> Verdict {
        let before = self.before.robust_makespan;
        let after = self.after.robust_makespan;
        let relative_change = (after - before) / before.max(1.0);
        let class = if relative_change > threshold {
            VerdictClass::Regression
        } else if relative_change < -threshold {
            VerdictClass::Improvement
        } else {
            VerdictClass::Noise
        };
        Verdict {
            class,
            relative_change,
            threshold,
        }
    }

    /// The processes whose load changed the most, by absolute relative
    /// change, descending.
    pub fn largest_changes(&self, n: usize) -> Vec<ProcessDelta> {
        let mut sorted = self.deltas.clone();
        sorted.sort_by(|a, b| {
            b.relative_change()
                .abs()
                .total_cmp(&a.relative_change().abs())
        });
        sorted.truncate(n);
        sorted
    }

    /// The functions whose exclusive time changed the most, by absolute
    /// relative change descending (name ascending on ties).
    pub fn largest_function_changes(&self, n: usize) -> Vec<FunctionDelta> {
        let mut sorted = self.functions.clone();
        sorted.sort_by(|a, b| {
            b.relative_change()
                .abs()
                .total_cmp(&a.relative_change().abs())
                .then_with(|| a.name.cmp(&b.name))
        });
        sorted.truncate(n);
        sorted
    }

    /// Human-readable comparison report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run comparison ({} vs {} processes)",
            self.before.processes, self.after.processes
        );
        let _ = writeln!(
            out,
            "  imbalance index: {:.3} → {:.3} ({:+.3})",
            self.before.imbalance_index,
            self.after.imbalance_index,
            self.imbalance_change()
        );
        let _ = writeln!(
            out,
            "  max/mean process load: {:.2}× → {:.2}×",
            self.before.max_process_sos as f64 / self.before.mean_process_sos.max(1.0),
            self.after.max_process_sos as f64 / self.after.mean_process_sos.max(1.0),
        );
        if !self.unmatched_before.is_empty() || !self.unmatched_after.is_empty() {
            let fmt = |ranks: &[ProcessId]| {
                ranks
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = writeln!(
                out,
                "  unmatched ranks: baseline-only [{}], candidate-only [{}]",
                fmt(&self.unmatched_before),
                fmt(&self.unmatched_after)
            );
        }
        let _ = writeln!(out, "  largest per-process changes:");
        for d in self.largest_changes(5) {
            let _ = writeln!(
                out,
                "    {}: {} → {} ({:+.0}%)",
                d.process,
                d.before,
                d.after,
                d.relative_change() * 100.0
            );
        }
        if !self.functions.is_empty() {
            let _ = writeln!(out, "  largest per-function changes (exclusive):");
            for d in self.largest_function_changes(5) {
                let _ = writeln!(
                    out,
                    "    {}: {} → {} ({:+.0}%)",
                    d.name,
                    d.before.exclusive,
                    d.after.exclusive,
                    d.relative_change() * 100.0
                );
            }
        }
        out
    }
}

/// Matches two profile tables by function *name* and returns one delta
/// per name that appears in either run, sorted by name. Ids missing a
/// name fall back to `fn#<id>` so mismatched registries still compare.
pub fn function_deltas(
    before: &ProfileTable,
    before_functions: &[String],
    after: &ProfileTable,
    after_functions: &[String],
) -> Vec<FunctionDelta> {
    fn name_of(names: &[String], id: FunctionId) -> String {
        names
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| format!("fn#{}", id.index()))
    }
    fn load_of(
        table: &ProfileTable,
        names: &[String],
    ) -> std::collections::BTreeMap<String, FunctionLoad> {
        table
            .iter()
            .map(|(id, p)| {
                (
                    name_of(names, id),
                    FunctionLoad {
                        count: p.count,
                        inclusive: p.inclusive.0,
                        exclusive: p.exclusive.0,
                    },
                )
            })
            .collect()
    }
    let before_loads = load_of(before, before_functions);
    let mut after_loads = load_of(after, after_functions);
    let mut deltas: Vec<FunctionDelta> = before_loads
        .into_iter()
        .map(|(name, b)| {
            let a = after_loads.remove(&name).unwrap_or_default();
            FunctionDelta {
                name,
                before: b,
                after: a,
            }
        })
        .collect();
    deltas.extend(after_loads.into_iter().map(|(name, a)| FunctionDelta {
        name,
        before: FunctionLoad::default(),
        after: a,
    }));
    deltas.sort_by(|a, b| a.name.cmp(&b.name));
    deltas
}

/// Outcome of a [`bisect_first_regression`] walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BisectOutcome {
    /// Index of the first regressing run (1-based into the sequence,
    /// index 0 being the known-good baseline); `None` when the last run
    /// does not regress against the baseline.
    pub first_bad: Option<usize>,
    /// Number of base-vs-candidate comparisons performed — at most
    /// `1 + ceil(log2(n − 1))` for `n` runs.
    pub comparisons: usize,
}

/// Binary-searches an ordered sequence of `runs` runs (index 0 = known
/// good baseline) for the first run that regresses against the
/// baseline, assuming the regression persists once introduced.
/// `is_regressed(i)` must report whether run `i` regresses vs run 0;
/// it is called O(log n) times. Errors from the probe abort the walk.
pub fn bisect_first_regression<E>(
    runs: usize,
    mut is_regressed: impl FnMut(usize) -> Result<bool, E>,
) -> Result<BisectOutcome, E> {
    if runs < 2 {
        return Ok(BisectOutcome {
            first_bad: None,
            comparisons: 0,
        });
    }
    let mut comparisons = 1;
    if !is_regressed(runs - 1)? {
        return Ok(BisectOutcome {
            first_bad: None,
            comparisons,
        });
    }
    // Invariant: runs before `lo` are good, `hi` is known bad.
    let (mut lo, mut hi) = (1, runs - 1);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        comparisons += 1;
        if is_regressed(mid)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(BisectOutcome {
        first_bad: Some(lo),
        comparisons,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use crate::segment::Segmentation;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, Trace, TraceBuilder};

    fn matrix_with_loads(groups: &[Vec<u64>]) -> SosMatrix {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for loads in groups {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for &load in loads {
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace: Trace = b.finish().unwrap();
        SosMatrix::from_segmentation(&Segmentation::new(&trace, &replay_all(&trace), f))
    }

    #[test]
    fn summary_of_balanced_run() {
        let m = matrix_with_loads(&vec![vec![100u64; 4]; 3]);
        let s = RunSummary::from_matrix(&m);
        assert_eq!(s.processes, 3);
        assert_eq!(s.total_sos, 1200);
        assert_eq!(s.max_process_sos, 400);
        assert!(s.imbalance_index.abs() < 1e-12);
        assert!((s.robust_makespan - 400.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_index_of_skewed_run() {
        // One process does 3× the work: max 300, mean 150 → index 0.5.
        let m = matrix_with_loads(&[vec![100u64], vec![100], vec![100], vec![300]]);
        let s = RunSummary::from_matrix(&m);
        assert_eq!(s.max_process_sos, 300);
        assert!((s.imbalance_index - 0.5).abs() < 1e-12);
    }

    #[test]
    fn robust_makespan_ignores_single_outlier_segment() {
        // One 10× segment among ten: total jumps, median does not.
        let mut loads = vec![100u64; 10];
        loads[4] = 1000;
        let spiky = matrix_with_loads(&[loads]);
        let flat = matrix_with_loads(&[vec![100u64; 10]]);
        let cmp = RunComparison::compare(&flat, &spiky);
        assert_eq!(cmp.after.total_sos, 1900);
        assert_eq!(cmp.verdict(0.05).class, VerdictClass::Noise);
    }

    #[test]
    fn verdict_classifies_persistent_shift() {
        let base = matrix_with_loads(&vec![vec![100u64; 8]; 4]);
        let slow = matrix_with_loads(&[
            vec![100u64; 8],
            vec![100; 8],
            vec![160; 8], // one rank persistently 60 % slower
            vec![100; 8],
        ]);
        let cmp = RunComparison::compare(&base, &slow);
        let v = cmp.verdict(DEFAULT_NOISE_THRESHOLD);
        assert_eq!(v.class, VerdictClass::Regression);
        assert!((v.relative_change - 0.6).abs() < 1e-9);
        let back = RunComparison::compare(&slow, &base);
        assert_eq!(back.verdict(0.05).class, VerdictClass::Improvement);
        let same = RunComparison::compare(&base, &base);
        assert_eq!(same.verdict(0.05).class, VerdictClass::Noise);
        assert!(format!("{v}").contains("regression"));
    }

    #[test]
    fn comparison_shows_fix_effect() {
        let before = matrix_with_loads(&[vec![120u64], vec![120], vec![120], vec![300]]);
        let after = matrix_with_loads(&[vec![165u64], vec![165], vec![165], vec![165]]);
        let cmp = RunComparison::compare(&before, &after);
        assert!(cmp.imbalance_change() < -0.2);
        let top = cmp.largest_changes(1);
        assert_eq!(top[0].process, ProcessId(3));
        assert!((top[0].relative_change() + 0.45).abs() < 1e-12);
        let text = cmp.render_text();
        assert!(text.contains("imbalance index"));
        assert!(text.contains("P3"));
    }

    #[test]
    fn differing_process_counts_record_unmatched_ranks() {
        let before = matrix_with_loads(&[vec![100u64], vec![100], vec![100]]);
        let after = matrix_with_loads(&[vec![100u64], vec![200]]);
        let cmp = RunComparison::compare(&before, &after);
        assert_eq!(cmp.deltas.len(), 2);
        assert_eq!(cmp.before.processes, 3);
        assert_eq!(cmp.after.processes, 2);
        // The shrunk run's missing rank is reported, not silently dropped.
        assert_eq!(cmp.unmatched_before, vec![ProcessId(2)]);
        assert!(cmp.unmatched_after.is_empty());
        let text = cmp.render_text();
        assert!(text.contains("unmatched ranks"));
        assert!(text.contains("baseline-only [P2]"));

        let grown = RunComparison::compare(&after, &before);
        assert_eq!(grown.unmatched_after, vec![ProcessId(2)]);
        assert!(grown.unmatched_before.is_empty());
    }

    #[test]
    fn matched_process_counts_have_no_unmatched_ranks() {
        let m = matrix_with_loads(&[vec![100u64], vec![100]]);
        let cmp = RunComparison::compare(&m, &m);
        assert!(cmp.unmatched_before.is_empty());
        assert!(cmp.unmatched_after.is_empty());
        assert!(!cmp.render_text().contains("unmatched"));
    }

    #[test]
    fn zero_baseline_delta_is_safe() {
        let d = ProcessDelta {
            process: ProcessId(0),
            before: 0,
            after: 5,
        };
        assert_eq!(d.relative_change(), 5.0);
    }

    #[test]
    fn empty_runs_compare() {
        let empty = matrix_with_loads(&[]);
        let cmp = RunComparison::compare(&empty, &empty);
        assert_eq!(cmp.deltas.len(), 0);
        assert_eq!(cmp.imbalance_change(), 0.0);
        assert_eq!(cmp.verdict(0.05).class, VerdictClass::Noise);
    }

    fn analysis_of_loads(groups: &[Vec<u64>]) -> (Analysis, Vec<String>) {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let iter_f = b.define_function("iteration", FunctionRole::Compute);
        let inner_f = b.define_function("inner", FunctionRole::Compute);
        for loads in groups {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for &load in loads {
                w.enter(Timestamp(t), iter_f).unwrap();
                w.enter(Timestamp(t + load / 4), inner_f).unwrap();
                w.leave(Timestamp(t + load / 2), inner_f).unwrap();
                t += load;
                w.leave(Timestamp(t), iter_f).unwrap();
            }
        }
        let trace: Trace = b.finish().unwrap();
        let names = trace
            .registry()
            .functions()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let analysis = crate::analyze(&trace, &crate::AnalysisConfig::default()).unwrap();
        (analysis, names)
    }

    #[test]
    fn function_deltas_match_by_name() {
        let (before, before_names) = analysis_of_loads(&[vec![100u64; 4], vec![100; 4]]);
        let (after, after_names) = analysis_of_loads(&[vec![200u64; 4], vec![200; 4]]);
        let cmp = RunComparison::compare_analyses(&before, &before_names, &after, &after_names);
        assert_eq!(cmp.functions.len(), 2);
        // Sorted by name.
        assert_eq!(cmp.functions[0].name, "inner");
        assert_eq!(cmp.functions[1].name, "iteration");
        let iter_delta = &cmp.functions[1];
        assert_eq!(iter_delta.before.count, 8);
        assert_eq!(iter_delta.after.count, 8);
        assert!(iter_delta.after.inclusive > iter_delta.before.inclusive);
        let text = cmp.render_text();
        assert!(text.contains("per-function changes"));
        assert!(text.contains("iteration"));
    }

    #[test]
    fn function_deltas_cover_one_sided_functions() {
        let (a, a_names) = analysis_of_loads(&[vec![100u64; 4]]);
        let mut b_names = a_names.clone();
        b_names[1] = "renamed".to_string();
        let deltas = function_deltas(&a.profiles, &a_names, &a.profiles, &b_names);
        // "inner" only in before, "renamed" only in after.
        let inner = deltas.iter().find(|d| d.name == "inner").unwrap();
        assert_eq!(inner.after, FunctionLoad::default());
        assert!(inner.before.inclusive > 0);
        let renamed = deltas.iter().find(|d| d.name == "renamed").unwrap();
        assert_eq!(renamed.before, FunctionLoad::default());
        assert!(renamed.after.inclusive > 0);
    }

    #[test]
    fn bisect_finds_first_regressing_run() {
        // Runs 0..5 good, 5..8 bad.
        let verdicts = [false, false, false, false, false, true, true, true];
        let mut probes = Vec::new();
        let out = bisect_first_regression::<()>(verdicts.len(), |i| {
            probes.push(i);
            Ok(verdicts[i])
        })
        .unwrap();
        assert_eq!(out.first_bad, Some(5));
        assert!(out.comparisons <= 4, "{} comparisons", out.comparisons);
        assert_eq!(probes.len(), out.comparisons);
    }

    #[test]
    fn bisect_every_step_position() {
        for n in 2..20usize {
            for step in 1..n {
                let out = bisect_first_regression::<()>(n, |i| Ok(i >= step)).unwrap();
                assert_eq!(out.first_bad, Some(step), "n={n} step={step}");
                let bound = 1 + (n - 1).next_power_of_two().trailing_zeros() as usize;
                assert!(out.comparisons <= bound, "n={n} step={step}");
            }
        }
    }

    #[test]
    fn bisect_clean_sequence_stops_after_one_comparison() {
        let out = bisect_first_regression::<()>(8, |_| Ok(false)).unwrap();
        assert_eq!(out.first_bad, None);
        assert_eq!(out.comparisons, 1);
    }

    #[test]
    fn bisect_degenerate_sequences() {
        let out = bisect_first_regression::<()>(1, |_| Ok(true)).unwrap();
        assert_eq!(out.first_bad, None);
        assert_eq!(out.comparisons, 0);
        let out = bisect_first_regression::<()>(2, |_| Ok(true)).unwrap();
        assert_eq!(out.first_bad, Some(1));
        assert_eq!(out.comparisons, 1);
    }

    #[test]
    fn bisect_propagates_probe_errors() {
        let out = bisect_first_regression(4, |_| Err("boom"));
        assert_eq!(out, Err("boom"));
    }
}
