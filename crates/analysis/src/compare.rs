//! Run-to-run comparison of SOS-time analyses.
//!
//! The paper's workflow ends with a fix ("introduce dynamic load
//! balancing for the SPECS model"); this module closes the loop by
//! comparing the analysis of two runs — before and after — the way the
//! authors' earlier alignment-based trace comparison (Weber et al.,
//! Euro-Par 2013, cited as related work) compares whole traces, but on
//! the SOS abstraction: per-process computational load and a global
//! imbalance index.
//!
//! The **imbalance index** is the classic load-imbalance percentage
//! `(max − mean) / max` over per-process total SOS-times: 0 for a
//! perfectly balanced run, → 1 when one process does all the work.

use crate::sos::SosMatrix;
use perfvar_trace::ProcessId;
use serde::{Deserialize, Serialize};

/// Summary of one run, as used by the comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Number of processes.
    pub processes: usize,
    /// Total SOS-time across all segments (overall computational load).
    pub total_sos: u64,
    /// Mean per-process total SOS.
    pub mean_process_sos: f64,
    /// Maximum per-process total SOS.
    pub max_process_sos: u64,
    /// `(max − mean) / max`, 0 = balanced.
    pub imbalance_index: f64,
}

impl RunSummary {
    /// Summarises an SOS matrix.
    pub fn from_matrix(matrix: &SosMatrix) -> RunSummary {
        let totals = matrix.process_totals();
        let processes = totals.len();
        let total_sos: u64 = totals.iter().map(|d| d.0).sum();
        let max_process_sos = totals.iter().map(|d| d.0).max().unwrap_or(0);
        let mean_process_sos = if processes > 0 {
            total_sos as f64 / processes as f64
        } else {
            0.0
        };
        let imbalance_index = if max_process_sos > 0 {
            (max_process_sos as f64 - mean_process_sos) / max_process_sos as f64
        } else {
            0.0
        };
        RunSummary {
            processes,
            total_sos,
            mean_process_sos,
            max_process_sos,
            imbalance_index,
        }
    }
}

/// Per-process load change between two runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessDelta {
    /// The process (present in both runs).
    pub process: ProcessId,
    /// Total SOS in the baseline run.
    pub before: u64,
    /// Total SOS in the candidate run.
    pub after: u64,
}

impl ProcessDelta {
    /// Relative change `(after − before) / before`; ∞-safe (0 baseline →
    /// returns `after as f64`).
    pub fn relative_change(&self) -> f64 {
        if self.before == 0 {
            self.after as f64
        } else {
            (self.after as f64 - self.before as f64) / self.before as f64
        }
    }
}

/// The comparison of two analysed runs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunComparison {
    /// Baseline run summary.
    pub before: RunSummary,
    /// Candidate run summary.
    pub after: RunSummary,
    /// Per-process deltas over the processes common to both runs.
    pub deltas: Vec<ProcessDelta>,
}

impl RunComparison {
    /// Compares two SOS matrices (typically the same workload before and
    /// after a fix). Process counts may differ; deltas cover the common
    /// prefix.
    pub fn compare(before: &SosMatrix, after: &SosMatrix) -> RunComparison {
        let before_totals = before.process_totals();
        let after_totals = after.process_totals();
        let common = before_totals.len().min(after_totals.len());
        let deltas = (0..common)
            .map(|i| ProcessDelta {
                process: ProcessId::from_index(i),
                before: before_totals[i].0,
                after: after_totals[i].0,
            })
            .collect();
        RunComparison {
            before: RunSummary::from_matrix(before),
            after: RunSummary::from_matrix(after),
            deltas,
        }
    }

    /// Change in the imbalance index (negative = the candidate run is
    /// better balanced).
    pub fn imbalance_change(&self) -> f64 {
        self.after.imbalance_index - self.before.imbalance_index
    }

    /// The processes whose load changed the most, by absolute relative
    /// change, descending.
    pub fn largest_changes(&self, n: usize) -> Vec<ProcessDelta> {
        let mut sorted = self.deltas.clone();
        sorted.sort_by(|a, b| {
            b.relative_change()
                .abs()
                .total_cmp(&a.relative_change().abs())
        });
        sorted.truncate(n);
        sorted
    }

    /// Human-readable comparison report.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run comparison ({} vs {} processes)",
            self.before.processes, self.after.processes
        );
        let _ = writeln!(
            out,
            "  imbalance index: {:.3} → {:.3} ({:+.3})",
            self.before.imbalance_index,
            self.after.imbalance_index,
            self.imbalance_change()
        );
        let _ = writeln!(
            out,
            "  max/mean process load: {:.2}× → {:.2}×",
            self.before.max_process_sos as f64 / self.before.mean_process_sos.max(1.0),
            self.after.max_process_sos as f64 / self.after.mean_process_sos.max(1.0),
        );
        let _ = writeln!(out, "  largest per-process changes:");
        for d in self.largest_changes(5) {
            let _ = writeln!(
                out,
                "    {}: {} → {} ({:+.0}%)",
                d.process,
                d.before,
                d.after,
                d.relative_change() * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use crate::segment::Segmentation;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, Trace, TraceBuilder};

    fn matrix_with_loads(groups: &[Vec<u64>]) -> SosMatrix {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for loads in groups {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for &load in loads {
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace: Trace = b.finish().unwrap();
        SosMatrix::from_segmentation(&Segmentation::new(&trace, &replay_all(&trace), f))
    }

    #[test]
    fn summary_of_balanced_run() {
        let m = matrix_with_loads(&vec![vec![100u64; 4]; 3]);
        let s = RunSummary::from_matrix(&m);
        assert_eq!(s.processes, 3);
        assert_eq!(s.total_sos, 1200);
        assert_eq!(s.max_process_sos, 400);
        assert!(s.imbalance_index.abs() < 1e-12);
    }

    #[test]
    fn imbalance_index_of_skewed_run() {
        // One process does 3× the work: max 300, mean 150 → index 0.5.
        let m = matrix_with_loads(&[vec![100u64], vec![100], vec![100], vec![300]]);
        let s = RunSummary::from_matrix(&m);
        assert_eq!(s.max_process_sos, 300);
        assert!((s.imbalance_index - 0.5).abs() < 1e-12);
    }

    #[test]
    fn comparison_shows_fix_effect() {
        let before = matrix_with_loads(&[vec![120u64], vec![120], vec![120], vec![300]]);
        let after = matrix_with_loads(&[vec![165u64], vec![165], vec![165], vec![165]]);
        let cmp = RunComparison::compare(&before, &after);
        assert!(cmp.imbalance_change() < -0.2);
        let top = cmp.largest_changes(1);
        assert_eq!(top[0].process, ProcessId(3));
        assert!((top[0].relative_change() + 0.45).abs() < 1e-12);
        let text = cmp.render_text();
        assert!(text.contains("imbalance index"));
        assert!(text.contains("P3"));
    }

    #[test]
    fn differing_process_counts_use_common_prefix() {
        let before = matrix_with_loads(&[vec![100u64], vec![100], vec![100]]);
        let after = matrix_with_loads(&[vec![100u64], vec![200]]);
        let cmp = RunComparison::compare(&before, &after);
        assert_eq!(cmp.deltas.len(), 2);
        assert_eq!(cmp.before.processes, 3);
        assert_eq!(cmp.after.processes, 2);
    }

    #[test]
    fn zero_baseline_delta_is_safe() {
        let d = ProcessDelta {
            process: ProcessId(0),
            before: 0,
            after: 5,
        };
        assert_eq!(d.relative_change(), 5.0);
    }

    #[test]
    fn empty_runs_compare() {
        let empty = matrix_with_loads(&[]);
        let cmp = RunComparison::compare(&empty, &empty);
        assert_eq!(cmp.deltas.len(), 0);
        assert_eq!(cmp.imbalance_change(), 0.0);
    }
}
