//! Wait-state classification: *where* synchronization time is lost.
//!
//! SOS-time removes synchronization time to find the slow *computation*;
//! this module does the complementary analysis the paper credits to
//! Scalasca ("automatically searches trace data for a range of
//! inefficiency patterns"): it classifies the synchronization time
//! itself into the classic wait-state patterns:
//!
//! * **Wait at collective** — a rank reaches a barrier/reduction early
//!   and idles until the last participant arrives. Collectives are
//!   matched across processes by occurrence index (the k-th
//!   collective-role invocation of each process belongs to the same
//!   operation, SPMD-style); a rank's wait is its time in the operation
//!   beyond the fastest participant's (the fastest one's time
//!   approximates the pure cost of the operation).
//! * **Late sender** — a receive blocks because the matching send had
//!   not yet been posted when the receiver arrived.
//!
//! The per-process totals make statements like "Process 2 spends 40 % of
//! its synchronization time waiting at barriers for Process 0" directly
//! readable — naming the *victims*, where SOS names the *culprit*.

use crate::invocation::ProcessInvocations;
use crate::messages::MessageAnalysis;
use perfvar_trace::{DurationTicks, FunctionRole, ProcessId, Timestamp, Trace};
use serde::{Deserialize, Serialize};

/// Wait-state totals of one process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessWaitStates {
    /// Time spent waiting inside collectives for slower participants.
    pub wait_at_collective: DurationTicks,
    /// Number of collective operations where this process waited.
    pub collective_waits: u64,
    /// Time spent in receives posted before the matching send
    /// (late-sender pattern).
    pub late_sender: DurationTicks,
    /// Number of late-sender instances.
    pub late_sender_count: u64,
}

impl ProcessWaitStates {
    /// Total classified wait time.
    pub fn total(&self) -> DurationTicks {
        self.wait_at_collective + self.late_sender
    }
}

/// The wait-state analysis of a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaitStateAnalysis {
    per_process: Vec<ProcessWaitStates>,
    /// Collectives whose participant counts disagreed (non-SPMD traces);
    /// their time is left unclassified.
    pub unmatched_collectives: usize,
}

impl WaitStateAnalysis {
    /// Classifies the wait states of `trace`, given its replayed
    /// invocations (one entry per process, as from
    /// [`replay_all`](crate::invocation::replay_all)).
    pub fn compute(trace: &Trace, replayed: &[ProcessInvocations]) -> WaitStateAnalysis {
        let registry = trace.registry();
        let p = trace.num_processes();
        let mut per_process = vec![ProcessWaitStates::default(); p];

        // ---- wait at collective ----
        // The k-th collective-role invocation of each process is the same
        // operation. Collect (enter, leave) per process per occurrence.
        let collective_seqs: Vec<Vec<(Timestamp, Timestamp)>> = replayed
            .iter()
            .map(|proc_inv| {
                proc_inv
                    .invocations()
                    .iter()
                    .filter(|inv| {
                        registry.function_role(inv.function) == FunctionRole::MpiCollective
                    })
                    .map(|inv| (inv.enter, inv.leave))
                    .collect()
            })
            .collect();
        let occurrences = collective_seqs.iter().map(Vec::len).min().unwrap_or(0);
        let max_occurrences = collective_seqs.iter().map(Vec::len).max().unwrap_or(0);
        let unmatched_collectives = max_occurrences - occurrences;
        for k in 0..occurrences {
            let min_inclusive = collective_seqs
                .iter()
                .map(|seq| seq[k].1.since(seq[k].0))
                .min()
                .unwrap_or(DurationTicks::ZERO);
            for (pi, seq) in collective_seqs.iter().enumerate() {
                let own = seq[k].1.since(seq[k].0);
                let wait = own.saturating_sub(min_inclusive);
                if wait > DurationTicks::ZERO {
                    per_process[pi].wait_at_collective += wait;
                    per_process[pi].collective_waits += 1;
                }
            }
        }

        // ---- late sender ----
        // A matched message whose receive *invocation* started before the
        // send was posted: the receiver waited `recv_time − max(enter,
        // send_time)` ≥ 0 on the wire, of which `send_time − enter` is
        // attributable to the late sender.
        let messages = MessageAnalysis::match_trace(trace);
        for m in &messages.messages {
            let Some(recv_enter) =
                enclosing_p2p_enter(registry, &replayed[m.to.index()], m.recv_time)
            else {
                continue;
            };
            if recv_enter < m.send_time {
                per_process[m.to.index()].late_sender += m.send_time.since(recv_enter);
                per_process[m.to.index()].late_sender_count += 1;
            }
        }

        WaitStateAnalysis {
            per_process,
            unmatched_collectives,
        }
    }

    /// The wait states of one process.
    pub fn process(&self, p: ProcessId) -> &ProcessWaitStates {
        &self.per_process[p.index()]
    }

    /// All per-process entries, in process order.
    pub fn per_process(&self) -> &[ProcessWaitStates] {
        &self.per_process
    }

    /// Total classified wait time across all processes.
    pub fn total(&self) -> DurationTicks {
        DurationTicks(self.per_process.iter().map(|w| w.total().0).sum())
    }

    /// The process that waits the most (the biggest *victim* of the
    /// imbalance — usually not the culprit the SOS analysis names).
    pub fn most_waiting_process(&self) -> Option<ProcessId> {
        self.per_process
            .iter()
            .enumerate()
            .max_by_key(|(i, w)| (w.total(), std::cmp::Reverse(*i)))
            .map(|(i, _)| ProcessId::from_index(i))
    }
}

/// The enter time of the innermost point-to-point/wait-role invocation
/// containing `t` on this process (the receive call the message completed
/// in).
fn enclosing_p2p_enter(
    registry: &perfvar_trace::Registry,
    proc_inv: &ProcessInvocations,
    t: Timestamp,
) -> Option<Timestamp> {
    // Invocations are in enter order; find the last matching-role
    // invocation whose [enter, leave] contains t (the recv event is
    // emitted at the invocation's leave, so use an inclusive upper edge).
    proc_inv
        .invocations()
        .iter()
        .rfind(|inv| {
            matches!(
                registry.function_role(inv.function),
                FunctionRole::MpiPointToPoint | FunctionRole::MpiWait
            ) && inv.enter <= t
                && t <= inv.leave
        })
        .map(|inv| inv.enter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use perfvar_sim::prelude::*;
    use perfvar_sim::workloads::SingleOutlier;
    use perfvar_trace::{Clock, TraceBuilder};

    #[test]
    fn fig3_wait_at_collective() {
        // The Fig. 3 structure: calc 5/3/1 then a shared barrier ending
        // at t=6. Process 2 (calc 1) waits 4 ticks longer than the
        // fastest barrier participant (Process 0, inclusive 1).
        let mut b = TraceBuilder::new(Clock::microseconds());
        let calc = b.define_function("calc", FunctionRole::Compute);
        let mpi = b.define_function("MPI", FunctionRole::MpiCollective);
        for load in [5u64, 3, 1] {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            w.enter(Timestamp(0), calc).unwrap();
            w.leave(Timestamp(load), calc).unwrap();
            w.enter(Timestamp(load), mpi).unwrap();
            w.leave(Timestamp(6), mpi).unwrap();
        }
        let trace = b.finish().unwrap();
        let ws = WaitStateAnalysis::compute(&trace, &replay_all(&trace));
        // Fastest participant: P0 with inclusive 1 (≈ pure cost).
        assert_eq!(
            ws.process(ProcessId(0)).wait_at_collective,
            DurationTicks(0)
        );
        assert_eq!(
            ws.process(ProcessId(1)).wait_at_collective,
            DurationTicks(2)
        );
        assert_eq!(
            ws.process(ProcessId(2)).wait_at_collective,
            DurationTicks(4)
        );
        assert_eq!(ws.most_waiting_process(), Some(ProcessId(2)));
        assert_eq!(ws.total(), DurationTicks(6));
        assert_eq!(ws.unmatched_collectives, 0);
    }

    #[test]
    fn late_sender_detected() {
        // Receiver enters its recv at t=0; the sender posts at t=50.
        let mut b = TraceBuilder::new(Clock::microseconds());
        let send_f = b.define_function("MPI_Send", FunctionRole::MpiPointToPoint);
        let recv_f = b.define_function("MPI_Recv", FunctionRole::MpiPointToPoint);
        let calc = b.define_function("calc", FunctionRole::Compute);
        let p0 = b.define_process("p0");
        let p1 = b.define_process("p1");
        let w = b.process_mut(p0);
        w.enter(Timestamp(0), calc).unwrap();
        w.leave(Timestamp(50), calc).unwrap();
        w.enter(Timestamp(50), send_f).unwrap();
        w.send(Timestamp(50), p1, 0, 8).unwrap();
        w.leave(Timestamp(51), send_f).unwrap();
        let w = b.process_mut(p1);
        w.enter(Timestamp(0), recv_f).unwrap();
        w.recv(Timestamp(52), p0, 0, 8).unwrap();
        w.leave(Timestamp(52), recv_f).unwrap();
        let trace = b.finish().unwrap();
        let ws = WaitStateAnalysis::compute(&trace, &replay_all(&trace));
        let p1w = ws.process(ProcessId(1));
        assert_eq!(p1w.late_sender, DurationTicks(50));
        assert_eq!(p1w.late_sender_count, 1);
        // The sender itself waits for nothing.
        assert_eq!(ws.process(ProcessId(0)).total(), DurationTicks::ZERO);
    }

    #[test]
    fn early_sender_is_not_late() {
        // The send happens before the receiver even posts: no late-sender
        // wait (the receiver never blocked on the sender).
        let mut b = TraceBuilder::new(Clock::microseconds());
        let send_f = b.define_function("MPI_Send", FunctionRole::MpiPointToPoint);
        let recv_f = b.define_function("MPI_Recv", FunctionRole::MpiPointToPoint);
        let p0 = b.define_process("p0");
        let p1 = b.define_process("p1");
        let w = b.process_mut(p0);
        w.enter(Timestamp(0), send_f).unwrap();
        w.send(Timestamp(0), p1, 0, 8).unwrap();
        w.leave(Timestamp(1), send_f).unwrap();
        let w = b.process_mut(p1);
        w.enter(Timestamp(40), recv_f).unwrap();
        w.recv(Timestamp(41), p0, 0, 8).unwrap();
        w.leave(Timestamp(41), recv_f).unwrap();
        let trace = b.finish().unwrap();
        let ws = WaitStateAnalysis::compute(&trace, &replay_all(&trace));
        assert_eq!(ws.process(ProcessId(1)).late_sender_count, 0);
    }

    #[test]
    fn simulated_outlier_makes_others_wait() {
        // In the SingleOutlier workload, rank 2 is slow in one iteration;
        // every *other* rank accrues collective wait — the victims.
        let trace = simulate(&SingleOutlier::new(5, 8, 2).spec()).unwrap();
        let ws = WaitStateAnalysis::compute(&trace, &replay_all(&trace));
        let culprit_wait = ws.process(ProcessId(2)).wait_at_collective;
        for rank in [0usize, 1, 3, 4] {
            assert!(
                ws.process(ProcessId::from_index(rank)).wait_at_collective > culprit_wait,
                "rank {rank} should wait more than the culprit"
            );
        }
    }

    #[test]
    fn waitall_waits_classified_via_late_sender() {
        // Non-blocking receives completed in a WaitAll still classify:
        // the recv event lands inside the MpiWait-role invocation.
        let mut b = SpecBuilder::new("t", Clock::microseconds(), CommParams::ideal());
        let send_f = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let irecv_f = b.function("MPI_Irecv", FunctionRole::MpiPointToPoint);
        let wait_f = b.function("MPI_Waitall", FunctionRole::MpiWait);
        let mut p0 = Program::new();
        p0.compute(100).send(send_f, 1, 0, 8);
        b.add_rank(p0);
        let mut p1 = Program::new();
        p1.irecv(irecv_f, 0, 0, 8).wait_all(wait_f);
        b.add_rank(p1);
        let trace = simulate(&b.build()).unwrap();
        let ws = WaitStateAnalysis::compute(&trace, &replay_all(&trace));
        let p1w = ws.process(ProcessId(1));
        assert_eq!(p1w.late_sender_count, 1);
        // The waitall started at ~t=0, the send was posted at t=100.
        assert_eq!(p1w.late_sender, DurationTicks(100));
    }

    #[test]
    fn empty_trace() {
        let b = TraceBuilder::new(Clock::microseconds());
        let trace = b.finish().unwrap();
        let ws = WaitStateAnalysis::compute(&trace, &replay_all(&trace));
        assert_eq!(ws.total(), DurationTicks::ZERO);
        assert_eq!(ws.most_waiting_process(), None);
    }

    #[test]
    fn mismatched_collective_counts_reported() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let mpi = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        let p0 = b.define_process("p0");
        let p1 = b.define_process("p1");
        let w = b.process_mut(p0);
        w.enter(Timestamp(0), mpi).unwrap();
        w.leave(Timestamp(5), mpi).unwrap();
        w.enter(Timestamp(6), mpi).unwrap();
        w.leave(Timestamp(9), mpi).unwrap();
        let w = b.process_mut(p1);
        w.enter(Timestamp(0), mpi).unwrap();
        w.leave(Timestamp(5), mpi).unwrap();
        let trace = b.finish().unwrap();
        let ws = WaitStateAnalysis::compute(&trace, &replay_all(&trace));
        assert_eq!(ws.unmatched_collectives, 1);
    }
}
