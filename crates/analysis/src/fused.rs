//! The fused analysis pass: segments, SOS inputs and counter rows in one
//! sweep per process.
//!
//! The materialising pipeline replays a process into `O(invocations)`
//! memory, then re-walks the invocation list to segment it, and then
//! re-scans the *whole event stream once per metric* to attribute
//! counters. This module folds all of that into a single
//! [`ReplayVisitor`] driven by one pass
//! over the stream: per worker, live state is
//! `O(stack depth + segments + metrics)` and every metric channel is
//! attributed during the same sweep. [`fuse_segments`] fans the pass out over
//! [`par_map_processes`] workers and
//! merges the per-process rows in process order, so the result is
//! bit-identical to [`Segmentation::new`] +
//! [`CounterMatrix::for_segments`] (a property test in
//! `tests/properties.rs` holds the two pipelines equal on arbitrary
//! traces).
//!
//! Counter semantics are timestamp-based, not record-order-based: a
//! delta sample at time `t` belongs to every segment with
//! `enter ≤ t < leave` even if the sample record precedes the `Enter`
//! record in the stream, and an accumulating reading at a boundary `t`
//! is the last sample with timestamp ≤ `t`. The sink therefore resolves
//! all boundary work in [`on_tick`](crate::stream::ReplayVisitor::on_tick)
//! — once per timestamp group — instead of at the individual records.

use crate::counters::CounterMatrix;
use crate::parallel::par_map_processes;
use crate::segment::{Segment, Segmentation};
use crate::stream::{replay_visit, ClosedFrame, ReplayVisitor};
use perfvar_trace::{DurationTicks, FunctionId, MetricId, MetricMode, ProcessId, Timestamp, Trace};

/// Segmentation plus per-metric counter matrices from one fused pass.
pub struct FusedSegments {
    /// The segmentation by the chosen function.
    pub segmentation: Segmentation,
    /// One counter matrix per metric channel, in metric-id order.
    /// Empty when the pass ran with counters disabled.
    pub counters: Vec<CounterMatrix>,
}

/// Per-process sink folding segments and counter rows in one pass.
/// Shared by [`fuse_segments`], the out-of-core path
/// ([`crate::outofcore`]), which drives it from a disk cursor, and the
/// live path ([`crate::live`]), which drives it from a growing archive
/// across many polls. The sink owns all of its state (`Clone` lets the
/// live analysis snapshot it mid-run without disturbing the pass).
#[derive(Clone)]
pub(crate) struct FusedSink {
    process: ProcessId,
    function: FunctionId,
    /// Metric modes by metric index; empty disables counter tracking.
    modes: Vec<MetricMode>,
    /// Completed and in-flight segments, in enter order.
    segments: Vec<Segment>,
    /// Counter rows, `[metric][segment]`, filled as segments close.
    rows: Vec<Vec<u64>>,
    /// Accumulating-metric readings at segment enter, `[metric][segment]`.
    acc_start: Vec<Vec<u64>>,
    /// Latest sample value per metric (accumulating readings).
    last_value: Vec<u64>,
    /// Delta/gauge sample sums of the current timestamp group.
    tick_sum: Vec<u64>,
    /// Metrics with delta/gauge samples in the current group.
    tick_touched: Vec<usize>,
    /// Indices of the accumulating metrics (resolved once).
    acc_metrics: Vec<usize>,
    /// Stack of open segment indices (nested/recursive invocations).
    open: Vec<usize>,
    /// Segments entered in the current timestamp group.
    entered: Vec<usize>,
    /// Segments closed in the current timestamp group.
    closed: Vec<usize>,
    /// Peak of `open.len()`: the live-segment gauge of the telemetry
    /// layer (nested/recursive invocations hold several segments open).
    peak_open: usize,
    /// Segments whose contained sync time exceeded their inclusive time
    /// (possible after timestamp repair on malformed streams); their SOS
    /// is clamped to zero by [`Segment::sos`], and the telemetry layer
    /// surfaces the count.
    sos_underflows: u64,
}

impl FusedSink {
    pub(crate) fn new(
        process: ProcessId,
        function: FunctionId,
        modes: Vec<MetricMode>,
    ) -> FusedSink {
        let nm = modes.len();
        let acc_metrics = modes
            .iter()
            .enumerate()
            .filter(|(_, m)| matches!(m, MetricMode::Accumulating))
            .map(|(i, _)| i)
            .collect();
        FusedSink {
            process,
            function,
            modes,
            segments: Vec::new(),
            rows: vec![Vec::new(); nm],
            acc_start: vec![Vec::new(); nm],
            last_value: vec![0; nm],
            tick_sum: vec![0; nm],
            tick_touched: Vec::new(),
            acc_metrics,
            open: Vec::new(),
            entered: Vec::new(),
            closed: Vec::new(),
            peak_open: 0,
            sos_underflows: 0,
        }
    }

    /// Dismantles the sink into its per-process partial: the segments (in
    /// enter order) and the counter rows, `[metric][segment]`.
    pub(crate) fn into_parts(self) -> (Vec<Segment>, Vec<Vec<u64>>) {
        (self.segments, self.rows)
    }

    /// Most segments simultaneously open at any point of the pass.
    pub(crate) fn peak_open(&self) -> usize {
        self.peak_open
    }

    /// Closed segments whose sync time exceeded their inclusive time.
    pub(crate) fn sos_underflows(&self) -> u64 {
        self.sos_underflows
    }

    /// All segments emitted so far, in enter order (a suffix may still
    /// be in flight — see [`first_open`](FusedSink::first_open)).
    pub(crate) fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Index of the earliest-entered segment that is still open, if any.
    /// The `open` stack holds indices in increasing enter order, so
    /// every segment before this index is closed for good — the prefix
    /// property live snapshots rely on.
    pub(crate) fn first_open(&self) -> Option<usize> {
        self.open.first().copied()
    }
}

/// The metric modes the fused pass attributes, in metric-id order; empty
/// (counters disabled) skips the counter machinery entirely.
pub(crate) fn metric_modes(
    registry: &perfvar_trace::Registry,
    with_counters: bool,
) -> Vec<MetricMode> {
    if with_counters {
        registry
            .metric_ids()
            .map(|m| registry.metric(m).mode)
            .collect()
    } else {
        Vec::new()
    }
}

/// Merges per-process fused partials (in process order) into the final
/// [`FusedSegments`]. The merge is identical for in-memory and
/// out-of-core producers, which is what keeps the two bit-equal.
pub(crate) fn merge_fused(
    registry: &perfvar_trace::Registry,
    function: FunctionId,
    modes: &[MetricMode],
    partials: Vec<(Vec<Segment>, Vec<Vec<u64>>)>,
) -> FusedSegments {
    let mut per_process = Vec::with_capacity(partials.len());
    let mut values: Vec<Vec<Vec<u64>>> = vec![Vec::with_capacity(partials.len()); modes.len()];
    for (segments, rows) in partials {
        per_process.push(segments);
        for (m, row) in rows.into_iter().enumerate() {
            values[m].push(row);
        }
    }
    let segmentation = Segmentation::from_parts(function, per_process);
    // `values` is empty when counters are disabled, so the zip yields
    // nothing in that case.
    let counters = registry
        .metric_ids()
        .zip(values)
        .map(|(metric, vals)| CounterMatrix::from_parts(metric, registry.metric(metric).mode, vals))
        .collect();
    FusedSegments {
        segmentation,
        counters,
    }
}

impl ReplayVisitor for FusedSink {
    fn on_enter(&mut self, function: FunctionId, _depth: u32, time: Timestamp) {
        if function != self.function {
            return;
        }
        let index = self.segments.len();
        self.segments.push(Segment {
            process: self.process,
            ordinal: index as u32,
            enter: time,
            leave: time, // finalised on close
            sync: DurationTicks::ZERO,
        });
        for m in 0..self.modes.len() {
            self.rows[m].push(0);
            self.acc_start[m].push(0);
        }
        self.open.push(index);
        self.peak_open = self.peak_open.max(self.open.len());
        self.entered.push(index);
    }

    fn on_frame(&mut self, frame: &ClosedFrame) {
        if frame.function != self.function {
            return;
        }
        let index = self.open.pop().expect("balanced segment frames");
        let seg = &mut self.segments[index];
        seg.leave = frame.leave;
        seg.sync = frame.sync_within;
        if seg.sync > seg.duration() {
            // SOS-time would underflow; `Segment::sos` clamps it to zero.
            self.sos_underflows += 1;
        }
        self.closed.push(index);
    }

    fn on_metric(&mut self, metric: MetricId, _time: Timestamp, value: u64) {
        let Some(mode) = self.modes.get(metric.index()) else {
            return; // counters disabled
        };
        let m = metric.index();
        match mode {
            MetricMode::Accumulating => self.last_value[m] = value,
            MetricMode::Delta | MetricMode::Gauge => {
                if self.tick_sum[m] == 0 && !self.tick_touched.contains(&m) {
                    self.tick_touched.push(m);
                }
                self.tick_sum[m] += value;
            }
        }
    }

    fn on_tick(&mut self, _time: Timestamp) {
        // Delta/gauge samples of this group belong to every segment that
        // is *still open* at group end: a segment closed in this group
        // excludes them (`t < leave` is strict) while one entered in this
        // group includes them (`enter ≤ t`).
        if !self.tick_touched.is_empty() {
            for touched in std::mem::take(&mut self.tick_touched) {
                let sum = std::mem::take(&mut self.tick_sum[touched]);
                for &index in &self.open {
                    self.rows[touched][index] += sum;
                }
            }
        }
        // Accumulating boundary readings use the last sample with
        // timestamp ≤ boundary — i.e. this group's final value, whatever
        // the record order within the group was.
        if !self.entered.is_empty() {
            for index in std::mem::take(&mut self.entered) {
                for &m in &self.acc_metrics {
                    self.acc_start[m][index] = self.last_value[m];
                }
            }
        }
        if !self.closed.is_empty() {
            for index in std::mem::take(&mut self.closed) {
                for &m in &self.acc_metrics {
                    self.rows[m][index] =
                        self.last_value[m].saturating_sub(self.acc_start[m][index]);
                }
            }
        }
    }
}

/// Runs the fused pass over every process of `trace` on up to
/// `num_threads` workers (0 = hardware parallelism).
///
/// When `with_counters` is false the counter machinery is skipped
/// entirely and [`FusedSegments::counters`] comes back empty.
pub fn fuse_segments(
    trace: &Trace,
    function: FunctionId,
    num_threads: usize,
    with_counters: bool,
) -> FusedSegments {
    fuse_segments_observed(
        trace,
        function,
        num_threads,
        with_counters,
        &crate::telemetry::Telemetry::noop(),
    )
}

/// Like [`fuse_segments`] but recording per-worker events, segment
/// counts, SOS-underflow clamps and peak-state gauges into `telemetry`
/// (see [`crate::telemetry`]). With [`Telemetry::noop`] this *is*
/// [`fuse_segments`].
///
/// [`Telemetry::noop`]: crate::telemetry::Telemetry::noop
pub fn fuse_segments_observed(
    trace: &Trace,
    function: FunctionId,
    num_threads: usize,
    with_counters: bool,
    telemetry: &crate::telemetry::Telemetry,
) -> FusedSegments {
    use crate::telemetry::Stage;
    let registry = trace.registry();
    let modes = metric_modes(registry, with_counters);
    let partials = par_map_processes(trace, num_threads, |pid| {
        let mut sink = FusedSink::new(pid, function, modes.clone());
        let stats = replay_visit(trace, pid, &mut sink);
        let mut w = telemetry.worker(Stage::Fuse);
        w.events(stats.events);
        w.stack_depth(stats.max_depth);
        w.live_segments(sink.peak_open());
        w.sos_clamped(sink.sos_underflows());
        let parts = sink.into_parts();
        w.segments(parts.0.len() as u64);
        drop(w);
        telemetry.rank_done();
        parts
    });
    merge_fused(registry, function, &modes, partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use perfvar_trace::{Clock, FunctionRole, TraceBuilder};

    /// Regression: a frame carrying more sync time than inclusive time
    /// (clock skew, truncated stream) is counted by the sink so the
    /// telemetry layer can surface it, and the resulting segment's SOS
    /// time clamps to zero instead of wrapping.
    #[test]
    fn sos_underflow_is_counted_and_clamped() {
        let f = FunctionId(0);
        let mut sink = FusedSink::new(ProcessId(0), f, Vec::new());
        sink.on_enter(f, 0, Timestamp(10));
        sink.on_frame(&ClosedFrame {
            function: f,
            depth: 0,
            enter: Timestamp(10),
            leave: Timestamp(14),
            children_inclusive: DurationTicks::ZERO,
            sync_within: DurationTicks(9), // > the 4-tick duration
        });
        assert_eq!(sink.sos_underflows(), 1);
        assert_eq!(sink.peak_open(), 1);
        let (segments, _) = sink.into_parts();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].sos(), DurationTicks::ZERO);
    }

    /// Well-formed frames (sync ≤ duration) never trip the counter.
    #[test]
    fn sos_underflow_counter_stays_zero_on_sane_frames() {
        let f = FunctionId(0);
        let mut sink = FusedSink::new(ProcessId(0), f, Vec::new());
        sink.on_enter(f, 0, Timestamp(0));
        sink.on_frame(&ClosedFrame {
            function: f,
            depth: 0,
            enter: Timestamp(0),
            leave: Timestamp(10),
            children_inclusive: DurationTicks::ZERO,
            sync_within: DurationTicks(10), // == duration: boundary, no clamp
        });
        assert_eq!(sink.sos_underflows(), 0);
    }

    /// Two processes with nested/recursive segment invocations, all
    /// three metric modes, boundary-coincident samples, and sync calls.
    fn tricky_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("seg", FunctionRole::Compute);
        let barrier = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        let acc = b.define_metric("CYC", MetricMode::Accumulating, "cycles");
        let del = b.define_metric("EXC", MetricMode::Delta, "#");
        let gauge = b.define_metric("MEM", MetricMode::Gauge, "bytes");
        for pi in 0..2u64 {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            // Recursive segment: outer [0, 20), inner [2, 8).
            w.metric(Timestamp(0), acc, 10).unwrap();
            w.enter(Timestamp(0), f).unwrap();
            w.metric(Timestamp(0), del, 1).unwrap(); // at enter tick
            w.enter(Timestamp(2), f).unwrap();
            w.metric(Timestamp(4), del, 2).unwrap(); // inside both
            w.enter(Timestamp(5), barrier).unwrap();
            w.leave(Timestamp(7), barrier).unwrap();
            w.metric(Timestamp(8), acc, 100 + pi).unwrap();
            w.leave(Timestamp(8), f).unwrap(); // sample at leave tick:
            w.metric(Timestamp(8), del, 4).unwrap(); // excluded from inner
            w.metric(Timestamp(8), gauge, 7).unwrap();
            w.leave(Timestamp(20), f).unwrap();
            // Zero-duration segment at 25.
            w.enter(Timestamp(25), f).unwrap();
            w.metric(Timestamp(25), acc, 500).unwrap();
            w.leave(Timestamp(25), f).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn fused_matches_materialised_pipeline() {
        let trace = tricky_trace();
        let f = trace.registry().function_by_name("seg").unwrap();
        let replayed = replay_all(&trace);
        let reference = Segmentation::new(&trace, &replayed, f);
        for threads in [1usize, 2, 4] {
            let fused = fuse_segments(&trace, f, threads, true);
            assert_eq!(fused.segmentation, reference, "threads = {threads}");
            for (matrix, metric) in fused.counters.iter().zip(trace.registry().metric_ids()) {
                let batch = CounterMatrix::for_segments(&trace, &reference, metric);
                assert_eq!(matrix, &batch, "metric {metric:?}, threads = {threads}");
            }
        }
    }

    #[test]
    fn boundary_samples_follow_timestamp_semantics() {
        let trace = tricky_trace();
        let f = trace.registry().function_by_name("seg").unwrap();
        let fused = fuse_segments(&trace, f, 1, true);
        let del = &fused.counters[1];
        // Outer segment [0,20): samples 1 + 2 + 4 (the leave-tick sample
        // of the *inner* segment still falls inside the outer one).
        assert_eq!(del.value(ProcessId(0), 0), Some(7));
        // Inner segment [2,8): sample 2 only; the t = 8 sample is out.
        assert_eq!(del.value(ProcessId(0), 1), Some(2));
        let acc = &fused.counters[0];
        // Outer: reading_at(20) − reading_at(0) = 100 − 10.
        assert_eq!(acc.value(ProcessId(0), 0), Some(90));
        // Inner [2,8): reading_at(8) = 100 (the sample *at* the leave
        // tick counts for accumulating readings) minus reading_at(2) = 10.
        assert_eq!(acc.value(ProcessId(0), 1), Some(90));
        // Zero-duration segment: both boundaries read the same sample.
        assert_eq!(acc.value(ProcessId(0), 2), Some(0));
        assert_eq!(del.value(ProcessId(0), 2), Some(0));
    }

    #[test]
    fn counters_disabled_skips_attribution() {
        let trace = tricky_trace();
        let f = trace.registry().function_by_name("seg").unwrap();
        let fused = fuse_segments(&trace, f, 2, false);
        assert!(fused.counters.is_empty());
        assert_eq!(fused.segmentation.len(), 6);
    }
}
