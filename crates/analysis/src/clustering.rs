//! Process-similarity clustering on SOS-time profiles.
//!
//! The paper's related work discusses two complementary ideas this
//! module provides as an extension: grouping structurally equal
//! processes to summarise large runs (Mohror et al.) and classifying
//! behaviour by clustering (González et al.). Here, each process is a
//! vector of per-segment SOS-times; agglomerative clustering with
//! average linkage groups processes with similar computational
//! behaviour. For the COSMO-SPECS case study this cleanly separates the
//! six cloud-loaded ranks from the other 94; for a balanced run it
//! produces a single cluster.

use crate::sos::SosMatrix;
use perfvar_trace::ProcessId;
use serde::{Deserialize, Serialize};

/// Clustering parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Stop merging when the closest pair of clusters is farther apart
    /// than `distance_threshold × (global RMS of SOS values)`.
    /// Relative, so workloads of any absolute magnitude cluster alike.
    pub distance_threshold: f64,
    /// If set, ignore the threshold and merge down to exactly this many
    /// clusters (or fewer if there are fewer processes).
    pub num_clusters: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            distance_threshold: 0.25,
            num_clusters: None,
        }
    }
}

/// One cluster of behaviourally similar processes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Member processes, ascending.
    pub members: Vec<ProcessId>,
    /// The medoid: the member closest to the cluster mean profile —
    /// a natural *representative* for summarised visualisation.
    pub representative: ProcessId,
    /// Mean per-segment SOS profile of the cluster.
    pub centroid: Vec<f64>,
}

/// The clustering result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessClustering {
    /// Clusters, largest first.
    pub clusters: Vec<Cluster>,
}

impl ProcessClustering {
    /// Clusters the processes of `matrix`.
    pub fn compute(matrix: &SosMatrix, config: ClusterConfig) -> ProcessClustering {
        let p = matrix.num_processes();
        if p == 0 {
            return ProcessClustering {
                clusters: Vec::new(),
            };
        }
        // Pad ragged rows with zeros to a rectangular profile matrix.
        let width = (0..p)
            .map(|i| matrix.process_sos(ProcessId::from_index(i)).len())
            .max()
            .unwrap_or(0);
        let profiles: Vec<Vec<f64>> = (0..p)
            .map(|i| {
                let row = matrix.process_sos(ProcessId::from_index(i));
                let mut v: Vec<f64> = row.iter().map(|d| d.0 as f64).collect();
                v.resize(width, 0.0);
                v
            })
            .collect();

        // Scale threshold by the RMS of all values.
        let rms = {
            let (sum, n) = profiles
                .iter()
                .flatten()
                .fold((0.0f64, 0usize), |(s, n), v| (s + v * v, n + 1));
            if n == 0 {
                0.0
            } else {
                (sum / n as f64).sqrt()
            }
        };
        // An all-idle run (every SOS value zero) has rms == 0; the stop
        // distance is then exactly 0 so identical (all-zero) profiles
        // still merge — the break below only fires on `d > stop_distance`.
        let stop_distance = if rms == 0.0 {
            0.0
        } else {
            config.distance_threshold * rms
        };

        // Agglomerative, average linkage via centroid bookkeeping.
        struct Node {
            members: Vec<usize>,
            centroid: Vec<f64>,
        }
        let mut nodes: Vec<Option<Node>> = profiles
            .iter()
            .enumerate()
            .map(|(i, prof)| {
                Some(Node {
                    members: vec![i],
                    centroid: prof.clone(),
                })
            })
            .collect();
        let mut active = p;
        let target = config.num_clusters.map(|k| k.max(1));
        loop {
            if active <= 1 {
                break;
            }
            if let Some(k) = target {
                if active <= k {
                    break;
                }
            }
            // Find closest pair of centroids. Ties are broken by the
            // lowest member rank of the pair: because a merge always
            // folds the higher slot into the lower one, a node's slot
            // index *is* its lowest member rank, so ordering equidistant
            // pairs by `(i, j)` is exactly the deterministic
            // lowest-member-rank rule (mirroring the dominant-function
            // tie fix).
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..nodes.len() {
                let Some(a) = &nodes[i] else { continue };
                for (j, node) in nodes.iter().enumerate().skip(i + 1) {
                    let Some(b) = node else { continue };
                    let d = euclidean(&a.centroid, &b.centroid);
                    let better = match best {
                        None => true,
                        Some((bi, bj, bd)) => match d.total_cmp(&bd) {
                            std::cmp::Ordering::Less => true,
                            std::cmp::Ordering::Equal => (i, j) < (bi, bj),
                            std::cmp::Ordering::Greater => false,
                        },
                    };
                    if better {
                        best = Some((i, j, d));
                    }
                }
            }
            let Some((i, j, d)) = best else { break };
            if target.is_none() && d > stop_distance {
                break;
            }
            // Merge j into i.
            let b = nodes[j].take().unwrap();
            let a = nodes[i].as_mut().unwrap();
            let na = a.members.len() as f64;
            let nb = b.members.len() as f64;
            for (ca, cb) in a.centroid.iter_mut().zip(&b.centroid) {
                *ca = (*ca * na + cb * nb) / (na + nb);
            }
            a.members.extend(b.members);
            active -= 1;
        }

        let mut clusters: Vec<Cluster> = nodes
            .into_iter()
            .flatten()
            .map(|node| {
                let mut members = node.members;
                members.sort_unstable();
                // Medoid: member closest to the centroid.
                let representative = *members
                    .iter()
                    .min_by(|&&a, &&b| {
                        euclidean(&profiles[a], &node.centroid)
                            .total_cmp(&euclidean(&profiles[b], &node.centroid))
                    })
                    .unwrap();
                Cluster {
                    members: members.iter().map(|&m| ProcessId::from_index(m)).collect(),
                    representative: ProcessId::from_index(representative),
                    centroid: node.centroid,
                }
            })
            .collect();
        clusters.sort_by_key(|c| (std::cmp::Reverse(c.members.len()), c.members[0].0));
        ProcessClustering { clusters }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters (empty trace).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster containing `process`, if any.
    pub fn cluster_of(&self, process: ProcessId) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.members.contains(&process))
    }

    /// Clusters other than the largest — the "unusual" processes a
    /// summarised view must not hide.
    pub fn minority_clusters(&self) -> &[Cluster] {
        if self.clusters.is_empty() {
            &[]
        } else {
            &self.clusters[1..]
        }
    }
}

pub(crate) fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use crate::segment::Segmentation;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, Trace, TraceBuilder};

    /// `groups` gives, per process, the per-iteration loads.
    fn trace_with_loads(groups: &[Vec<u64>]) -> SosMatrix {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for loads in groups {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for &load in loads {
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace: Trace = b.finish().unwrap();
        SosMatrix::from_segmentation(&Segmentation::new(&trace, &replay_all(&trace), f))
    }

    #[test]
    fn identical_processes_form_one_cluster() {
        let m = trace_with_loads(&vec![vec![100, 100, 100]; 6]);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert_eq!(c.len(), 1);
        assert_eq!(c.clusters[0].members.len(), 6);
        assert!(c.minority_clusters().is_empty());
    }

    #[test]
    fn two_behaviour_groups_separate() {
        let mut groups = vec![vec![100u64, 100, 100]; 5];
        groups.extend(vec![vec![300u64, 320, 310]; 3]);
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert_eq!(c.len(), 2, "{c:?}");
        assert_eq!(c.clusters[0].members.len(), 5); // largest first
        assert_eq!(c.clusters[1].members.len(), 3);
        let slow: Vec<u32> = c.clusters[1].members.iter().map(|p| p.0).collect();
        assert_eq!(slow, vec![5, 6, 7]);
    }

    #[test]
    fn fixed_cluster_count_override() {
        let mut groups = vec![vec![100u64; 4]; 4];
        groups.push(vec![600u64; 4]);
        groups.push(vec![900u64; 4]);
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(
            &m,
            ClusterConfig {
                num_clusters: Some(2),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(c.len(), 2);
        // 600 and 900 merge together before joining the 100s.
        assert_eq!(c.clusters[1].members.len(), 2);
    }

    #[test]
    fn representative_is_a_member_near_centroid() {
        let groups = vec![
            vec![100u64, 100],
            vec![110, 110],
            vec![90, 90],
            vec![500, 500],
        ];
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        let big = &c.clusters[0];
        assert!(big.members.contains(&big.representative));
        // Centroid of {100,110,90} is 100 → representative is process 0.
        assert_eq!(big.representative, ProcessId(0));
    }

    #[test]
    fn cluster_of_lookup() {
        let groups = vec![vec![100u64; 3]; 3];
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert!(c.cluster_of(ProcessId(2)).is_some());
        assert!(c.cluster_of(ProcessId(9)).is_none());
    }

    #[test]
    fn empty_matrix_clusters_to_nothing() {
        let m = trace_with_loads(&[]);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert!(c.is_empty());
    }

    #[test]
    fn ragged_rows_are_padded() {
        let groups = vec![vec![100u64, 100, 100], vec![100, 100]];
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        // The missing third segment (padded 0) makes process 1 distinct
        // at the default threshold of 0.25·RMS.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn all_idle_run_with_zero_rms_forms_one_cluster() {
        // Every SOS value is zero → the global RMS is zero. The stop
        // distance must collapse to exactly 0 so the identical all-zero
        // profiles still merge into a single cluster instead of staying
        // one-cluster-per-process (regression: the threshold used to be
        // scaled by `rms.max(EPSILON)`, leaving the intent implicit).
        let m = trace_with_loads(&vec![vec![0u64, 0, 0]; 5]);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert_eq!(c.len(), 1, "{c:?}");
        assert_eq!(c.clusters[0].members.len(), 5);
        assert!(c.clusters[0].centroid.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_process_is_its_own_cluster() {
        let m = trace_with_loads(&[vec![100u64, 200, 300]]);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert_eq!(c.len(), 1);
        assert_eq!(c.clusters[0].members, vec![ProcessId(0)]);
        assert_eq!(c.clusters[0].representative, ProcessId(0));
    }

    #[test]
    fn equidistant_merge_breaks_tie_by_lowest_member_rank() {
        // Profiles at 0, 100, 200: the pairs (0,1) and (1,2) are both
        // 100 apart. Forcing two clusters must deterministically merge
        // the pair with the lowest member rank, i.e. {0,1} | {2}.
        let m = trace_with_loads(&[vec![0u64; 2], vec![100u64; 2], vec![200u64; 2]]);
        let c = ProcessClustering::compute(
            &m,
            ClusterConfig {
                num_clusters: Some(2),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.clusters[0].members, vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(c.clusters[1].members, vec![ProcessId(2)]);
    }

    #[test]
    fn equidistant_disjoint_pairs_merge_lowest_first() {
        // Two far-apart pairs with identical intra-pair distance; with
        // room for exactly one merge, the lower-ranked pair merges.
        let groups = vec![
            vec![0u64; 2],
            vec![100; 2],
            vec![10_000; 2],
            vec![10_100; 2],
        ];
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(
            &m,
            ClusterConfig {
                num_clusters: Some(3),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(c.len(), 3);
        assert_eq!(c.clusters[0].members, vec![ProcessId(0), ProcessId(1)]);
    }

    #[test]
    fn cosmo_like_hotspot_isolated() {
        // 14 balanced ranks + 2 hot ranks with growing load.
        let mut groups = vec![vec![100u64; 8]; 14];
        groups.push((0..8).map(|i| 100 + 40 * i).collect());
        groups.push((0..8).map(|i| 100 + 50 * i).collect());
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert!(c.len() >= 2);
        let minority: Vec<u32> = c
            .minority_clusters()
            .iter()
            .flat_map(|cl| cl.members.iter().map(|p| p.0))
            .collect();
        assert!(
            minority.contains(&14) && minority.contains(&15),
            "{minority:?}"
        );
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        /// Per-process load rows: 1–8 processes × 1–5 iterations, loads
        /// drawn from a wide range so exact cross-pair distance ties are
        /// vanishingly improbable (ties are covered by the deterministic
        /// tests above).
        fn arb_groups() -> impl Strategy<Value = Vec<Vec<u64>>> {
            vec(vec(1u64..1_000_000, 1..6), 1..9)
        }

        /// A deterministic Fisher–Yates permutation of `0..n` from `seed`:
        /// `perm[new_rank] = original index`.
        fn permutation(n: usize, seed: u64) -> Vec<usize> {
            let mut perm: Vec<usize> = (0..n).collect();
            let mut state = seed | 1;
            for i in (1..n).rev() {
                // xorshift64* — plenty for shuffling test inputs.
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let j = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            perm
        }

        /// A clustering as a multiset of member sets, with each member
        /// mapped back through `index_of` (identity for unpermuted runs).
        fn member_sets(
            c: &ProcessClustering,
            index_of: impl Fn(usize) -> usize,
        ) -> BTreeSet<BTreeSet<usize>> {
            c.clusters
                .iter()
                .map(|cl| {
                    cl.members
                        .iter()
                        .map(|p| index_of(p.index()))
                        .collect::<BTreeSet<usize>>()
                })
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn deterministic_across_repeated_runs(groups in arb_groups()) {
                let m = trace_with_loads(&groups);
                let a = ProcessClustering::compute(&m, ClusterConfig::default());
                let b = ProcessClustering::compute(&m, ClusterConfig::default());
                prop_assert_eq!(a, b);
            }

            #[test]
            fn num_clusters_upper_bound_honoured(
                groups in arb_groups(),
                k in 1usize..9,
            ) {
                let m = trace_with_loads(&groups);
                let c = ProcessClustering::compute(
                    &m,
                    ClusterConfig { num_clusters: Some(k), ..ClusterConfig::default() },
                );
                prop_assert!(c.len() <= k, "{} clusters > bound {}", c.len(), k);
                prop_assert!(!c.is_empty());
                // Every process appears in exactly one cluster.
                let total: usize = c.clusters.iter().map(|cl| cl.members.len()).sum();
                prop_assert_eq!(total, groups.len());
            }

            #[test]
            fn rank_permutation_invariance(
                groups in arb_groups(),
                seed in 0u64..u64::MAX,
            ) {
                let perm = permutation(groups.len(), seed);
                let permuted: Vec<Vec<u64>> =
                    perm.iter().map(|&orig| groups[orig].clone()).collect();
                let c_orig = ProcessClustering::compute(
                    &trace_with_loads(&groups), ClusterConfig::default());
                let c_perm = ProcessClustering::compute(
                    &trace_with_loads(&permuted), ClusterConfig::default());
                let orig_sets = member_sets(&c_orig, |i| i);
                let perm_sets = member_sets(&c_perm, |i| perm[i]);
                prop_assert_eq!(orig_sets, perm_sets);
            }

            #[test]
            fn degenerate_inputs_never_panic(
                n in 1usize..7,
                width in 1usize..5,
                load_pick in 0usize..3,
                k in 0usize..10,
            ) {
                // All-equal vectors (including all-zero → zero global RMS
                // in the relative threshold) across any process count and
                // any num_clusters override, including the degenerate
                // Some(0); k == 9 doubles as the None arm.
                let load = [0u64, 1, 77][load_pick];
                let num_clusters = (k < 9).then_some(k);
                let m = trace_with_loads(&vec![vec![load; width]; n]);
                let c = ProcessClustering::compute(
                    &m,
                    ClusterConfig { num_clusters, ..ClusterConfig::default() },
                );
                // Identical profiles always collapse to one cluster
                // unless a larger fixed count forbids merging that far.
                let expected = num_clusters.map_or(1, |k| k.clamp(1, n));
                prop_assert_eq!(c.len(), expected);
            }
        }
    }
}
