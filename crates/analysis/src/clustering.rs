//! Process-similarity clustering on SOS-time profiles.
//!
//! The paper's related work discusses two complementary ideas this
//! module provides as an extension: grouping structurally equal
//! processes to summarise large runs (Mohror et al.) and classifying
//! behaviour by clustering (González et al.). Here, each process is a
//! vector of per-segment SOS-times; agglomerative clustering with
//! average linkage groups processes with similar computational
//! behaviour. For the COSMO-SPECS case study this cleanly separates the
//! six cloud-loaded ranks from the other 94; for a balanced run it
//! produces a single cluster.

use crate::sos::SosMatrix;
use perfvar_trace::ProcessId;
use serde::{Deserialize, Serialize};

/// Clustering parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Stop merging when the closest pair of clusters is farther apart
    /// than `distance_threshold × (global RMS of SOS values)`.
    /// Relative, so workloads of any absolute magnitude cluster alike.
    pub distance_threshold: f64,
    /// If set, ignore the threshold and merge down to exactly this many
    /// clusters (or fewer if there are fewer processes).
    pub num_clusters: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            distance_threshold: 0.25,
            num_clusters: None,
        }
    }
}

/// One cluster of behaviourally similar processes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Member processes, ascending.
    pub members: Vec<ProcessId>,
    /// The medoid: the member closest to the cluster mean profile —
    /// a natural *representative* for summarised visualisation.
    pub representative: ProcessId,
    /// Mean per-segment SOS profile of the cluster.
    pub centroid: Vec<f64>,
}

/// The clustering result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessClustering {
    /// Clusters, largest first.
    pub clusters: Vec<Cluster>,
}

impl ProcessClustering {
    /// Clusters the processes of `matrix`.
    pub fn compute(matrix: &SosMatrix, config: ClusterConfig) -> ProcessClustering {
        let p = matrix.num_processes();
        if p == 0 {
            return ProcessClustering {
                clusters: Vec::new(),
            };
        }
        // Pad ragged rows with zeros to a rectangular profile matrix.
        let width = (0..p)
            .map(|i| matrix.process_sos(ProcessId::from_index(i)).len())
            .max()
            .unwrap_or(0);
        let profiles: Vec<Vec<f64>> = (0..p)
            .map(|i| {
                let row = matrix.process_sos(ProcessId::from_index(i));
                let mut v: Vec<f64> = row.iter().map(|d| d.0 as f64).collect();
                v.resize(width, 0.0);
                v
            })
            .collect();

        // Scale threshold by the RMS of all values.
        let rms = {
            let (sum, n) = profiles
                .iter()
                .flatten()
                .fold((0.0f64, 0usize), |(s, n), v| (s + v * v, n + 1));
            if n == 0 {
                0.0
            } else {
                (sum / n as f64).sqrt()
            }
        };
        let stop_distance = config.distance_threshold * rms.max(f64::EPSILON);

        // Agglomerative, average linkage via centroid bookkeeping.
        struct Node {
            members: Vec<usize>,
            centroid: Vec<f64>,
        }
        let mut nodes: Vec<Option<Node>> = profiles
            .iter()
            .enumerate()
            .map(|(i, prof)| {
                Some(Node {
                    members: vec![i],
                    centroid: prof.clone(),
                })
            })
            .collect();
        let mut active = p;
        let target = config.num_clusters.map(|k| k.max(1));
        loop {
            if active <= 1 {
                break;
            }
            if let Some(k) = target {
                if active <= k {
                    break;
                }
            }
            // Find closest pair of centroids.
            let mut best: Option<(usize, usize, f64)> = None;
            for i in 0..nodes.len() {
                let Some(a) = &nodes[i] else { continue };
                for (j, node) in nodes.iter().enumerate().skip(i + 1) {
                    let Some(b) = node else { continue };
                    let d = euclidean(&a.centroid, &b.centroid);
                    if best.is_none() || d < best.unwrap().2 {
                        best = Some((i, j, d));
                    }
                }
            }
            let Some((i, j, d)) = best else { break };
            if target.is_none() && d > stop_distance {
                break;
            }
            // Merge j into i.
            let b = nodes[j].take().unwrap();
            let a = nodes[i].as_mut().unwrap();
            let na = a.members.len() as f64;
            let nb = b.members.len() as f64;
            for (ca, cb) in a.centroid.iter_mut().zip(&b.centroid) {
                *ca = (*ca * na + cb * nb) / (na + nb);
            }
            a.members.extend(b.members);
            active -= 1;
        }

        let mut clusters: Vec<Cluster> = nodes
            .into_iter()
            .flatten()
            .map(|node| {
                let mut members = node.members;
                members.sort_unstable();
                // Medoid: member closest to the centroid.
                let representative = *members
                    .iter()
                    .min_by(|&&a, &&b| {
                        euclidean(&profiles[a], &node.centroid)
                            .total_cmp(&euclidean(&profiles[b], &node.centroid))
                    })
                    .unwrap();
                Cluster {
                    members: members.iter().map(|&m| ProcessId::from_index(m)).collect(),
                    representative: ProcessId::from_index(representative),
                    centroid: node.centroid,
                }
            })
            .collect();
        clusters.sort_by_key(|c| (std::cmp::Reverse(c.members.len()), c.members[0].0));
        ProcessClustering { clusters }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters (empty trace).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster containing `process`, if any.
    pub fn cluster_of(&self, process: ProcessId) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.members.contains(&process))
    }

    /// Clusters other than the largest — the "unusual" processes a
    /// summarised view must not hide.
    pub fn minority_clusters(&self) -> &[Cluster] {
        if self.clusters.is_empty() {
            &[]
        } else {
            &self.clusters[1..]
        }
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use crate::segment::Segmentation;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, Trace, TraceBuilder};

    /// `groups` gives, per process, the per-iteration loads.
    fn trace_with_loads(groups: &[Vec<u64>]) -> SosMatrix {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for loads in groups {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for &load in loads {
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace: Trace = b.finish().unwrap();
        SosMatrix::from_segmentation(&Segmentation::new(&trace, &replay_all(&trace), f))
    }

    #[test]
    fn identical_processes_form_one_cluster() {
        let m = trace_with_loads(&vec![vec![100, 100, 100]; 6]);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert_eq!(c.len(), 1);
        assert_eq!(c.clusters[0].members.len(), 6);
        assert!(c.minority_clusters().is_empty());
    }

    #[test]
    fn two_behaviour_groups_separate() {
        let mut groups = vec![vec![100u64, 100, 100]; 5];
        groups.extend(vec![vec![300u64, 320, 310]; 3]);
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert_eq!(c.len(), 2, "{c:?}");
        assert_eq!(c.clusters[0].members.len(), 5); // largest first
        assert_eq!(c.clusters[1].members.len(), 3);
        let slow: Vec<u32> = c.clusters[1].members.iter().map(|p| p.0).collect();
        assert_eq!(slow, vec![5, 6, 7]);
    }

    #[test]
    fn fixed_cluster_count_override() {
        let mut groups = vec![vec![100u64; 4]; 4];
        groups.push(vec![600u64; 4]);
        groups.push(vec![900u64; 4]);
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(
            &m,
            ClusterConfig {
                num_clusters: Some(2),
                ..ClusterConfig::default()
            },
        );
        assert_eq!(c.len(), 2);
        // 600 and 900 merge together before joining the 100s.
        assert_eq!(c.clusters[1].members.len(), 2);
    }

    #[test]
    fn representative_is_a_member_near_centroid() {
        let groups = vec![
            vec![100u64, 100],
            vec![110, 110],
            vec![90, 90],
            vec![500, 500],
        ];
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        let big = &c.clusters[0];
        assert!(big.members.contains(&big.representative));
        // Centroid of {100,110,90} is 100 → representative is process 0.
        assert_eq!(big.representative, ProcessId(0));
    }

    #[test]
    fn cluster_of_lookup() {
        let groups = vec![vec![100u64; 3]; 3];
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert!(c.cluster_of(ProcessId(2)).is_some());
        assert!(c.cluster_of(ProcessId(9)).is_none());
    }

    #[test]
    fn empty_matrix_clusters_to_nothing() {
        let m = trace_with_loads(&[]);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert!(c.is_empty());
    }

    #[test]
    fn ragged_rows_are_padded() {
        let groups = vec![vec![100u64, 100, 100], vec![100, 100]];
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        // The missing third segment (padded 0) makes process 1 distinct
        // at the default threshold of 0.25·RMS.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cosmo_like_hotspot_isolated() {
        // 14 balanced ranks + 2 hot ranks with growing load.
        let mut groups = vec![vec![100u64; 8]; 14];
        groups.push((0..8).map(|i| 100 + 40 * i).collect());
        groups.push((0..8).map(|i| 100 + 50 * i).collect());
        let m = trace_with_loads(&groups);
        let c = ProcessClustering::compute(&m, ClusterConfig::default());
        assert!(c.len() >= 2);
        let minority: Vec<u32> = c
            .minority_clusters()
            .iter()
            .flat_map(|cl| cl.members.iter().map(|p| p.0))
            .collect();
        assert!(
            minority.contains(&14) && minority.contains(&15),
            "{minority:?}"
        );
    }
}
