//! Point-to-point message matching and communication statistics.
//!
//! The paper's case study B reads communication health off the timeline:
//! "increased MPI wait time — more red areas — and higher message
//! transfer times — longer black lines — indicate this behavior". This
//! module provides the programmatic counterpart: it matches send/receive
//! endpoints (FIFO per `(src, dst, tag)`, the MPI ordering guarantee),
//! yielding per-message transfer times, a process×process communication
//! matrix, and slow-transfer outliers.

use perfvar_trace::{DurationTicks, Event, ProcessId, Timestamp, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One matched point-to-point message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchedMessage {
    /// Sender.
    pub from: ProcessId,
    /// Receiver.
    pub to: ProcessId,
    /// Message tag.
    pub tag: u32,
    /// Payload size.
    pub bytes: u64,
    /// Send-event timestamp.
    pub send_time: Timestamp,
    /// Receive-event timestamp.
    pub recv_time: Timestamp,
}

impl MatchedMessage {
    /// Transfer time: receive minus send (the length of the paper's
    /// "black line").
    pub fn transfer_time(&self) -> DurationTicks {
        self.recv_time.saturating_since(self.send_time)
    }
}

/// The result of message matching over a trace.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MessageAnalysis {
    /// All matched messages, in receive order per process.
    pub messages: Vec<MatchedMessage>,
    /// Send events with no matching receive.
    pub unmatched_sends: usize,
    /// Receive events with no matching send.
    pub unmatched_recvs: usize,
}

impl MessageAnalysis {
    /// Matches the messages of `trace`.
    pub fn match_trace(trace: &Trace) -> MessageAnalysis {
        let mut sends: HashMap<(u32, u32, u32), Vec<(Timestamp, u64)>> = HashMap::new();
        let mut total_sends = 0usize;
        for stream in trace.streams() {
            for r in stream.records() {
                if let Event::MsgSend { to, tag, bytes } = r.event {
                    sends
                        .entry((stream.process.0, to.0, tag))
                        .or_default()
                        .push((r.time, bytes));
                    total_sends += 1;
                }
            }
        }
        let mut cursors: HashMap<(u32, u32, u32), usize> = HashMap::new();
        let mut messages = Vec::new();
        let mut unmatched_recvs = 0usize;
        for stream in trace.streams() {
            for r in stream.records() {
                if let Event::MsgRecv { from, tag, bytes } = r.event {
                    let key = (from.0, stream.process.0, tag);
                    let cursor = cursors.entry(key).or_insert(0);
                    match sends.get(&key).and_then(|v| v.get(*cursor)) {
                        Some(&(send_time, _)) => {
                            *cursor += 1;
                            messages.push(MatchedMessage {
                                from,
                                to: stream.process,
                                tag,
                                bytes,
                                send_time,
                                recv_time: r.time,
                            });
                        }
                        None => unmatched_recvs += 1,
                    }
                }
            }
        }
        let matched = messages.len();
        MessageAnalysis {
            messages,
            unmatched_sends: total_sends - matched,
            unmatched_recvs,
        }
    }

    /// Number of matched messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether no messages matched.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Total payload bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// Mean transfer time, if any message matched.
    pub fn mean_transfer(&self) -> Option<f64> {
        if self.messages.is_empty() {
            return None;
        }
        Some(
            self.messages
                .iter()
                .map(|m| m.transfer_time().0 as f64)
                .sum::<f64>()
                / self.messages.len() as f64,
        )
    }

    /// The `n` slowest transfers, descending.
    pub fn slowest(&self, n: usize) -> Vec<MatchedMessage> {
        let mut sorted = self.messages.clone();
        sorted.sort_by_key(|m| std::cmp::Reverse(m.transfer_time()));
        sorted.truncate(n);
        sorted
    }

    /// Builds the process×process communication matrix.
    pub fn comm_matrix(&self, num_processes: usize) -> CommMatrix {
        let mut counts = vec![vec![0u64; num_processes]; num_processes];
        let mut bytes = vec![vec![0u64; num_processes]; num_processes];
        for m in &self.messages {
            counts[m.from.index()][m.to.index()] += 1;
            bytes[m.from.index()][m.to.index()] += m.bytes;
        }
        CommMatrix { counts, bytes }
    }
}

/// A process×process communication matrix (sender-major).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CommMatrix {
    /// `counts[from][to]`: number of messages.
    pub counts: Vec<Vec<u64>>,
    /// `bytes[from][to]`: payload bytes.
    pub bytes: Vec<Vec<u64>>,
}

impl CommMatrix {
    /// Number of processes (matrix dimension).
    pub fn dim(&self) -> usize {
        self.counts.len()
    }

    /// The heaviest sender→receiver pair by bytes, if any traffic exists.
    pub fn heaviest_pair(&self) -> Option<(ProcessId, ProcessId, u64)> {
        let mut best: Option<(usize, usize, u64)> = None;
        for (i, row) in self.bytes.iter().enumerate() {
            for (j, &b) in row.iter().enumerate() {
                if b > 0 && best.is_none_or(|(_, _, bb)| b > bb) {
                    best = Some((i, j, b));
                }
            }
        }
        best.map(|(i, j, b)| (ProcessId::from_index(i), ProcessId::from_index(j), b))
    }

    /// Total messages sent by `p`.
    pub fn sent_by(&self, p: ProcessId) -> u64 {
        self.counts[p.index()].iter().sum()
    }

    /// Total messages received by `p`.
    pub fn received_by(&self, p: ProcessId) -> u64 {
        self.counts.iter().map(|row| row[p.index()]).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvar_trace::{Clock, TraceBuilder};

    fn messaging_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let p0 = b.define_process("p0");
        let p1 = b.define_process("p1");
        let p2 = b.define_process("p2");
        // p0 → p1: two messages tag 0 (FIFO), one message tag 7.
        let w = b.process_mut(p0);
        w.send(Timestamp(0), p1, 0, 100).unwrap();
        w.send(Timestamp(10), p1, 0, 200).unwrap();
        w.send(Timestamp(20), p1, 7, 50).unwrap();
        // p2 → p0: one message.
        let w = b.process_mut(p2);
        w.send(Timestamp(5), p0, 0, 1000).unwrap();
        // Receives.
        let w = b.process_mut(p1);
        w.recv(Timestamp(4), p0, 0, 100).unwrap();
        w.recv(Timestamp(30), p0, 0, 200).unwrap();
        w.recv(Timestamp(31), p0, 7, 50).unwrap();
        let w = b.process_mut(p0);
        w.recv(Timestamp(50), p2, 0, 1000).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn fifo_matching_per_channel() {
        let t = messaging_trace();
        let a = MessageAnalysis::match_trace(&t);
        assert_eq!(a.len(), 4);
        assert_eq!(a.unmatched_sends, 0);
        assert_eq!(a.unmatched_recvs, 0);
        // The first tag-0 receive pairs with the first tag-0 send.
        let first = a
            .messages
            .iter()
            .find(|m| m.to == ProcessId(1) && m.tag == 0 && m.bytes == 100)
            .unwrap();
        assert_eq!(first.send_time, Timestamp(0));
        assert_eq!(first.recv_time, Timestamp(4));
        assert_eq!(first.transfer_time(), DurationTicks(4));
    }

    #[test]
    fn slowest_transfers_ranked() {
        let t = messaging_trace();
        let a = MessageAnalysis::match_trace(&t);
        let slowest = a.slowest(2);
        // p2→p0 takes 45, second tag-0 message takes 20.
        assert_eq!(slowest[0].transfer_time(), DurationTicks(45));
        assert_eq!(slowest[1].transfer_time(), DurationTicks(20));
        assert!(a.mean_transfer().unwrap() > 0.0);
        assert_eq!(a.total_bytes(), 1350);
    }

    #[test]
    fn comm_matrix_aggregates() {
        let t = messaging_trace();
        let a = MessageAnalysis::match_trace(&t);
        let m = a.comm_matrix(3);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.counts[0][1], 3);
        assert_eq!(m.bytes[0][1], 350);
        assert_eq!(m.counts[2][0], 1);
        assert_eq!(m.heaviest_pair(), Some((ProcessId(2), ProcessId(0), 1000)));
        assert_eq!(m.sent_by(ProcessId(0)), 3);
        assert_eq!(m.received_by(ProcessId(1)), 3);
        assert_eq!(m.received_by(ProcessId(2)), 0);
    }

    #[test]
    fn unmatched_endpoints_counted() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let p0 = b.define_process("p0");
        let p1 = b.define_process("p1");
        b.process_mut(p0).send(Timestamp(0), p1, 0, 8).unwrap();
        b.process_mut(p0).send(Timestamp(1), p1, 0, 8).unwrap();
        b.process_mut(p1).recv(Timestamp(5), p0, 0, 8).unwrap();
        // A receive that no send matches (wrong tag).
        b.process_mut(p1).recv(Timestamp(6), p0, 9, 8).unwrap();
        let t = b.finish().unwrap();
        let a = MessageAnalysis::match_trace(&t);
        assert_eq!(a.len(), 1);
        assert_eq!(a.unmatched_sends, 1);
        assert_eq!(a.unmatched_recvs, 1);
    }

    #[test]
    fn empty_trace_has_no_messages() {
        let t = TraceBuilder::new(Clock::microseconds()).finish().unwrap();
        let a = MessageAnalysis::match_trace(&t);
        assert!(a.is_empty());
        assert_eq!(a.mean_transfer(), None);
        assert_eq!(a.comm_matrix(0).heaviest_pair(), None);
    }
}
