//! Per-function aggregated profiles (counts, inclusive/exclusive totals).
//!
//! The dominant-function heuristic (§IV) works on two aggregates per
//! function: the total invocation count across all processes and the
//! aggregated inclusive time. This module computes them (plus exclusive
//! totals and per-process counts, which the report and visualizer use)
//! from replayed invocations.
//!
//! Note on recursion: as in the paper's measurement systems, aggregated
//! inclusive time counts every invocation's full inclusive span, so
//! directly recursive functions accumulate overlapping time. Iterative
//! HPC codes — the paper's target — rarely recurse; the dominant-function
//! ranking is unaffected as long as recursion does not dominate the run.

use crate::invocation::ProcessInvocations;
use crate::parallel::par_map_processes;
use crate::stream::{replay_visit, ClosedFrame, ReplayVisitor};
use perfvar_trace::{DurationTicks, FunctionId, Trace};
use serde::{Deserialize, Serialize};

/// Aggregates for one function.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionProfile {
    /// Total invocation count across all processes.
    pub count: u64,
    /// Aggregated inclusive time across all invocations.
    pub inclusive: DurationTicks,
    /// Aggregated exclusive time across all invocations.
    pub exclusive: DurationTicks,
    /// Number of distinct processes that invoked the function.
    pub processes: u32,
    /// Maximum invocation count on any single process.
    pub max_count_per_process: u64,
}

/// Per-process partial aggregates, one row per function. Produced by
/// [`ProfileSink`], merged by [`ProfileTable::from_rows`].
#[derive(Clone, Debug, Default)]
pub(crate) struct ProfileRow {
    pub(crate) count: u64,
    pub(crate) inclusive: u64,
    pub(crate) exclusive: u64,
}

/// Streaming visitor accumulating one process's profile rows. Shared by
/// [`ProfileTable::stream`] and the out-of-core path
/// ([`crate::outofcore`]), which drives it from a disk cursor.
pub(crate) struct ProfileSink {
    pub(crate) rows: Vec<ProfileRow>,
}

impl ProfileSink {
    pub(crate) fn new(num_functions: usize) -> ProfileSink {
        ProfileSink {
            rows: vec![ProfileRow::default(); num_functions],
        }
    }
}

impl ReplayVisitor for ProfileSink {
    fn on_frame(&mut self, frame: &ClosedFrame) {
        let row = &mut self.rows[frame.function.index()];
        row.count += 1;
        row.inclusive += frame.inclusive().0;
        row.exclusive += frame.exclusive().0;
    }
}

/// Profiles for every defined function, indexed by [`FunctionId`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProfileTable {
    profiles: Vec<FunctionProfile>,
}

impl ProfileTable {
    /// Builds the table from replayed invocations.
    ///
    /// `replayed` must cover the same trace the registry describes (one
    /// entry per process, as produced by
    /// [`replay_all`](crate::invocation::replay_all)).
    pub fn from_invocations(trace: &Trace, replayed: &[ProcessInvocations]) -> ProfileTable {
        let nf = trace.registry().num_functions();
        let mut profiles = vec![FunctionProfile::default(); nf];
        let mut per_process_count = vec![0u64; nf];
        for proc_inv in replayed {
            per_process_count.iter_mut().for_each(|c| *c = 0);
            for inv in proc_inv.invocations() {
                let f = inv.function.index();
                let p = &mut profiles[f];
                p.count += 1;
                p.inclusive += inv.inclusive();
                p.exclusive += inv.exclusive();
                per_process_count[f] += 1;
            }
            for (f, &c) in per_process_count.iter().enumerate() {
                if c > 0 {
                    profiles[f].processes += 1;
                    profiles[f].max_count_per_process = profiles[f].max_count_per_process.max(c);
                }
            }
        }
        ProfileTable { profiles }
    }

    /// Builds the table in one streaming pass per process, without
    /// materialising invocations, on up to `num_threads` workers
    /// (0 = hardware parallelism).
    ///
    /// Produces exactly the same table as
    /// [`from_invocations`](ProfileTable::from_invocations) over
    /// [`replay_all`](crate::invocation::replay_all) — per-function sums
    /// are merged per process, in process order — but each worker only
    /// holds `O(functions + stack depth)` state.
    pub fn stream(trace: &Trace, num_threads: usize) -> ProfileTable {
        ProfileTable::stream_observed(trace, num_threads, &crate::telemetry::Telemetry::noop())
    }

    /// Like [`stream`](ProfileTable::stream) but recording per-worker
    /// event counts and peak stack depth into `telemetry` (see
    /// [`crate::telemetry`]). With
    /// [`Telemetry::noop`](crate::telemetry::Telemetry::noop) this *is*
    /// [`stream`](ProfileTable::stream).
    pub fn stream_observed(
        trace: &Trace,
        num_threads: usize,
        telemetry: &crate::telemetry::Telemetry,
    ) -> ProfileTable {
        use crate::telemetry::Stage;
        let nf = trace.registry().num_functions();
        let partials = par_map_processes(trace, num_threads, |pid| {
            let mut sink = ProfileSink::new(nf);
            let stats = replay_visit(trace, pid, &mut sink);
            let mut w = telemetry.worker(Stage::Profile);
            w.events(stats.events);
            w.stack_depth(stats.max_depth);
            drop(w);
            telemetry.rank_done();
            sink.rows
        });
        ProfileTable::from_rows(nf, partials)
    }

    /// Merges per-process [`ProfileRow`] partials (in process order) into
    /// the final table. The merge is identical for in-memory and
    /// out-of-core producers, which is what keeps the two bit-equal.
    pub(crate) fn from_rows(
        num_functions: usize,
        partials: impl IntoIterator<Item = Vec<ProfileRow>>,
    ) -> ProfileTable {
        let mut profiles = vec![FunctionProfile::default(); num_functions];
        for rows in partials {
            for (f, row) in rows.into_iter().enumerate() {
                let p = &mut profiles[f];
                p.count += row.count;
                p.inclusive += DurationTicks(row.inclusive);
                p.exclusive += DurationTicks(row.exclusive);
                if row.count > 0 {
                    p.processes += 1;
                    p.max_count_per_process = p.max_count_per_process.max(row.count);
                }
            }
        }
        ProfileTable { profiles }
    }

    /// The profile of one function.
    #[inline]
    pub fn get(&self, function: FunctionId) -> &FunctionProfile {
        &self.profiles[function.index()]
    }

    /// Iterates `(function, profile)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &FunctionProfile)> {
        self.profiles
            .iter()
            .enumerate()
            .map(|(i, p)| (FunctionId::from_index(i), p))
    }

    /// Number of profiled functions (defined functions, including those
    /// never invoked).
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the registry defines no functions.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Functions sorted by aggregated inclusive time, descending
    /// (ties broken by id for determinism). Functions never invoked are
    /// omitted.
    pub fn by_inclusive_desc(&self) -> Vec<FunctionId> {
        let mut ids: Vec<FunctionId> = self
            .iter()
            .filter(|(_, p)| p.count > 0)
            .map(|(f, _)| f)
            .collect();
        ids.sort_by_key(|f| (std::cmp::Reverse(self.get(*f).inclusive), f.0));
        ids
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};

    /// Builds the paper's Fig. 2 example: three processes, functions
    /// main, i, a, b, c. On each process: main [0..18] contains i [0..1],
    /// then three invocations of a (durations 4, 4, 4), with each a
    /// containing b and c calls.
    ///
    /// Timing per process (identical across the three processes):
    /// main: 0–18 (inclusive 18)
    /// i: 0–1
    /// a: 1–5, 7–11, 13–17  (sum 12)
    /// b inside each a: 1 tick; c inside each a: 1 tick
    /// b between a's: 5–7, 11–13 … matches the figure's alternation.
    pub(crate) fn fig2_trace() -> Trace {
        let mut bld = TraceBuilder::new(Clock::microseconds());
        let main_f = bld.define_function("main", FunctionRole::Compute);
        let i_f = bld.define_function("i", FunctionRole::Compute);
        let a_f = bld.define_function("a", FunctionRole::Compute);
        let b_f = bld.define_function("b", FunctionRole::Compute);
        let c_f = bld.define_function("c", FunctionRole::Compute);
        for pi in 0..3 {
            let p = bld.define_process(format!("rank {pi}"));
            let w = bld.process_mut(p);
            w.enter(Timestamp(0), main_f).unwrap();
            w.enter(Timestamp(0), i_f).unwrap();
            w.leave(Timestamp(1), i_f).unwrap();
            for k in 0..3u64 {
                let base = 1 + k * 6;
                w.enter(Timestamp(base), a_f).unwrap();
                w.enter(Timestamp(base + 1), b_f).unwrap();
                w.leave(Timestamp(base + 2), b_f).unwrap();
                w.enter(Timestamp(base + 2), c_f).unwrap();
                w.leave(Timestamp(base + 3), c_f).unwrap();
                w.leave(Timestamp(base + 4), a_f).unwrap();
                if k < 2 {
                    w.enter(Timestamp(base + 4), b_f).unwrap();
                    w.leave(Timestamp(base + 6), b_f).unwrap();
                }
            }
            w.leave(Timestamp(18), main_f).unwrap();
        }
        bld.finish().unwrap()
    }

    #[test]
    fn fig2_aggregates() {
        let trace = fig2_trace();
        let table = ProfileTable::from_invocations(&trace, &replay_all(&trace));
        let reg = trace.registry();
        let main_f = reg.function_by_name("main").unwrap();
        let a_f = reg.function_by_name("a").unwrap();
        // main: 3 invocations (one per process), 54 ticks aggregated —
        // exactly the paper's numbers.
        assert_eq!(table.get(main_f).count, 3);
        assert_eq!(table.get(main_f).inclusive, DurationTicks(54));
        // a: 9 invocations, 36 ticks aggregated.
        assert_eq!(table.get(a_f).count, 9);
        assert_eq!(table.get(a_f).inclusive, DurationTicks(36));
        assert_eq!(table.get(a_f).processes, 3);
        assert_eq!(table.get(a_f).max_count_per_process, 3);
    }

    #[test]
    fn inclusive_ordering() {
        let trace = fig2_trace();
        let table = ProfileTable::from_invocations(&trace, &replay_all(&trace));
        let reg = trace.registry();
        let order = table.by_inclusive_desc();
        assert_eq!(order[0], reg.function_by_name("main").unwrap());
        assert_eq!(order[1], reg.function_by_name("a").unwrap());
        // Every defined function was invoked in this trace.
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn exclusive_sums_to_root_span() {
        // Per process, the sum of exclusive times equals the root span.
        let trace = fig2_trace();
        let replayed = replay_all(&trace);
        for proc_inv in &replayed {
            let total_exclusive: DurationTicks = proc_inv
                .invocations()
                .iter()
                .map(|inv| inv.exclusive())
                .sum();
            assert_eq!(total_exclusive, DurationTicks(18));
        }
    }

    #[test]
    fn streaming_table_equals_materialised_table() {
        let trace = fig2_trace();
        let reference = ProfileTable::from_invocations(&trace, &replay_all(&trace));
        for threads in [1usize, 2, 8] {
            assert_eq!(ProfileTable::stream(&trace, threads), reference);
        }
    }

    #[test]
    fn never_invoked_functions_have_zero_profiles() {
        let mut bld = TraceBuilder::new(Clock::microseconds());
        let _unused = bld.define_function("unused", FunctionRole::Compute);
        bld.define_process("p0");
        let trace = bld.finish().unwrap();
        let table = ProfileTable::from_invocations(&trace, &replay_all(&trace));
        assert_eq!(table.len(), 1);
        assert_eq!(table.get(FunctionId(0)).count, 0);
        assert!(table.by_inclusive_desc().is_empty());
    }
}
