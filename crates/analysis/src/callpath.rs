//! Call-path (calling-context) analysis.
//!
//! An extension of the paper's §IV: the dominant-function rule treats
//! every invocation of a function alike, but the *same* function can play
//! different roles depending on its caller — `diffusion_solve` called
//! once from `init` is not the iterative behaviour `diffusion_solve`
//! called from `timeloop` is. Aggregating per **call path** (the chain of
//! functions from the root, as HPCToolkit/Score-P calling-context trees
//! do) separates the two, and the dominant-selection rule applies
//! unchanged at path granularity: a dominant *call path* needs at least
//! `2p` invocations and maximal aggregated inclusive time.
//!
//! [`Segmentation`](crate::segment::Segmentation) works on functions;
//! [`CallTree::invocations_of`] exposes which invocations belong to a
//! path so callers can segment by path when the distinction matters.

use crate::invocation::ProcessInvocations;
use perfvar_trace::{DurationTicks, FunctionId, Registry, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a node of the [`CallTree`] (a distinct call path).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CallPathId(pub u32);

impl CallPathId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// One call-path node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CallNode {
    /// The function at the end of this path.
    pub function: FunctionId,
    /// The caller's path, if any.
    pub parent: Option<CallPathId>,
    /// Callee paths, in first-seen order.
    pub children: Vec<CallPathId>,
    /// Number of invocations of this exact path, over all processes.
    pub count: u64,
    /// Aggregated inclusive time of those invocations.
    pub inclusive: DurationTicks,
    /// Aggregated exclusive time.
    pub exclusive: DurationTicks,
}

/// The merged calling-context tree of all processes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CallTree {
    nodes: Vec<CallNode>,
    roots: Vec<CallPathId>,
}

impl CallTree {
    /// Builds the tree from replayed invocations (one entry per process).
    pub fn build(replayed: &[ProcessInvocations]) -> CallTree {
        let mut nodes: Vec<CallNode> = Vec::new();
        let mut roots: Vec<CallPathId> = Vec::new();
        let mut index: HashMap<(Option<CallPathId>, FunctionId), CallPathId> = HashMap::new();
        // Per process: the path node of each invocation (by invocation
        // index), resolved parents-first thanks to pre-order.
        let mut inv_nodes: Vec<CallPathId> = Vec::new();
        for proc_inv in replayed {
            inv_nodes.clear();
            inv_nodes.reserve(proc_inv.len());
            for inv in proc_inv.invocations() {
                let parent_node = inv.parent.map(|p| inv_nodes[p as usize]);
                let id = *index.entry((parent_node, inv.function)).or_insert_with(|| {
                    let id = CallPathId(nodes.len() as u32);
                    nodes.push(CallNode {
                        function: inv.function,
                        parent: parent_node,
                        children: Vec::new(),
                        count: 0,
                        inclusive: DurationTicks::ZERO,
                        exclusive: DurationTicks::ZERO,
                    });
                    match parent_node {
                        Some(p) => nodes[p.index()].children.push(id),
                        None => roots.push(id),
                    }
                    id
                });
                let node = &mut nodes[id.index()];
                node.count += 1;
                node.inclusive += inv.inclusive();
                node.exclusive += inv.exclusive();
                inv_nodes.push(id);
            }
        }
        CallTree { nodes, roots }
    }

    /// Number of distinct call paths.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node lookup.
    pub fn node(&self, id: CallPathId) -> &CallNode {
        &self.nodes[id.index()]
    }

    /// Top-level paths.
    pub fn roots(&self) -> &[CallPathId] {
        &self.roots
    }

    /// All node ids, in creation order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = CallPathId> {
        (0..self.nodes.len() as u32).map(CallPathId)
    }

    /// The `/`-joined path string, e.g. `"main/timeloop/solve"`.
    pub fn path_string(&self, id: CallPathId, registry: &Registry) -> String {
        let mut parts = Vec::new();
        let mut cursor = Some(id);
        while let Some(c) = cursor {
            let node = self.node(c);
            parts.push(registry.function_name(node.function));
            cursor = node.parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// The dominant *call path* under the paper's rule transplanted to
    /// path granularity: at least `multiplier × p` invocations, maximal
    /// aggregated inclusive time (ties broken by id).
    pub fn dominant_call_path(&self, trace: &Trace, multiplier: u64) -> Option<CallPathId> {
        let required = multiplier * trace.num_processes() as u64;
        self.ids()
            .filter(|id| {
                let n = self.node(*id);
                n.count >= required && n.count > 0
            })
            .max_by_key(|id| (self.node(*id).inclusive, std::cmp::Reverse(id.0)))
    }

    /// The invocation indices (per process) whose path is `id` — use to
    /// segment by call path.
    pub fn invocations_of<'a>(
        &'a self,
        replayed: &'a [ProcessInvocations],
        id: CallPathId,
    ) -> impl Iterator<Item = (&'a ProcessInvocations, usize)> + 'a {
        // Recompute the per-invocation node mapping lazily per process.
        replayed.iter().flat_map(move |proc_inv| {
            let mut inv_nodes: Vec<Option<CallPathId>> = Vec::with_capacity(proc_inv.len());
            let mut matches = Vec::new();
            for (i, inv) in proc_inv.invocations().iter().enumerate() {
                let parent_node = inv.parent.and_then(|p| inv_nodes[p as usize]);
                let node = self.resolve(parent_node, inv.function);
                if node == Some(id) {
                    matches.push((proc_inv, i));
                }
                inv_nodes.push(node);
            }
            matches
        })
    }

    /// Finds the node for `(parent, function)` if it exists.
    fn resolve(&self, parent: Option<CallPathId>, function: FunctionId) -> Option<CallPathId> {
        let candidates: &[CallPathId] = match parent {
            Some(p) => &self.node(p).children,
            None => &self.roots,
        };
        candidates
            .iter()
            .copied()
            .find(|c| self.node(*c).function == function)
    }

    /// Renders the tree as indented text, children sorted by inclusive
    /// time, limited to `max_depth` levels.
    pub fn render_text(&self, registry: &Registry, max_depth: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut stack: Vec<(CallPathId, usize)> = Vec::new();
        let mut roots = self.roots.clone();
        roots.sort_by_key(|id| std::cmp::Reverse(self.node(*id).inclusive));
        for root in roots.into_iter().rev() {
            stack.push((root, 0));
        }
        while let Some((id, depth)) = stack.pop() {
            let node = self.node(id);
            let _ = writeln!(
                out,
                "{:indent$}{} ×{}  incl {}  excl {}",
                "",
                registry.function_name(node.function),
                node.count,
                node.inclusive.0,
                node.exclusive.0,
                indent = depth * 2
            );
            if depth + 1 < max_depth {
                let mut children = node.children.clone();
                children.sort_by_key(|id| std::cmp::Reverse(self.node(*id).inclusive));
                for child in children.into_iter().rev() {
                    stack.push((child, depth + 1));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};

    /// `work` is called once from `init` (long) and repeatedly from
    /// `iteration` (short): function-level aggregation conflates the two,
    /// call paths separate them.
    fn two_context_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let main_f = b.define_function("main", FunctionRole::Compute);
        let init_f = b.define_function("init", FunctionRole::Compute);
        let iter_f = b.define_function("iteration", FunctionRole::Compute);
        let work_f = b.define_function("work", FunctionRole::Compute);
        for _ in 0..2 {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            w.enter(Timestamp(0), main_f).unwrap();
            w.enter(Timestamp(0), init_f).unwrap();
            w.enter(Timestamp(0), work_f).unwrap();
            w.leave(Timestamp(100), work_f).unwrap();
            w.leave(Timestamp(100), init_f).unwrap();
            let mut t = 100;
            for _ in 0..5 {
                w.enter(Timestamp(t), iter_f).unwrap();
                w.enter(Timestamp(t), work_f).unwrap();
                t += 10;
                w.leave(Timestamp(t), work_f).unwrap();
                w.leave(Timestamp(t), iter_f).unwrap();
            }
            w.leave(Timestamp(t), main_f).unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn paths_separate_calling_contexts() {
        let trace = two_context_trace();
        let replayed = replay_all(&trace);
        let tree = CallTree::build(&replayed);
        let reg = trace.registry();
        // Paths: main, main/init, main/init/work, main/iteration,
        // main/iteration/work → 5 nodes.
        assert_eq!(tree.len(), 5);
        let paths: Vec<String> = tree.ids().map(|id| tree.path_string(id, reg)).collect();
        assert!(paths.contains(&"main/init/work".to_string()));
        assert!(paths.contains(&"main/iteration/work".to_string()));
        // The two `work` contexts have distinct aggregates.
        let init_work = tree
            .ids()
            .find(|id| tree.path_string(*id, reg) == "main/init/work")
            .unwrap();
        let iter_work = tree
            .ids()
            .find(|id| tree.path_string(*id, reg) == "main/iteration/work")
            .unwrap();
        assert_eq!(tree.node(init_work).count, 2); // once per process
        assert_eq!(tree.node(init_work).inclusive, DurationTicks(200));
        assert_eq!(tree.node(iter_work).count, 10);
        assert_eq!(tree.node(iter_work).inclusive, DurationTicks(100));
    }

    #[test]
    fn dominant_call_path_respects_2p_rule() {
        let trace = two_context_trace();
        let replayed = replay_all(&trace);
        let tree = CallTree::build(&replayed);
        let reg = trace.registry();
        // p = 2, required = 4. main (2), main/init (2), main/init/work (2)
        // all fail; main/iteration (10, incl 100) and main/iteration/work
        // (10, incl 100) qualify — the tie breaks to the lower id, which
        // is the parent (created first).
        let dominant = tree.dominant_call_path(&trace, 2).unwrap();
        assert_eq!(tree.path_string(dominant, reg), "main/iteration");
        // Function-level selection would have been misled: `work` has
        // aggregated inclusive 300 (including the init call), more than
        // `iteration`'s 100.
    }

    #[test]
    fn invocations_of_selects_one_context() {
        let trace = two_context_trace();
        let replayed = replay_all(&trace);
        let tree = CallTree::build(&replayed);
        let reg = trace.registry();
        let iter_work = tree
            .ids()
            .find(|id| tree.path_string(*id, reg) == "main/iteration/work")
            .unwrap();
        let hits: Vec<(u32, usize)> = tree
            .invocations_of(&replayed, iter_work)
            .map(|(pi, idx)| (pi.process.0, idx))
            .collect();
        assert_eq!(hits.len(), 10);
        // All selected invocations are 10 ticks (the iterative ones).
        for (p, idx) in hits {
            let inv = &replayed[p as usize].invocations()[idx];
            assert_eq!(inv.inclusive(), DurationTicks(10));
        }
    }

    #[test]
    fn roots_and_children_structure() {
        let trace = two_context_trace();
        let replayed = replay_all(&trace);
        let tree = CallTree::build(&replayed);
        assert_eq!(tree.roots().len(), 1);
        let root = tree.node(tree.roots()[0]);
        assert_eq!(root.children.len(), 2); // init, iteration
        assert_eq!(root.count, 2);
    }

    #[test]
    fn render_text_shows_tree() {
        let trace = two_context_trace();
        let replayed = replay_all(&trace);
        let tree = CallTree::build(&replayed);
        let text = tree.render_text(trace.registry(), 3);
        assert!(text.contains("main"));
        assert!(text.contains("  iteration"));
        assert!(text.contains("    work"));
        // Depth limit: cutting at 2 hides work.
        let shallow = tree.render_text(trace.registry(), 2);
        assert!(!shallow.contains("    work"));
    }

    #[test]
    fn empty_tree() {
        let tree = CallTree::build(&[]);
        assert!(tree.is_empty());
        assert!(tree.roots().is_empty());
    }

    #[test]
    fn recursion_creates_path_per_depth() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p = b.define_process("p");
        let w = b.process_mut(p);
        w.enter(Timestamp(0), f).unwrap();
        w.enter(Timestamp(1), f).unwrap();
        w.enter(Timestamp(2), f).unwrap();
        w.leave(Timestamp(3), f).unwrap();
        w.leave(Timestamp(4), f).unwrap();
        w.leave(Timestamp(5), f).unwrap();
        let trace = b.finish().unwrap();
        let tree = CallTree::build(&replay_all(&trace));
        assert_eq!(tree.len(), 3); // f, f/f, f/f/f
        let reg = trace.registry();
        let deepest = tree
            .ids()
            .find(|id| tree.path_string(*id, reg) == "f/f/f")
            .unwrap();
        assert_eq!(tree.node(deepest).count, 1);
    }
}
