//! One codec for the analysis knobs every surface exposes.
//!
//! The CLI (`--function/--multiplier/--threads/--read-buffer/--no-mmap/
//! --partial`), the daemon's query parameters
//! (`?function=&multiplier=&threads=&read-buffer=&no-mmap&partial`) and
//! the HTTP client all describe the same six knobs of an
//! [`AnalysisConfig`] + [`RecoveryMode`] pair. Historically each surface
//! parsed and printed them independently, and the dialects drifted (the
//! daemon accepted `multiplier` but not `threads`; the client had to
//! know which spelling each end understood). [`AnalysisOptions`] is the
//! single source of truth: one struct, one set of keys, one validator,
//! with [`to_query`](AnalysisOptions::to_query) /
//! [`from_query`](AnalysisOptions::from_query) for the wire and
//! [`to_flags`](AnalysisOptions::to_flags) /
//! [`absorb`](AnalysisOptions::absorb) for argv. A property test proves
//! both codecs round-trip for arbitrary option values, so the dialects
//! cannot drift again.
//!
//! Keys the codec does *not* own (`path`, `steps`, …) pass through
//! untouched: [`from_query`](AnalysisOptions::from_query) ignores them
//! and [`absorb`](AnalysisOptions::absorb) returns `Ok(false)`, so
//! callers layer their surface-specific parameters on top.

use crate::outofcore::RecoveryMode;
use crate::report::AnalysisConfig;
use std::fmt;

/// The analysis knobs shared by the CLI, the daemon and the client:
/// the segmentation override, the dominant-rule multiplier, the two
/// I/O performance knobs, and the damaged-archive recovery switch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnalysisOptions {
    /// Segment by this function instead of the predicted dominant one
    /// (`--function NAME` / `function=NAME`).
    pub function: Option<String>,
    /// Invocation-count multiplier of the dominant-function rule
    /// (`--multiplier K` / `multiplier=K`; the paper's §IV uses 2).
    pub multiplier: u64,
    /// Worker threads (`--threads N` / `threads=N`; 0 = available
    /// parallelism).
    pub threads: usize,
    /// Buffered read-window bytes (`--read-buffer BYTES` /
    /// `read-buffer=BYTES`; must be ≥ 1).
    pub read_buffer: usize,
    /// Memory-map stream files where possible (`--no-mmap` / `no-mmap`
    /// turns this off).
    pub mmap: bool,
    /// Recover intact ranks of a damaged archive instead of failing
    /// (`--partial` / `partial`).
    pub partial: bool,
}

impl Default for AnalysisOptions {
    fn default() -> AnalysisOptions {
        let config = AnalysisConfig::default();
        AnalysisOptions {
            function: None,
            multiplier: config.dominant_multiplier,
            threads: config.threads,
            read_buffer: config.read_buffer_bytes,
            mmap: config.mmap,
            partial: false,
        }
    }
}

/// A knob the codec rejected: carries the key, the offending value and
/// why — every surface renders it its own way (CLI usage error, daemon
/// `bad-request` envelope).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptionsError {
    /// The canonical key (`"multiplier"`, `"threads"`, …).
    pub key: &'static str,
    /// The rejected raw value (empty for a missing one).
    pub value: String,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} {:?}: {}", self.key, self.value, self.reason)
    }
}

impl std::error::Error for OptionsError {}

fn invalid(key: &'static str, value: &str, reason: impl Into<String>) -> OptionsError {
    OptionsError {
        key,
        value: value.to_string(),
        reason: reason.into(),
    }
}

impl AnalysisOptions {
    /// The keys the codec owns, in canonical (encode) order. Valued
    /// keys first, then the boolean flags.
    pub const KEYS: &'static [&'static str] = &[
        "function",
        "multiplier",
        "threads",
        "read-buffer",
        "no-mmap",
        "partial",
    ];

    /// The options a config + recovery mode pair describes.
    pub fn from_config(config: &AnalysisConfig, mode: RecoveryMode) -> AnalysisOptions {
        AnalysisOptions {
            function: config.segment_function.clone(),
            multiplier: config.dominant_multiplier,
            threads: config.threads,
            read_buffer: config.read_buffer_bytes,
            mmap: config.mmap,
            partial: mode == RecoveryMode::Partial,
        }
    }

    /// Writes the knobs into `config` (the non-knob fields are left
    /// alone).
    pub fn apply(&self, config: &mut AnalysisConfig) {
        config.segment_function = self.function.clone();
        config.dominant_multiplier = self.multiplier;
        config.threads = self.threads;
        config.read_buffer_bytes = self.read_buffer;
        config.mmap = self.mmap;
    }

    /// The config these options describe, from defaults.
    pub fn config(&self) -> AnalysisConfig {
        let mut config = AnalysisConfig::default();
        self.apply(&mut config);
        config
    }

    /// The recovery mode these options select.
    pub fn recovery_mode(&self) -> RecoveryMode {
        if self.partial {
            RecoveryMode::Partial
        } else {
            RecoveryMode::Strict
        }
    }

    /// Absorbs one `key`/`value` pair. Returns `Ok(false)` when the key
    /// is not one of [`KEYS`](AnalysisOptions::KEYS) (the caller's
    /// problem), `Err` when it is but the value does not validate.
    /// Boolean flags (`no-mmap`, `partial`) accept a missing value.
    pub fn absorb(&mut self, key: &str, value: Option<&str>) -> Result<bool, OptionsError> {
        match key {
            "function" => {
                let v = value.ok_or_else(|| invalid("function", "", "missing function name"))?;
                if v.is_empty() {
                    return Err(invalid("function", v, "missing function name"));
                }
                self.function = Some(v.to_string());
            }
            "multiplier" => {
                let v = value.ok_or_else(|| invalid("multiplier", "", "missing value"))?;
                self.multiplier = v
                    .parse::<u64>()
                    .map_err(|e| invalid("multiplier", v, e.to_string()))?;
            }
            "threads" => {
                let v = value.ok_or_else(|| invalid("threads", "", "missing value"))?;
                self.threads = v
                    .parse::<usize>()
                    .map_err(|e| invalid("threads", v, e.to_string()))?;
            }
            "read-buffer" => {
                let v = value.ok_or_else(|| invalid("read-buffer", "", "missing value"))?;
                let bytes = v
                    .parse::<usize>()
                    .map_err(|e| invalid("read-buffer", v, e.to_string()))?;
                if bytes == 0 {
                    return Err(invalid("read-buffer", v, "must be at least 1 byte"));
                }
                self.read_buffer = bytes;
            }
            "no-mmap" => self.mmap = false,
            "partial" => self.partial = true,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Encodes the non-default knobs as URL query parameters, in
    /// [`KEYS`](AnalysisOptions::KEYS) order (the function name is
    /// percent-encoded). The empty string means "all defaults".
    pub fn to_query(&self) -> String {
        let defaults = AnalysisOptions::default();
        let mut parts = Vec::new();
        if let Some(function) = &self.function {
            parts.push(format!("function={}", percent_encode(function)));
        }
        if self.multiplier != defaults.multiplier {
            parts.push(format!("multiplier={}", self.multiplier));
        }
        if self.threads != defaults.threads {
            parts.push(format!("threads={}", self.threads));
        }
        if self.read_buffer != defaults.read_buffer {
            parts.push(format!("read-buffer={}", self.read_buffer));
        }
        if !self.mmap {
            parts.push("no-mmap".to_string());
        }
        if self.partial {
            parts.push("partial".to_string());
        }
        parts.join("&")
    }

    /// Decodes the owned keys out of a raw URL query string, ignoring
    /// everything else (`path=…`, `steps=…`, …). Both keys and values
    /// are percent-decoded before validation; `+` stays literal, like
    /// the rest of this codebase's query handling.
    pub fn from_query(query: &str) -> Result<AnalysisOptions, OptionsError> {
        let mut options = AnalysisOptions::default();
        for pair in query.split('&') {
            if pair.is_empty() {
                continue;
            }
            let (key, value) = match pair.split_once('=') {
                Some((k, v)) => (percent_decode(k), Some(percent_decode(v))),
                None => (percent_decode(pair), None),
            };
            options.absorb(&key, value.as_deref())?;
        }
        Ok(options)
    }

    /// Encodes the non-default knobs as CLI flags, in
    /// [`KEYS`](AnalysisOptions::KEYS) order: `["--function", NAME,
    /// "--threads", N, …, "--no-mmap", "--partial"]`.
    pub fn to_flags(&self) -> Vec<String> {
        let defaults = AnalysisOptions::default();
        let mut flags = Vec::new();
        if let Some(function) = &self.function {
            flags.push("--function".to_string());
            flags.push(function.clone());
        }
        if self.multiplier != defaults.multiplier {
            flags.push("--multiplier".to_string());
            flags.push(self.multiplier.to_string());
        }
        if self.threads != defaults.threads {
            flags.push("--threads".to_string());
            flags.push(self.threads.to_string());
        }
        if self.read_buffer != defaults.read_buffer {
            flags.push("--read-buffer".to_string());
            flags.push(self.read_buffer.to_string());
        }
        if !self.mmap {
            flags.push("--no-mmap".to_string());
        }
        if self.partial {
            flags.push("--partial".to_string());
        }
        flags
    }
}

/// The diagnosis knobs shared by `perfvar diagnose` and the daemon's
/// `/v1/diagnose`: the cluster-count override, the merge threshold, and
/// the summarised-heatmap row cap. Same contract as
/// [`AnalysisOptions`]: one codec for argv and the wire, unknown keys
/// pass through.
#[derive(Clone, Debug, PartialEq)]
pub struct DiagnoseOptions {
    /// Merge down to exactly this many clusters (`--clusters K` /
    /// `clusters=K`) instead of using the distance threshold.
    pub clusters: Option<usize>,
    /// Relative merge-stop distance (`--cluster-threshold X` /
    /// `cluster-threshold=X`), in units of the global SOS RMS.
    pub threshold: f64,
    /// Hard cap on reported clusters — one summarised heatmap row each
    /// (`--max-clusters N` / `max-clusters=N`).
    pub max_clusters: usize,
}

impl Default for DiagnoseOptions {
    fn default() -> DiagnoseOptions {
        let config = crate::diagnose::DiagnoseConfig::default();
        DiagnoseOptions {
            clusters: config.cluster.num_clusters,
            threshold: config.cluster.distance_threshold,
            max_clusters: config.max_clusters,
        }
    }
}

impl DiagnoseOptions {
    /// The keys this codec owns, in canonical (encode) order.
    pub const KEYS: &'static [&'static str] = &["clusters", "cluster-threshold", "max-clusters"];

    /// The [`DiagnoseConfig`](crate::diagnose::DiagnoseConfig) these
    /// options describe, from defaults.
    pub fn config(&self) -> crate::diagnose::DiagnoseConfig {
        let mut config = crate::diagnose::DiagnoseConfig::default();
        config.cluster.num_clusters = self.clusters;
        config.cluster.distance_threshold = self.threshold;
        config.max_clusters = self.max_clusters;
        config
    }

    /// Absorbs one `key`/`value` pair; `Ok(false)` for unowned keys,
    /// `Err` for owned keys with invalid values.
    pub fn absorb(&mut self, key: &str, value: Option<&str>) -> Result<bool, OptionsError> {
        match key {
            "clusters" => {
                let v = value.ok_or_else(|| invalid("clusters", "", "missing value"))?;
                let k = v
                    .parse::<usize>()
                    .map_err(|e| invalid("clusters", v, e.to_string()))?;
                if k == 0 {
                    return Err(invalid("clusters", v, "must be at least 1"));
                }
                self.clusters = Some(k);
            }
            "cluster-threshold" => {
                let v = value.ok_or_else(|| invalid("cluster-threshold", "", "missing value"))?;
                let t = v
                    .parse::<f64>()
                    .map_err(|e| invalid("cluster-threshold", v, e.to_string()))?;
                if !t.is_finite() || t <= 0.0 {
                    return Err(invalid("cluster-threshold", v, "must be finite and > 0"));
                }
                self.threshold = t;
            }
            "max-clusters" => {
                let v = value.ok_or_else(|| invalid("max-clusters", "", "missing value"))?;
                let n = v
                    .parse::<usize>()
                    .map_err(|e| invalid("max-clusters", v, e.to_string()))?;
                if n == 0 {
                    return Err(invalid("max-clusters", v, "must be at least 1"));
                }
                self.max_clusters = n;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Encodes the non-default knobs as URL query parameters, in
    /// [`KEYS`](DiagnoseOptions::KEYS) order.
    pub fn to_query(&self) -> String {
        let defaults = DiagnoseOptions::default();
        let mut parts = Vec::new();
        if let Some(k) = self.clusters {
            parts.push(format!("clusters={k}"));
        }
        if self.threshold != defaults.threshold {
            parts.push(format!("cluster-threshold={}", self.threshold));
        }
        if self.max_clusters != defaults.max_clusters {
            parts.push(format!("max-clusters={}", self.max_clusters));
        }
        parts.join("&")
    }

    /// Decodes the owned keys out of a raw URL query string, ignoring
    /// everything else.
    pub fn from_query(query: &str) -> Result<DiagnoseOptions, OptionsError> {
        let mut options = DiagnoseOptions::default();
        for pair in query.split('&') {
            if pair.is_empty() {
                continue;
            }
            let (key, value) = match pair.split_once('=') {
                Some((k, v)) => (percent_decode(k), Some(percent_decode(v))),
                None => (percent_decode(pair), None),
            };
            options.absorb(&key, value.as_deref())?;
        }
        Ok(options)
    }

    /// Encodes the non-default knobs as CLI flags, in
    /// [`KEYS`](DiagnoseOptions::KEYS) order.
    pub fn to_flags(&self) -> Vec<String> {
        let defaults = DiagnoseOptions::default();
        let mut flags = Vec::new();
        if let Some(k) = self.clusters {
            flags.push("--clusters".to_string());
            flags.push(k.to_string());
        }
        if self.threshold != defaults.threshold {
            flags.push("--cluster-threshold".to_string());
            flags.push(self.threshold.to_string());
        }
        if self.max_clusters != defaults.max_clusters {
            flags.push("--max-clusters".to_string());
            flags.push(self.max_clusters.to_string());
        }
        flags
    }
}

/// Percent-encodes everything outside the RFC 3986 unreserved set.
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Decodes `%XX` escapes; `+` stays literal, malformed escapes pass
/// through verbatim.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let (Some(h), Some(l)) = (
                bytes.get(i + 1).and_then(|b| (*b as char).to_digit(16)),
                bytes.get(i + 2).and_then(|b| (*b as char).to_digit(16)),
            ) {
                out.push((h * 16 + l) as u8);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_encode_to_nothing() {
        let o = AnalysisOptions::default();
        assert_eq!(o.to_query(), "");
        assert!(o.to_flags().is_empty());
        assert_eq!(AnalysisOptions::from_query("").unwrap(), o);
    }

    #[test]
    fn unknown_query_keys_pass_through() {
        let o =
            AnalysisOptions::from_query("path=%2Ftmp%2Fa.pvta&threads=4&steps=2&partial").unwrap();
        assert_eq!(o.threads, 4);
        assert!(o.partial);
        assert_eq!(o.function, None);
    }

    #[test]
    fn bad_values_name_the_key() {
        let err = AnalysisOptions::from_query("multiplier=abc").unwrap_err();
        assert_eq!(err.key, "multiplier");
        let err = AnalysisOptions::from_query("read-buffer=0").unwrap_err();
        assert_eq!(err.key, "read-buffer");
        assert!(err.to_string().contains("at least 1 byte"), "{err}");
        let err = AnalysisOptions::from_query("function=").unwrap_err();
        assert_eq!(err.key, "function");
    }

    #[test]
    fn config_round_trip() {
        let o = AnalysisOptions {
            function: Some("MPI_Allreduce".into()),
            threads: 7,
            mmap: false,
            partial: true,
            ..AnalysisOptions::default()
        };
        let config = o.config();
        assert_eq!(config.segment_function.as_deref(), Some("MPI_Allreduce"));
        assert_eq!(config.threads, 7);
        assert!(!config.mmap);
        assert_eq!(o.recovery_mode(), RecoveryMode::Partial);
        assert_eq!(
            AnalysisOptions::from_config(&config, RecoveryMode::Partial),
            o
        );
    }

    /// Parses flags the way a CLI argv scanner would: `--key value`
    /// for valued keys, bare `--key` for boolean flags.
    fn parse_flags(flags: &[String]) -> AnalysisOptions {
        let mut o = AnalysisOptions::default();
        let mut i = 0;
        while i < flags.len() {
            let key = flags[i].trim_start_matches("--");
            let valued = !matches!(key, "no-mmap" | "partial");
            let value = if valued {
                i += 1;
                Some(flags[i].as_str())
            } else {
                None
            };
            assert!(o.absorb(key, value).unwrap(), "unowned flag {key}");
            i += 1;
        }
        o
    }

    fn arb_options() -> impl Strategy<Value = AnalysisOptions> {
        (
            (0u8..2, "\\PC{1,24}"),
            (0u64..100, 0usize..64, 1usize..(64 << 20)),
            0u8..4,
        )
            .prop_map(
                |((has_function, name), (multiplier, threads, read_buffer), bits)| {
                    AnalysisOptions {
                        function: (has_function == 1).then_some(name),
                        multiplier,
                        threads,
                        read_buffer,
                        mmap: bits & 1 == 0,
                        partial: bits & 2 != 0,
                    }
                },
            )
    }

    #[test]
    fn diagnose_defaults_encode_to_nothing() {
        let o = DiagnoseOptions::default();
        assert_eq!(o.to_query(), "");
        assert!(o.to_flags().is_empty());
        assert_eq!(DiagnoseOptions::from_query("").unwrap(), o);
        let config = o.config();
        assert_eq!(config.max_clusters, 20);
    }

    #[test]
    fn diagnose_bad_values_name_the_key() {
        let err = DiagnoseOptions::from_query("clusters=0").unwrap_err();
        assert_eq!(err.key, "clusters");
        let err = DiagnoseOptions::from_query("cluster-threshold=-1").unwrap_err();
        assert_eq!(err.key, "cluster-threshold");
        let err = DiagnoseOptions::from_query("cluster-threshold=nope").unwrap_err();
        assert_eq!(err.key, "cluster-threshold");
        let err = DiagnoseOptions::from_query("max-clusters=0").unwrap_err();
        assert_eq!(err.key, "max-clusters");
        // Unknown keys pass through untouched.
        let o = DiagnoseOptions::from_query("path=%2Ftmp%2Fx&clusters=3").unwrap();
        assert_eq!(o.clusters, Some(3));
    }

    /// Parses diagnose flags like a CLI argv scanner (all keys valued).
    fn parse_diagnose_flags(flags: &[String]) -> DiagnoseOptions {
        let mut o = DiagnoseOptions::default();
        let mut i = 0;
        while i < flags.len() {
            let key = flags[i].trim_start_matches("--");
            i += 1;
            assert!(
                o.absorb(key, Some(flags[i].as_str())).unwrap(),
                "unowned flag {key}"
            );
            i += 1;
        }
        o
    }

    fn arb_diagnose_options() -> impl Strategy<Value = DiagnoseOptions> {
        (0usize..9, 1u32..400, 1usize..64).prop_map(|(k, threshold_cents, max_clusters)| {
            DiagnoseOptions {
                // k == 0 doubles as the None arm.
                clusters: (k > 0).then_some(k),
                // Hundredths keep the value finite and positive; float
                // Display/parse round-trips exactly.
                threshold: threshold_cents as f64 / 100.0,
                max_clusters,
            }
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The drift-proofing invariant: both codecs round-trip any
        /// option set, so every surface speaks the same dialect.
        #[test]
        fn query_and_flag_codecs_round_trip(o in arb_options()) {
            prop_assert_eq!(&AnalysisOptions::from_query(&o.to_query()).unwrap(), &o);
            prop_assert_eq!(&parse_flags(&o.to_flags()), &o);
        }

        /// Same invariant for the diagnosis knobs.
        #[test]
        fn diagnose_codecs_round_trip(o in arb_diagnose_options()) {
            prop_assert_eq!(&DiagnoseOptions::from_query(&o.to_query()).unwrap(), &o);
            prop_assert_eq!(&parse_diagnose_flags(&o.to_flags()), &o);
        }
    }
}
