//! Out-of-core analysis: feed the fused pipeline straight from disk.
//!
//! [`analyze`](crate::report::analyze) needs a materialised
//! [`Trace`](perfvar_trace::Trace) — `O(events)` memory — even though the
//! fused pipeline itself only ever looks at one record at a time.
//! [`analyze_path`] removes that requirement: it drives the *same* sinks
//! ([`ProfileSink`](crate::profile), [`FusedSink`](crate::fused)) through
//! the *same* stack machine ([`ReplayMachine`]) from the incremental
//! format cursors of `perfvar-trace`
//! ([`ArchiveCursor`], [`PvtStreamReader`]), so the result is
//! bit-identical to the in-memory pipeline (property-tested in
//! `tests/properties.rs`) while each worker holds only
//!
//! `O(read buffer + stack depth + segments + functions + metrics)`
//!
//! — independent of trace length.
//!
//! ## Data flow
//!
//! ```text
//! archive dir ──► ArchiveCursor ──► stream(p)   (one per rank, parallel)
//!                                      │ EventRecord
//!                                      ▼
//!                                 ReplayMachine ──► ProfileSink   (pass 1)
//!                                      │                │ rows
//!                                      │                ▼
//!                                      │        ProfileTable::from_rows
//!                                      │                │ dominant function
//!                                      ▼                ▼
//!                                 ReplayMachine ──► FusedSink     (pass 2)
//!                                                       │ segments + rows
//!                                                       ▼
//!                                                  merge_fused ──► assemble
//! ```
//!
//! Two passes are inherent: the dominant function that segments the run
//! is only known after the profile pass. Archives fan the ranks out over
//! [`par_map_ranks`] workers in both passes; single-file PVT traces are
//! decoded sequentially (the streams are concatenated in one file) but
//! still in `O(1)` memory per pass.
//!
//! ## Damaged inputs
//!
//! A truncated or corrupt stream tail surfaces as
//! [`TraceError::CorruptStream`] naming the process and byte offset. In
//! [`RecoveryMode::Strict`] (the default of [`analyze_path`]) that error
//! aborts the analysis. [`RecoveryMode::Partial`] instead records a
//! [`StreamFailure`] per unreadable rank and analyses the recovered ones
//! — a failed rank contributes exactly what an empty stream would, and
//! [`OutOfCoreAnalysis::failures`] reports what was lost. Note that in a
//! single-file PVT trace every rank *after* a corrupt stream is also
//! unreachable (the file is sequential), while archive ranks fail
//! independently.

use crate::dominant::DominantRanking;
use crate::fused::{merge_fused, metric_modes, FusedSink};
use crate::parallel::par_map_ranks;
use crate::profile::{ProfileRow, ProfileSink, ProfileTable};
use crate::report::{assemble, segmentation_function, Analysis, AnalysisConfig, AnalysisError};
use crate::segment::Segment;
use crate::stream::ReplayMachine;
use crate::telemetry::{Stage, Telemetry};
use perfvar_trace::format::cursor::ArchiveCursor;
use perfvar_trace::format::pvt::PvtStreamReader;
use perfvar_trace::format::{read_trace_file, Format};
use perfvar_trace::{
    EventRecord, MetricMode, ProcessId, Registry, Timestamp, TraceError, TraceMeta,
};
use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

/// What to do when a per-process stream cannot be decoded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Abort on the first stream error (the default): the analysis either
    /// covers the whole trace or fails with the typed
    /// [`TraceError::CorruptStream`].
    #[default]
    Strict,
    /// Analyse the readable ranks; record a [`StreamFailure`] for each
    /// unreadable one. Failed ranks contribute like empty streams.
    Partial,
}

/// One rank that could not be analysed in [`RecoveryMode::Partial`].
#[derive(Debug)]
pub struct StreamFailure {
    /// The rank whose stream failed.
    pub process: ProcessId,
    /// Why — typically [`TraceError::CorruptStream`] with the byte
    /// offset, or an I/O error for a missing stream file.
    pub error: TraceError,
}

/// Errors of the out-of-core pipeline: either the file could not be
/// decoded, or the (successfully decoded) trace failed the analysis
/// itself (no dominant function, unknown override).
#[derive(Debug)]
pub enum PathAnalysisError {
    /// Reading or decoding the trace file failed.
    Trace(TraceError),
    /// The analysis pipeline rejected the trace.
    Analysis(AnalysisError),
}

impl fmt::Display for PathAnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathAnalysisError::Trace(e) => write!(f, "{e}"),
            PathAnalysisError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PathAnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PathAnalysisError::Trace(e) => Some(e),
            PathAnalysisError::Analysis(e) => Some(e),
        }
    }
}

impl From<TraceError> for PathAnalysisError {
    fn from(e: TraceError) -> PathAnalysisError {
        PathAnalysisError::Trace(e)
    }
}

impl From<AnalysisError> for PathAnalysisError {
    fn from(e: AnalysisError) -> PathAnalysisError {
        PathAnalysisError::Analysis(e)
    }
}

/// The result of an out-of-core analysis: the [`Analysis`] itself plus
/// the trace metadata gathered while streaming (there is no
/// [`Trace`](perfvar_trace::Trace) to consult afterwards) and, in
/// [`RecoveryMode::Partial`], the ranks that could not be read.
#[derive(Debug)]
pub struct OutOfCoreAnalysis {
    /// The pipeline result — bit-identical to
    /// [`analyze`](crate::report::analyze) of the same trace.
    pub analysis: Analysis,
    /// Name, clock, registry and extent of the analysed trace. In
    /// partial mode, event count and span cover the recovered ranks only.
    pub meta: TraceMeta,
    /// Ranks that could not be analysed (empty in strict mode).
    pub failures: Vec<StreamFailure>,
}

impl OutOfCoreAnalysis {
    /// Whether any rank was lost to a stream failure.
    pub fn is_partial(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Number of ranks whose streams decoded fully.
    pub fn recovered_ranks(&self) -> usize {
        self.meta.num_processes() - self.failures.len()
    }

    /// Re-runs the out-of-core pipeline with the next-finer segmentation
    /// function (§VII-B refinement, mirroring
    /// [`Analysis::refine`]). Returns `Ok(None)` when no finer candidate
    /// exists.
    pub fn refine(
        &self,
        path: impl AsRef<Path>,
        config: &AnalysisConfig,
        mode: RecoveryMode,
    ) -> Result<Option<OutOfCoreAnalysis>, PathAnalysisError> {
        let Some(pos) = self
            .analysis
            .dominant
            .candidates
            .iter()
            .position(|f| *f == self.analysis.function)
        else {
            return Ok(None);
        };
        let Some(next) = self.analysis.dominant.candidates.get(pos + 1) else {
            return Ok(None);
        };
        let next_name = self.meta.registry.function_name(*next).to_string();
        let cfg = AnalysisConfig {
            segment_function: Some(next_name),
            ..config.clone()
        };
        analyze_path_with(path, &cfg, mode).map(Some)
    }
}

/// Runs the full analysis pipeline on a trace *file* without
/// materialising the trace, in [`RecoveryMode::Strict`].
///
/// Archives (`.pvta`) stream one cursor per rank on
/// [`AnalysisConfig::threads`] workers; binary traces (`.pvt`) stream
/// sequentially; text traces (`.pvtx`) are loaded (they are
/// human-scale by construction). The result equals
/// [`analyze`](crate::report::analyze) of
/// [`read_trace_file`] bit for bit.
///
/// ```
/// use perfvar_analysis::outofcore::analyze_path;
/// use perfvar_analysis::report::{analyze, AnalysisConfig};
/// use perfvar_trace::format::write_trace_file;
/// use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};
///
/// // Two ranks, six iterations each, written as a PVTA archive.
/// let mut b = TraceBuilder::new(Clock::microseconds()).with_name("demo");
/// let f = b.define_function("iteration", FunctionRole::Compute);
/// for pi in 0..2u64 {
///     let p = b.define_process(format!("rank {pi}"));
///     let w = b.process_mut(p);
///     for k in 0..6u64 {
///         w.enter(Timestamp(k * 10), f).unwrap();
///         w.leave(Timestamp(k * 10 + 4 + pi), f).unwrap();
///     }
/// }
/// let trace = b.finish().unwrap();
/// let dir = std::env::temp_dir().join("perfvar-analyze-path-doc.pvta");
/// write_trace_file(&trace, &dir).unwrap();
///
/// let config = AnalysisConfig::default();
/// let from_disk = analyze_path(&dir, &config).unwrap();
/// let in_memory = analyze(&trace, &config).unwrap();
/// assert_eq!(from_disk, in_memory);
/// ```
pub fn analyze_path(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
) -> Result<Analysis, PathAnalysisError> {
    analyze_path_with(path, config, RecoveryMode::Strict).map(|r| r.analysis)
}

/// Like [`analyze_path`] but with an explicit [`RecoveryMode`] and the
/// full [`OutOfCoreAnalysis`] result (trace metadata, failed ranks).
pub fn analyze_path_with(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
    mode: RecoveryMode,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    analyze_path_observed(path, config, mode, &Telemetry::noop())
}

/// Like [`analyze_path_with`] but recording per-stage wall time,
/// decode/replay throughput and peak-state gauges into `telemetry` (see
/// [`crate::telemetry`]), including one progress tick per completed rank.
/// With [`Telemetry::noop`] this *is* [`analyze_path_with`].
pub fn analyze_path_observed(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    telemetry: &Telemetry,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    let path = path.as_ref();
    match Format::from_path(path) {
        Format::Archive => analyze_archive(path, config, mode, telemetry),
        Format::Pvt => analyze_pvt(path, config, mode, telemetry),
        Format::Text => {
            // Text traces are for inspection and tests — human-scale by
            // construction — so loading them is fine.
            let trace = {
                let _span = telemetry.span(Stage::Load);
                let trace = read_trace_file(path)?;
                let mut w = telemetry.worker(Stage::Load);
                w.bytes(std::fs::metadata(path).map(|m| m.len()).unwrap_or(0));
                trace
            };
            let analysis = crate::report::analyze_observed(&trace, config, telemetry)?;
            Ok(OutOfCoreAnalysis {
                meta: TraceMeta::of(&trace),
                analysis,
                failures: Vec::new(),
            })
        }
    }
}

/// Per-rank result of the profile pass: the profile rows plus the
/// rank's contribution to the trace metadata.
struct RankProfile {
    rows: Vec<ProfileRow>,
    num_events: u64,
    first: Option<Timestamp>,
    last: Option<Timestamp>,
}

impl RankProfile {
    fn empty(num_functions: usize) -> RankProfile {
        RankProfile {
            rows: vec![ProfileRow::default(); num_functions],
            num_events: 0,
            first: None,
            last: None,
        }
    }
}

/// An empty fused partial — what a failed rank contributes (identical to
/// an empty stream).
fn empty_fused(num_metrics: usize) -> (Vec<Segment>, Vec<Vec<u64>>) {
    (Vec::new(), vec![Vec::new(); num_metrics])
}

/// Accumulates trace extent while streaming.
#[derive(Default)]
struct Extent {
    num_events: u64,
    first: Option<Timestamp>,
    last: Option<Timestamp>,
}

impl Extent {
    fn record(&mut self, time: Timestamp) {
        self.num_events += 1;
        if self.first.is_none_or(|f| time < f) {
            self.first = Some(time);
        }
        if self.last.is_none_or(|l| time > l) {
            self.last = Some(time);
        }
    }

    fn absorb(&mut self, num_events: u64, first: Option<Timestamp>, last: Option<Timestamp>) {
        self.num_events += num_events;
        if let Some(f) = first {
            if self.first.is_none_or(|cur| f < cur) {
                self.first = Some(f);
            }
        }
        if let Some(l) = last {
            if self.last.is_none_or(|cur| l > cur) {
                self.last = Some(l);
            }
        }
    }

    fn meta(self, name: String, clock: perfvar_trace::Clock, registry: Registry) -> TraceMeta {
        TraceMeta {
            name,
            clock,
            registry,
            num_events: self.num_events,
            begin: self.first.unwrap_or(Timestamp::ZERO),
            end: self.last.unwrap_or(Timestamp::ZERO),
        }
    }
}

/// Archive driver: both passes fan the ranks out over worker threads,
/// each worker streaming its rank's file through a cursor.
fn analyze_archive(
    dir: &Path,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    telemetry: &Telemetry,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    let cursor = ArchiveCursor::open(dir)?;
    let registry = cursor.registry();
    let np = cursor.num_processes();
    let nf = registry.num_functions();

    // Pass 1: profile every rank (+ extent for the metadata).
    telemetry.begin_ranks(Stage::Profile, np);
    let pass1: Vec<Result<RankProfile, TraceError>> = {
        let _span = telemetry.span(Stage::Profile);
        par_map_ranks(np, config.threads, |pid| {
            profile_rank(&cursor, pid, nf, telemetry)
        })
    };

    let mut failed = vec![false; np];
    let mut failures = Vec::new();
    let mut extent = Extent::default();
    let mut partial_rows = Vec::with_capacity(np);
    for (i, result) in pass1.into_iter().enumerate() {
        match result {
            Ok(rank) => {
                extent.absorb(rank.num_events, rank.first, rank.last);
                partial_rows.push(rank.rows);
            }
            Err(error) => {
                if mode == RecoveryMode::Strict {
                    return Err(error.into());
                }
                failed[i] = true;
                telemetry.count_recovery(1);
                failures.push(StreamFailure {
                    process: ProcessId::from_index(i),
                    error,
                });
                partial_rows.push(RankProfile::empty(nf).rows);
            }
        }
    }

    let profiles = ProfileTable::from_rows(nf, partial_rows);
    let ranking = DominantRanking::with_multiplier_for(np, &profiles, config.dominant_multiplier);
    let dominant = ranking.selection();
    let function = segmentation_function(registry, &dominant, config)?;

    // Pass 2: fused segmentation + counters, skipping ranks that already
    // failed the profile pass.
    let modes = metric_modes(registry, config.analyze_counters);
    let failed_ref = &failed;
    telemetry.begin_ranks(Stage::Fuse, np);
    let pass2: Vec<Result<FusedPartial, TraceError>> = {
        let _span = telemetry.span(Stage::Fuse);
        par_map_ranks(np, config.threads, |pid| {
            if failed_ref[pid.index()] {
                return Ok(empty_fused(modes.len()));
            }
            fuse_rank(&cursor, pid, function, &modes, telemetry)
        })
    };

    let mut partials = Vec::with_capacity(np);
    for (i, result) in pass2.into_iter().enumerate() {
        match result {
            Ok(partial) => partials.push(partial),
            Err(error) => {
                if mode == RecoveryMode::Strict {
                    return Err(error.into());
                }
                // The file changed between the passes; degrade the rank.
                telemetry.count_recovery(1);
                failures.push(StreamFailure {
                    process: ProcessId::from_index(i),
                    error,
                });
                partials.push(empty_fused(modes.len()));
            }
        }
    }
    failures.sort_by_key(|f| f.process.index());

    let _span = telemetry.span(Stage::Assemble);
    let fused = merge_fused(registry, function, &modes, partials);
    let meta = extent.meta(cursor.name().to_string(), cursor.clock(), registry.clone());
    let analysis = assemble(
        meta.name.clone(),
        config,
        dominant,
        function,
        profiles,
        fused.segmentation,
        fused.counters,
    );
    Ok(OutOfCoreAnalysis {
        analysis,
        meta,
        failures,
    })
}

/// Streams one archive rank through the profile sink.
fn profile_rank(
    cursor: &ArchiveCursor,
    pid: ProcessId,
    num_functions: usize,
    telemetry: &Telemetry,
) -> Result<RankProfile, TraceError> {
    let mut stream = cursor.stream(pid)?;
    let mut machine = ReplayMachine::new(cursor.registry());
    let mut sink = ProfileSink::new(num_functions);
    let mut extent = Extent::default();
    while let Some(record) = stream.next_record()? {
        extent.record(record.time);
        machine.step(&record, &mut sink);
    }
    machine.finish(&mut sink);
    let mut w = telemetry.worker(Stage::Profile);
    w.events(machine.events_stepped());
    w.bytes(stream.byte_offset());
    w.stack_depth(machine.max_depth());
    drop(w);
    telemetry.rank_done();
    Ok(RankProfile {
        rows: sink.rows,
        num_events: extent.num_events,
        first: extent.first,
        last: extent.last,
    })
}

/// One rank's fused-pass partial: its segments plus one counter row per
/// metric channel.
type FusedPartial = (Vec<Segment>, Vec<Vec<u64>>);

/// Streams one archive rank through the fused sink.
fn fuse_rank(
    cursor: &ArchiveCursor,
    pid: ProcessId,
    function: perfvar_trace::FunctionId,
    modes: &[MetricMode],
    telemetry: &Telemetry,
) -> Result<FusedPartial, TraceError> {
    let mut stream = cursor.stream(pid)?;
    let mut machine = ReplayMachine::new(cursor.registry());
    let mut sink = FusedSink::new(pid, function, modes);
    while let Some(record) = stream.next_record()? {
        machine.step(&record, &mut sink);
    }
    machine.finish(&mut sink);
    let mut w = telemetry.worker(Stage::Fuse);
    w.events(machine.events_stepped());
    w.bytes(stream.byte_offset());
    w.stack_depth(machine.max_depth());
    w.live_segments(sink.peak_open());
    w.sos_clamped(sink.sos_underflows());
    let parts = sink.into_parts();
    w.segments(parts.0.len() as u64);
    drop(w);
    telemetry.rank_done();
    Ok(parts)
}

fn open_annotated(path: &Path) -> Result<File, TraceError> {
    File::open(path).map_err(|e| {
        TraceError::Io(std::io::Error::new(
            e.kind(),
            format!("{}: {e}", path.display()),
        ))
    })
}

/// The outcome of one sequential pass over a PVT file: per-rank results
/// for ranks `0..first_failed`, the error that stopped the pass, and the
/// pass's telemetry figures (events stepped, bytes decoded, peak depth).
struct SequentialPass<T> {
    per_rank: Vec<T>,
    error: Option<(ProcessId, TraceError)>,
    events: u64,
    bytes: u64,
    max_depth: usize,
}

/// Drives one pass over a single-file PVT trace: `make_sink` opens a
/// fresh sink per rank, `close` extracts its per-rank result. Ranks with
/// no events still produce a (default) result, in rank order.
fn pvt_pass<S, T>(
    path: &Path,
    registry: &Registry,
    num_processes: usize,
    mut make_sink: impl FnMut(ProcessId) -> S,
    mut feed: impl FnMut(&mut S, &EventRecord, &mut ReplayMachine),
    mut close: impl FnMut(S, &mut ReplayMachine) -> T,
) -> Result<SequentialPass<T>, TraceError> {
    let mut reader = PvtStreamReader::new(BufReader::new(open_annotated(path)?))?;
    let mut machine = ReplayMachine::new(registry);
    let mut per_rank: Vec<T> = Vec::with_capacity(num_processes);
    let mut current: Option<(ProcessId, S)> = None;
    let mut error = None;

    for item in reader.by_ref() {
        match item {
            Ok((pid, record)) => {
                let switching = !matches!(&current, Some((active, _)) if *active == pid);
                if switching {
                    // Close the active rank, pad ranks with no events,
                    // and open the new one.
                    if let Some((_, sink)) = current.take() {
                        per_rank.push(close(sink, &mut machine));
                    }
                    while per_rank.len() < pid.index() {
                        let empty = make_sink(ProcessId::from_index(per_rank.len()));
                        per_rank.push(close(empty, &mut machine));
                    }
                    current = Some((pid, make_sink(pid)));
                }
                let (_, sink) = current.as_mut().expect("sink opened above");
                feed(sink, &record, &mut machine);
            }
            Err(e) => {
                // The reader names the failing process; everything from
                // there on is unreachable in a sequential file.
                let failing = match &e {
                    TraceError::CorruptStream { process, .. } => *process,
                    _ => current
                        .as_ref()
                        .map(|(pid, _)| *pid)
                        .unwrap_or(ProcessId::from_index(per_rank.len())),
                };
                error = Some((failing, e));
                break;
            }
        }
    }
    if error.is_none() {
        if let Some((_, sink)) = current.take() {
            per_rank.push(close(sink, &mut machine));
        }
        while per_rank.len() < num_processes {
            let empty = make_sink(ProcessId::from_index(per_rank.len()));
            per_rank.push(close(empty, &mut machine));
        }
    }
    Ok(SequentialPass {
        per_rank,
        error,
        events: machine.events_stepped(),
        bytes: reader.byte_offset(),
        max_depth: machine.max_depth(),
    })
}

/// Single-file PVT driver: two sequential passes, `O(1)` memory each.
fn analyze_pvt(
    path: &Path,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    telemetry: &Telemetry,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    // Header only: name, clock, registry (the streams start after).
    let header = PvtStreamReader::new(BufReader::new(open_annotated(path)?))?;
    let name = header.name().to_string();
    let clock = header.clock();
    let registry = header.registry().clone();
    drop(header);
    let np = registry.num_processes();
    let nf = registry.num_functions();

    // Pass 1: profile + extent.
    telemetry.begin_ranks(Stage::Profile, np);
    let mut extent = Extent::default();
    let pass1 = {
        let _span = telemetry.span(Stage::Profile);
        pvt_pass(
            path,
            &registry,
            np,
            |_| ProfileSink::new(nf),
            |sink, record, machine| {
                extent.record(record.time);
                machine.step(record, sink);
            },
            |mut sink, machine| {
                machine.finish(&mut sink);
                telemetry.rank_done();
                sink.rows
            },
        )?
    };
    {
        let mut w = telemetry.worker(Stage::Profile);
        w.events(pass1.events);
        w.bytes(pass1.bytes);
        w.stack_depth(pass1.max_depth);
    }
    let mut failures = Vec::new();
    let mut first_failed = np;
    let mut partial_rows = pass1.per_rank;
    if let Some((failing, error)) = pass1.error {
        if mode == RecoveryMode::Strict {
            return Err(error.into());
        }
        first_failed = partial_rows.len().min(failing.index());
        partial_rows.truncate(first_failed);
        telemetry.count_recovery((np - first_failed) as u64);
        failures.push(StreamFailure {
            process: failing,
            error,
        });
        for i in first_failed..np {
            let pid = ProcessId::from_index(i);
            if pid != failing {
                failures.push(StreamFailure {
                    process: pid,
                    error: TraceError::Corrupt(format!(
                        "stream of {pid} is unreachable behind the corrupt stream of {failing}"
                    )),
                });
            }
            partial_rows.push(vec![ProfileRow::default(); nf]);
        }
        failures.sort_by_key(|f| f.process.index());
    }

    let profiles = ProfileTable::from_rows(nf, partial_rows);
    let ranking = DominantRanking::with_multiplier_for(np, &profiles, config.dominant_multiplier);
    let dominant = ranking.selection();
    let function = segmentation_function(&registry, &dominant, config)?;

    // Pass 2: fused segmentation + counters. In partial mode the pass
    // stops where pass 1 did; unreachable ranks contribute empties.
    let modes = metric_modes(&registry, config.analyze_counters);
    telemetry.begin_ranks(Stage::Fuse, np);
    let pass2 = {
        let _span = telemetry.span(Stage::Fuse);
        pvt_pass(
            path,
            &registry,
            np,
            |pid| FusedSink::new(pid, function, &modes),
            |sink, record, machine| machine.step(record, sink),
            |mut sink, machine| {
                machine.finish(&mut sink);
                telemetry.rank_done();
                let mut w = telemetry.worker(Stage::Fuse);
                w.live_segments(sink.peak_open());
                w.sos_clamped(sink.sos_underflows());
                let parts = sink.into_parts();
                w.segments(parts.0.len() as u64);
                parts
            },
        )?
    };
    {
        let mut w = telemetry.worker(Stage::Fuse);
        w.events(pass2.events);
        w.bytes(pass2.bytes);
        w.stack_depth(pass2.max_depth);
    }
    let mut partials = pass2.per_rank;
    if let Some((_, error)) = pass2.error {
        if mode == RecoveryMode::Strict {
            return Err(error.into());
        }
    }
    partials.truncate(first_failed.min(partials.len()));
    while partials.len() < np {
        partials.push(empty_fused(modes.len()));
    }

    let _span = telemetry.span(Stage::Assemble);
    let fused = merge_fused(&registry, function, &modes, partials);
    let meta = extent.meta(name, clock, registry);
    let analysis = assemble(
        meta.name.clone(),
        config,
        dominant,
        function,
        profiles,
        fused.segmentation,
        fused.counters,
    );
    Ok(OutOfCoreAnalysis {
        analysis,
        meta,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::analyze;
    use perfvar_trace::format::{archive, write_trace_file};
    use perfvar_trace::{Clock, FunctionRole, MetricMode as Mode, Trace, TraceBuilder};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfvar-outofcore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Multi-rank trace with nested calls, sync functions, and all three
    /// metric modes.
    fn rich_trace(ranks: u64) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("ooc");
        let iter_f = b.define_function("iteration", FunctionRole::Compute);
        let inner_f = b.define_function("inner", FunctionRole::Compute);
        let mpi_f = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        let acc = b.define_metric("CYC", Mode::Accumulating, "cycles");
        let del = b.define_metric("EXC", Mode::Delta, "#");
        for pi in 0..ranks {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = 0u64;
            let mut cyc = 0u64;
            for k in 0..6u64 {
                let load = 100 + (pi * 13 + k * 7) % 40;
                w.enter(Timestamp(t), iter_f).unwrap();
                w.metric(Timestamp(t), acc, cyc).unwrap();
                w.enter(Timestamp(t + 5), inner_f).unwrap();
                w.metric(Timestamp(t + 9), del, k + 1).unwrap();
                w.leave(Timestamp(t + load / 2), inner_f).unwrap();
                t += load;
                cyc += load * 3;
                w.enter(Timestamp(t), mpi_f).unwrap();
                w.leave(Timestamp(t + 20), mpi_f).unwrap();
                t += 20;
                w.metric(Timestamp(t), acc, cyc).unwrap();
                w.leave(Timestamp(t), iter_f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn archive_path_equals_in_memory() {
        let trace = rich_trace(5);
        let dir = tmp("eq.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let config = AnalysisConfig::default();
        let reference = analyze(&trace, &config).unwrap();
        for threads in [1usize, 2, 0] {
            let cfg = AnalysisConfig {
                threads,
                ..config.clone()
            };
            let ooc = analyze_path_with(&dir, &cfg, RecoveryMode::Strict).unwrap();
            assert_eq!(ooc.analysis, reference, "threads = {threads}");
            assert_eq!(ooc.meta, TraceMeta::of(&trace));
            assert!(!ooc.is_partial());
        }
    }

    #[test]
    fn pvt_path_equals_in_memory() {
        let trace = rich_trace(4);
        let path = tmp("eq.pvt");
        write_trace_file(&trace, &path).unwrap();
        let config = AnalysisConfig::default();
        assert_eq!(
            analyze_path(&path, &config).unwrap(),
            analyze(&trace, &config).unwrap()
        );
    }

    #[test]
    fn text_path_equals_in_memory() {
        let trace = rich_trace(3);
        let path = tmp("eq.pvtx");
        write_trace_file(&trace, &path).unwrap();
        let config = AnalysisConfig::default();
        assert_eq!(
            analyze_path(&path, &config).unwrap(),
            analyze(&trace, &config).unwrap()
        );
    }

    #[test]
    fn truncated_archive_stream_strict_names_rank_and_offset() {
        let trace = rich_trace(4);
        let dir = tmp("trunc.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let stream2 = dir.join(archive::stream_file(2));
        let bytes = std::fs::read(&stream2).unwrap();
        std::fs::write(&stream2, &bytes[..bytes.len() - 9]).unwrap();

        let err = analyze_path(&dir, &AnalysisConfig::default()).unwrap_err();
        let PathAnalysisError::Trace(TraceError::CorruptStream {
            process, offset, ..
        }) = err
        else {
            panic!("expected CorruptStream, got {err}");
        };
        assert_eq!(process, ProcessId(2));
        assert!(offset > 0 && offset < bytes.len() as u64);
    }

    #[test]
    fn truncated_archive_stream_partial_recovers_other_ranks() {
        let trace = rich_trace(4);
        let dir = tmp("partial.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let stream1 = dir.join(archive::stream_file(1));
        let bytes = std::fs::read(&stream1).unwrap();
        std::fs::write(&stream1, &bytes[..bytes.len() - 7]).unwrap();

        let config = AnalysisConfig::default();
        let ooc = analyze_path_with(&dir, &config, RecoveryMode::Partial).unwrap();
        assert!(ooc.is_partial());
        assert_eq!(ooc.recovered_ranks(), 3);
        assert_eq!(ooc.failures.len(), 1);
        assert_eq!(ooc.failures[0].process, ProcessId(1));
        assert!(matches!(
            ooc.failures[0].error,
            TraceError::CorruptStream { .. }
        ));
        // Rank 1 contributes exactly what an empty stream would.
        assert_eq!(ooc.analysis.segmentation.process(ProcessId(1)).len(), 0);
        assert!(!ooc.analysis.segmentation.process(ProcessId(0)).is_empty());
    }

    #[test]
    fn truncated_pvt_partial_loses_trailing_ranks() {
        let trace = rich_trace(4);
        let path = tmp("trunc.pvt");
        write_trace_file(&trace, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut deep into the file: some rank's stream ends mid-event.
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

        let config = AnalysisConfig::default();
        let strict = analyze_path(&path, &config).unwrap_err();
        assert!(
            matches!(
                strict,
                PathAnalysisError::Trace(TraceError::CorruptStream { .. })
            ),
            "{strict}"
        );

        let ooc = analyze_path_with(&path, &config, RecoveryMode::Partial).unwrap();
        assert!(ooc.is_partial());
        // Sequential file: the corrupt rank and everything after it fail.
        let first_failed = ooc.failures[0].process.index();
        assert_eq!(ooc.failures.len(), 4 - first_failed);
        assert_eq!(ooc.recovered_ranks(), first_failed);
        for i in 0..first_failed {
            assert!(!ooc
                .analysis
                .segmentation
                .process(ProcessId::from_index(i))
                .is_empty());
        }
    }

    #[test]
    fn missing_archive_stream_partial_reports_path() {
        let trace = rich_trace(3);
        let dir = tmp("missing.pvta");
        write_trace_file(&trace, &dir).unwrap();
        std::fs::remove_file(dir.join(archive::stream_file(1))).unwrap();
        let ooc =
            analyze_path_with(&dir, &AnalysisConfig::default(), RecoveryMode::Partial).unwrap();
        assert_eq!(ooc.failures.len(), 1);
        assert!(ooc.failures[0].error.to_string().contains("stream-1.pvts"));
    }

    #[test]
    fn refine_steps_to_finer_function() {
        let trace = rich_trace(4);
        let dir = tmp("refine.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let config = AnalysisConfig::default();
        let ooc = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
        let refined = ooc
            .refine(&dir, &config, RecoveryMode::Strict)
            .unwrap()
            .expect("a finer candidate exists");
        // Matches the in-memory refinement exactly.
        let reference = analyze(&trace, &config).unwrap();
        let refined_ref = reference.refine(&trace, &config).unwrap();
        assert_eq!(refined.analysis, refined_ref);
    }

    #[test]
    fn no_dominant_function_is_an_analysis_error() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("main", FunctionRole::Compute);
        let p = b.define_process("p0");
        b.process_mut(p).enter(Timestamp(0), f).unwrap();
        b.process_mut(p).leave(Timestamp(10), f).unwrap();
        let trace = b.finish().unwrap();
        let dir = tmp("nodom.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let err = analyze_path(&dir, &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            PathAnalysisError::Analysis(AnalysisError::NoDominantFunction { .. })
        ));
    }
}
