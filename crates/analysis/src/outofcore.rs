//! Out-of-core analysis: feed the fused pipeline straight from disk.
//!
//! [`analyze`](crate::report::analyze) needs a materialised
//! [`Trace`](perfvar_trace::Trace) — `O(events)` memory — even though the
//! fused pipeline itself only ever looks at one record at a time.
//! [`analyze_path`] removes that requirement: it drives the *same* sinks
//! ([`ProfileSink`](crate::profile), [`FusedSink`](crate::fused)) through
//! the *same* stack machine ([`ReplayMachine`]) from the incremental
//! format cursors of `perfvar-trace`
//! ([`ArchiveCursor`], [`PvtStreamReader`]), so the result is
//! bit-identical to the in-memory pipeline (property-tested in
//! `tests/properties.rs`) while each worker holds only
//!
//! `O(read buffer + stack depth + segments + functions + metrics)`
//!
//! — independent of trace length. Stream files are memory-mapped where
//! the platform allows it ([`AnalysisConfig::mmap`]), so "read buffer"
//! is usually the page cache itself; the buffered fallback window is
//! [`AnalysisConfig::read_buffer_bytes`].
//!
//! ## Single-pass data flow (speculative fusion)
//!
//! The segmentation function is only known *after* profiling, which
//! historically forced two full passes over every byte. The driver now
//! **predicts** it first — from the explicit
//! [`AnalysisConfig::segment_function`] override when present, else from
//! a cheap profile of a bounded prefix of rank 0 — and runs ONE combined
//! pass per rank that feeds a `ProfileSink` and a `FusedSink` for
//! the predicted function simultaneously:
//!
//! ```text
//! archive dir ──► ArchiveCursor ──► rank-0 prefix ──► predicted F
//!                                      │
//!                                      ▼ stream(p)  (work-stolen ranks)
//!                                 ReplayMachine ──► ProfileSink ┐ one
//!                                                ──► FusedSink(F)┘ pass
//!                                                       │
//!                       ProfileTable ◄── rows ──────────┤ segments+rows
//!                            │                          │
//!                   DominantRanking ──► true F' ══╦═════╧══ F' == F ?
//!                                                 ║yes: done (1 pass)
//!                                                 ╚═no: fused-only
//!                                                    re-pass with F'
//! ```
//!
//! The prediction is *verified*, never trusted: the true dominant
//! ranking is computed from the complete profiles, and only when it
//! confirms the guess are the speculative fused partials used. The
//! `FusedSink` output depends on nothing but the function it was given
//! and the event stream, so a confirmed speculation is bit-identical to
//! the two-pass result by construction; a misprediction (rare — SPMD
//! ranks profile alike, and an explicit override can never mispredict)
//! costs one fused-only re-pass, i.e. exactly the old behaviour.
//! [`OutOfCoreAnalysis::passes`] reports which case occurred.
//!
//! Archives fan the ranks out over work-stealing [`par_map_ranks`]
//! workers; single-file PVT traces are decoded sequentially (the streams
//! are concatenated in one file) but still in `O(1)` memory per pass.
//!
//! ## Damaged inputs
//!
//! A truncated or corrupt stream tail surfaces as
//! [`TraceError::CorruptStream`] naming the process and byte offset. In
//! [`RecoveryMode::Strict`] (the default of [`analyze_path`]) that error
//! aborts the analysis. [`RecoveryMode::Partial`] instead records a
//! [`StreamFailure`] per unreadable rank and analyses the recovered ones
//! — a failed rank contributes exactly what an empty stream would, and
//! [`OutOfCoreAnalysis::failures`] reports what was lost. Note that in a
//! single-file PVT trace every rank *after* a corrupt stream is also
//! unreachable (the file is sequential), while archive ranks fail
//! independently.

use crate::dominant::DominantRanking;
use crate::fused::{metric_modes, FusedSink};
use crate::parallel::par_map_ranks;
use crate::part::{AnalysisPart, PartOutcome};
use crate::profile::{ProfileRow, ProfileSink, ProfileTable};
use crate::report::{Analysis, AnalysisConfig, AnalysisError};
use crate::segment::Segment;
use crate::stream::{ClosedFrame, ReplayMachine, ReplayVisitor};
use crate::telemetry::{Stage, Telemetry};
use perfvar_trace::format::cursor::{ArchiveCursor, CursorOptions};
use perfvar_trace::format::mmap::FileReader;
use perfvar_trace::format::pvt::PvtStreamReader;
use perfvar_trace::format::{read_trace_file, Format};
use perfvar_trace::{
    EventRecord, FunctionId, MetricId, MetricMode, ProcessId, Registry, Timestamp, TraceError,
    TraceMeta,
};
use std::fmt;
use std::path::Path;

/// What to do when a per-process stream cannot be decoded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Abort on the first stream error (the default): the analysis either
    /// covers the whole trace or fails with the typed
    /// [`TraceError::CorruptStream`].
    #[default]
    Strict,
    /// Analyse the readable ranks; record a [`StreamFailure`] for each
    /// unreadable one. Failed ranks contribute like empty streams.
    Partial,
}

/// One rank that could not be analysed in [`RecoveryMode::Partial`].
#[derive(Debug)]
pub struct StreamFailure {
    /// The rank whose stream failed.
    pub process: ProcessId,
    /// Why — typically [`TraceError::CorruptStream`] with the byte
    /// offset, or an I/O error for a missing stream file.
    pub error: TraceError,
}

/// Errors of the out-of-core pipeline: either the file could not be
/// decoded, or the (successfully decoded) trace failed the analysis
/// itself (no dominant function, unknown override).
#[derive(Debug)]
pub enum PathAnalysisError {
    /// Reading or decoding the trace file failed.
    Trace(TraceError),
    /// The analysis pipeline rejected the trace.
    Analysis(AnalysisError),
}

impl fmt::Display for PathAnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathAnalysisError::Trace(e) => write!(f, "{e}"),
            PathAnalysisError::Analysis(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PathAnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PathAnalysisError::Trace(e) => Some(e),
            PathAnalysisError::Analysis(e) => Some(e),
        }
    }
}

impl From<TraceError> for PathAnalysisError {
    fn from(e: TraceError) -> PathAnalysisError {
        PathAnalysisError::Trace(e)
    }
}

impl From<AnalysisError> for PathAnalysisError {
    fn from(e: AnalysisError) -> PathAnalysisError {
        PathAnalysisError::Analysis(e)
    }
}

/// The result of an out-of-core analysis: the [`Analysis`] itself plus
/// the trace metadata gathered while streaming (there is no
/// [`Trace`](perfvar_trace::Trace) to consult afterwards) and, in
/// [`RecoveryMode::Partial`], the ranks that could not be read.
#[derive(Debug)]
pub struct OutOfCoreAnalysis {
    /// The pipeline result — bit-identical to
    /// [`analyze`](crate::report::analyze) of the same trace.
    pub analysis: Analysis,
    /// Name, clock, registry and extent of the analysed trace. In
    /// partial mode, event count and span cover the recovered ranks only.
    pub meta: TraceMeta,
    /// Ranks that could not be analysed (empty in strict mode).
    pub failures: Vec<StreamFailure>,
    /// Full passes the driver made over the event data: `1` when the
    /// speculative single pass was confirmed (the common case), `2` when
    /// a misprediction forced a fused-only re-pass.
    pub passes: u32,
}

impl OutOfCoreAnalysis {
    /// Whether any rank was lost to a stream failure.
    pub fn is_partial(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Number of ranks whose streams decoded fully.
    pub fn recovered_ranks(&self) -> usize {
        self.meta.num_processes() - self.failures.len()
    }

    /// Re-runs the out-of-core pipeline with the next-finer segmentation
    /// function (§VII-B refinement, mirroring
    /// [`Analysis::refine`]). Returns `Ok(None)` when no finer candidate
    /// exists. Refinement passes the target function explicitly, so the
    /// re-analysis is always an exact single pass.
    pub fn refine(
        &self,
        path: impl AsRef<Path>,
        config: &AnalysisConfig,
        mode: RecoveryMode,
    ) -> Result<Option<OutOfCoreAnalysis>, PathAnalysisError> {
        let Some(pos) = self
            .analysis
            .dominant
            .candidates
            .iter()
            .position(|f| *f == self.analysis.function)
        else {
            return Ok(None);
        };
        let Some(next) = self.analysis.dominant.candidates.get(pos + 1) else {
            return Ok(None);
        };
        let next_name = self.meta.registry.function_name(*next).to_string();
        let cfg = AnalysisConfig {
            segment_function: Some(next_name),
            ..config.clone()
        };
        analyze_path_with(path, &cfg, mode).map(Some)
    }
}

/// Runs the full analysis pipeline on a trace *file* without
/// materialising the trace, in [`RecoveryMode::Strict`].
///
/// Archives (`.pvta`) stream one cursor per rank on
/// [`AnalysisConfig::threads`] workers; binary traces (`.pvt`) stream
/// sequentially; text traces (`.pvtx`) are loaded (they are
/// human-scale by construction). The result equals
/// [`analyze`](crate::report::analyze) of
/// [`read_trace_file`] bit for bit.
///
/// ```
/// use perfvar_analysis::outofcore::analyze_path;
/// use perfvar_analysis::report::{analyze, AnalysisConfig};
/// use perfvar_trace::format::write_trace_file;
/// use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};
///
/// // Two ranks, six iterations each, written as a PVTA archive.
/// let mut b = TraceBuilder::new(Clock::microseconds()).with_name("demo");
/// let f = b.define_function("iteration", FunctionRole::Compute);
/// for pi in 0..2u64 {
///     let p = b.define_process(format!("rank {pi}"));
///     let w = b.process_mut(p);
///     for k in 0..6u64 {
///         w.enter(Timestamp(k * 10), f).unwrap();
///         w.leave(Timestamp(k * 10 + 4 + pi), f).unwrap();
///     }
/// }
/// let trace = b.finish().unwrap();
/// let dir = std::env::temp_dir().join("perfvar-analyze-path-doc.pvta");
/// write_trace_file(&trace, &dir).unwrap();
///
/// let config = AnalysisConfig::default();
/// let from_disk = analyze_path(&dir, &config).unwrap();
/// let in_memory = analyze(&trace, &config).unwrap();
/// assert_eq!(from_disk, in_memory);
/// ```
pub fn analyze_path(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
) -> Result<Analysis, PathAnalysisError> {
    analyze_path_with(path, config, RecoveryMode::Strict).map(|r| r.analysis)
}

/// Like [`analyze_path`] but with an explicit [`RecoveryMode`] and the
/// full [`OutOfCoreAnalysis`] result (trace metadata, failed ranks).
pub fn analyze_path_with(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
    mode: RecoveryMode,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    analyze_path_observed(path, config, mode, &Telemetry::noop())
}

/// Like [`analyze_path_with`] but recording per-stage wall time,
/// decode/replay throughput and peak-state gauges into `telemetry` (see
/// [`crate::telemetry`]), including one progress tick per completed rank.
/// With [`Telemetry::noop`] this *is* [`analyze_path_with`].
pub fn analyze_path_observed(
    path: impl AsRef<Path>,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    telemetry: &Telemetry,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    let path = path.as_ref();
    match Format::from_path(path) {
        Format::Archive => analyze_archive(path, config, mode, telemetry),
        Format::Pvt => analyze_pvt(path, config, mode, telemetry),
        Format::Text => {
            // Text traces are for inspection and tests — human-scale by
            // construction — so loading them is fine.
            let trace = {
                let _span = telemetry.span(Stage::Load);
                let trace = read_trace_file(path)?;
                let mut w = telemetry.worker(Stage::Load);
                w.bytes(std::fs::metadata(path).map(|m| m.len()).unwrap_or(0));
                trace
            };
            let analysis = crate::report::analyze_observed(&trace, config, telemetry)?;
            Ok(OutOfCoreAnalysis {
                meta: TraceMeta::of(&trace),
                analysis,
                failures: Vec::new(),
                passes: 1,
            })
        }
    }
}

/// Events of the rank-0 prefix that seed the dominant-function
/// prediction. Enough iterations of any real SPMD trace to expose the
/// dominant function; bounded so prediction cost is `O(1)` regardless of
/// trace size (a single-rank trace is *not* read twice).
pub(crate) const PREDICT_PREFIX_EVENTS: u64 = 65_536;

/// Sentinel "function" used when no prediction is available: it matches
/// no event (ids are registry indices, far below `u32::MAX`), so the
/// combined pass degenerates to a pure profile pass and verification
/// always schedules the fused re-pass.
const NO_PREDICTION: FunctionId = FunctionId(u32::MAX);

/// Records decoded per [`StreamCursor::next_chunk`] call in the archive
/// passes. Large enough to amortise the per-chunk `fill_buf`/`consume`
/// round-trip and keep the decode loop in pure index arithmetic, small
/// enough (~tens of KiB) to stay irrelevant next to the read buffer in
/// the worker memory model.
const DECODE_CHUNK_EVENTS: usize = 1024;

/// The [`CursorOptions`] equivalent of a config's I/O knobs.
pub(crate) fn cursor_options(config: &AnalysisConfig) -> CursorOptions {
    CursorOptions {
        mmap: config.mmap,
        read_buffer_bytes: config.read_buffer_bytes,
    }
}

/// Opens a single trace file per the config's I/O knobs (mmap with
/// buffered fallback), annotating open errors with the path.
fn open_file_reader(path: &Path, config: &AnalysisConfig) -> Result<FileReader, TraceError> {
    FileReader::open(path, config.mmap, config.read_buffer_bytes).map_err(|e| {
        TraceError::Io(std::io::Error::new(
            e.kind(),
            format!("{}: {e}", path.display()),
        ))
    })
}

/// Resolves the speculation target: the explicit override when present
/// (which can never mispredict — verification compares against the same
/// lookup), else a prefix-profile prediction, else the sentinel.
pub(crate) fn speculation_target(
    registry: &Registry,
    config: &AnalysisConfig,
    predict: impl FnOnce() -> Option<FunctionId>,
) -> Result<FunctionId, AnalysisError> {
    match &config.segment_function {
        Some(name) => registry
            .function_by_name(name)
            .ok_or_else(|| AnalysisError::UnknownFunction(name.clone())),
        None => Ok(predict().unwrap_or(NO_PREDICTION)),
    }
}

/// Ranks a prefix profile as if it were a single-process trace and
/// returns its dominant function — the speculation seed.
pub(crate) fn predict_from_rows(
    num_functions: usize,
    rows: Vec<ProfileRow>,
    config: &AnalysisConfig,
) -> Option<FunctionId> {
    let profiles = ProfileTable::from_rows(num_functions, [rows]);
    DominantRanking::with_multiplier_for(1, &profiles, config.dominant_multiplier).dominant()
}

/// Profiles a bounded prefix of archive rank 0. Decode errors are
/// swallowed — the main pass rediscovers them with proper reporting —
/// and prediction simply uses whatever the prefix showed.
pub(crate) fn predict_archive_function(
    cursor: &ArchiveCursor,
    config: &AnalysisConfig,
    telemetry: &Telemetry,
) -> Option<FunctionId> {
    let registry = cursor.registry();
    let nf = registry.num_functions();
    if cursor.num_processes() == 0 || nf == 0 {
        return None;
    }
    let mut stream = cursor.stream(ProcessId::from_index(0)).ok()?;
    let mut machine = ReplayMachine::new(registry);
    let mut sink = ProfileSink::new(nf);
    let mut seen = 0u64;
    while seen < PREDICT_PREFIX_EVENTS {
        match stream.next_record() {
            Ok(Some(record)) => {
                machine.step(&record, &mut sink);
                seen += 1;
            }
            Ok(None) | Err(_) => break,
        }
    }
    let mut w = telemetry.worker(Stage::Profile);
    w.events(machine.events_stepped());
    w.bytes(stream.byte_offset());
    drop(w);
    predict_from_rows(nf, sink.rows, config)
}

/// Profiles a bounded prefix of the first process in a single-file PVT
/// trace (the file is a concatenation of rank streams, so the prefix is
/// exactly the head of the first non-empty rank).
fn predict_pvt_function(
    path: &Path,
    registry: &Registry,
    config: &AnalysisConfig,
    telemetry: &Telemetry,
) -> Option<FunctionId> {
    let nf = registry.num_functions();
    if registry.num_processes() == 0 || nf == 0 {
        return None;
    }
    let reader = open_file_reader(path, config).ok()?;
    let mut reader = PvtStreamReader::new(reader).ok()?;
    let mut machine = ReplayMachine::new(registry);
    let mut sink = ProfileSink::new(nf);
    let mut seen = 0u64;
    let mut first: Option<ProcessId> = None;
    while seen < PREDICT_PREFIX_EVENTS {
        match reader.next() {
            Some(Ok((pid, record))) => {
                match first {
                    None => first = Some(pid),
                    Some(p) if p != pid => break,
                    _ => {}
                }
                machine.step(&record, &mut sink);
                seen += 1;
            }
            _ => break,
        }
    }
    let mut w = telemetry.worker(Stage::Profile);
    w.events(machine.events_stepped());
    w.bytes(reader.byte_offset());
    drop(w);
    predict_from_rows(nf, sink.rows, config)
}

/// The combined visitor of the speculative pass: one stack-machine sweep
/// feeds the profile rows *and* the fused segmentation for the predicted
/// function. Each half sees exactly the callback sequence it would see
/// alone, so confirmed speculation is bit-identical to two passes.
pub(crate) struct CombinedSink {
    pub(crate) profile: ProfileSink,
    pub(crate) fused: FusedSink,
}

impl CombinedSink {
    pub(crate) fn new(
        pid: ProcessId,
        num_functions: usize,
        function: FunctionId,
        modes: &[MetricMode],
    ) -> CombinedSink {
        CombinedSink {
            profile: ProfileSink::new(num_functions),
            fused: FusedSink::new(pid, function, modes.to_vec()),
        }
    }
}

impl ReplayVisitor for CombinedSink {
    fn on_enter(&mut self, function: FunctionId, depth: u32, time: Timestamp) {
        self.fused.on_enter(function, depth, time);
    }

    fn on_frame(&mut self, frame: &ClosedFrame) {
        self.profile.on_frame(frame);
        self.fused.on_frame(frame);
    }

    fn on_metric(&mut self, metric: MetricId, time: Timestamp, value: u64) {
        self.fused.on_metric(metric, time, value);
    }

    fn on_tick(&mut self, time: Timestamp) {
        self.fused.on_tick(time);
    }

    fn on_finish(&mut self) {
        self.profile.on_finish();
        self.fused.on_finish();
    }
}

/// An empty fused partial — what a failed rank contributes (identical to
/// an empty stream).
pub(crate) fn empty_fused(num_metrics: usize) -> (Vec<Segment>, Vec<Vec<u64>>) {
    (Vec::new(), vec![Vec::new(); num_metrics])
}

/// Accumulates trace extent while streaming.
#[derive(Default)]
pub(crate) struct Extent {
    pub(crate) num_events: u64,
    pub(crate) first: Option<Timestamp>,
    pub(crate) last: Option<Timestamp>,
}

impl Extent {
    pub(crate) fn record(&mut self, time: Timestamp) {
        self.num_events += 1;
        if self.first.is_none_or(|f| time < f) {
            self.first = Some(time);
        }
        if self.last.is_none_or(|l| time > l) {
            self.last = Some(time);
        }
    }

    pub(crate) fn absorb(
        &mut self,
        num_events: u64,
        first: Option<Timestamp>,
        last: Option<Timestamp>,
    ) {
        self.num_events += num_events;
        if let Some(f) = first {
            if self.first.is_none_or(|cur| f < cur) {
                self.first = Some(f);
            }
        }
        if let Some(l) = last {
            if self.last.is_none_or(|cur| l > cur) {
                self.last = Some(l);
            }
        }
    }

    pub(crate) fn meta(
        self,
        name: String,
        clock: perfvar_trace::Clock,
        registry: Registry,
    ) -> TraceMeta {
        TraceMeta {
            name,
            clock,
            registry,
            num_events: self.num_events,
            begin: self.first.unwrap_or(Timestamp::ZERO),
            end: self.last.unwrap_or(Timestamp::ZERO),
        }
    }
}

/// Per-rank result of the combined speculative pass: everything one rank
/// contributes to an [`AnalysisPart`](crate::part::AnalysisPart).
pub(crate) struct RankCombined {
    pub(crate) rows: Vec<ProfileRow>,
    pub(crate) fused: FusedPartial,
    pub(crate) num_events: u64,
    pub(crate) first: Option<Timestamp>,
    pub(crate) last: Option<Timestamp>,
    /// Bytes decoded for this rank (`0` when only a whole-pass figure
    /// exists, as in the sequential PVT driver).
    pub(crate) bytes: u64,
    pub(crate) sos_clamped: u64,
}

/// Archive driver: the combined pass fans the ranks out over
/// work-stealing worker threads, each streaming its rank's file through
/// a (usually memory-mapped) cursor exactly once.
fn analyze_archive(
    dir: &Path,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    telemetry: &Telemetry,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    let cursor = ArchiveCursor::open_with(dir, cursor_options(config))?;
    telemetry.set_read_buffer(config.read_buffer_bytes as u64);
    let registry = cursor.registry();
    let np = cursor.num_processes();
    let nf = registry.num_functions();
    let modes = metric_modes(registry, config.analyze_counters);

    let guess = {
        let _span = telemetry.span(Stage::Profile);
        speculation_target(registry, config, || {
            predict_archive_function(&cursor, config, telemetry)
        })?
    };

    // The combined pass: profile rows + speculative fused partials, one
    // read per rank.
    telemetry.begin_ranks(Stage::Fuse, np);
    let combined: Vec<Result<RankCombined, TraceError>> = {
        let _span = telemetry.span(Stage::Fuse);
        par_map_ranks(np, config.threads, |pid| {
            combined_rank(&cursor, pid, nf, guess, &modes, telemetry)
        })
    };

    let mut part = AnalysisPart::for_shape(nf, modes.len(), guess);
    for (i, result) in combined.into_iter().enumerate() {
        match result {
            Ok(rank) => part.add_rank(i, rank),
            Err(error) => {
                if mode == RecoveryMode::Strict {
                    return Err(error.into());
                }
                telemetry.count_recovery(1);
                part.add_failed_rank(i, error);
            }
        }
    }

    // Finalizing verifies the speculation. On a mispredict, re-run the
    // fused pass with the true function (skipping ranks that already
    // failed), retarget the part, and finalize again — the second
    // attempt cannot mispredict.
    let mut passes = 1;
    let outcome = {
        let _span = telemetry.span(Stage::Assemble);
        part.finalize(cursor.name(), cursor.clock(), registry, config)?
    };
    let mut ooc = match outcome {
        PartOutcome::Done(done) => *done,
        PartOutcome::Mispredicted {
            expected: function,
            part: mut retry,
        } => {
            passes = 2;
            telemetry.begin_ranks(Stage::Fuse, np);
            let repass: Vec<Result<FusedPartial, TraceError>> = {
                let _span = telemetry.span(Stage::Fuse);
                par_map_ranks(np, config.threads, |pid| {
                    if retry.rank_failed(pid.index()) {
                        return Ok(empty_fused(modes.len()));
                    }
                    fuse_rank(&cursor, pid, function, &modes, telemetry)
                })
            };
            for (i, result) in repass.into_iter().enumerate() {
                match result {
                    Ok(partial) => retry.set_fused(i, partial),
                    Err(error) => {
                        if mode == RecoveryMode::Strict {
                            return Err(error.into());
                        }
                        // The file changed between the passes; degrade the rank.
                        telemetry.count_recovery(1);
                        retry.fail_rank_fused_only(i, error, modes.len());
                    }
                }
            }
            retry.retarget(function);
            let _span = telemetry.span(Stage::Assemble);
            match retry.finalize(cursor.name(), cursor.clock(), registry, config)? {
                PartOutcome::Done(done) => *done,
                PartOutcome::Mispredicted { .. } => {
                    unreachable!("a retargeted part cannot mispredict")
                }
            }
        }
    };
    ooc.passes = passes;
    Ok(ooc)
}

/// Streams one archive rank through the combined sink: its profile rows,
/// speculative fused partial, and extent contribution in one read.
pub(crate) fn combined_rank(
    cursor: &ArchiveCursor,
    pid: ProcessId,
    num_functions: usize,
    function: FunctionId,
    modes: &[MetricMode],
    telemetry: &Telemetry,
) -> Result<RankCombined, TraceError> {
    let mut stream = cursor.stream(pid)?;
    let mut machine = ReplayMachine::new(cursor.registry());
    let mut sink = CombinedSink::new(pid, num_functions, function, modes);
    let mut extent = Extent::default();
    let mut chunk = Vec::with_capacity(DECODE_CHUNK_EVENTS);
    while stream.next_chunk(&mut chunk, DECODE_CHUNK_EVENTS)? > 0 {
        for record in &chunk {
            extent.record(record.time);
            machine.step(record, &mut sink);
        }
    }
    machine.finish(&mut sink);
    let bytes = stream.byte_offset();
    let sos_clamped = sink.fused.sos_underflows();
    let mut w = telemetry.worker(Stage::Fuse);
    w.events(machine.events_stepped());
    w.bytes(bytes);
    w.stack_depth(machine.max_depth());
    w.live_segments(sink.fused.peak_open());
    w.sos_clamped(sos_clamped);
    let fused = sink.fused.into_parts();
    w.segments(fused.0.len() as u64);
    drop(w);
    telemetry.rank_done();
    Ok(RankCombined {
        rows: sink.profile.rows,
        fused,
        num_events: extent.num_events,
        first: extent.first,
        last: extent.last,
        bytes,
        sos_clamped,
    })
}

/// One rank's fused-pass partial: its segments plus one counter row per
/// metric channel.
pub(crate) type FusedPartial = (Vec<Segment>, Vec<Vec<u64>>);

/// Streams one archive rank through the fused sink (the misprediction
/// re-pass).
pub(crate) fn fuse_rank(
    cursor: &ArchiveCursor,
    pid: ProcessId,
    function: perfvar_trace::FunctionId,
    modes: &[MetricMode],
    telemetry: &Telemetry,
) -> Result<FusedPartial, TraceError> {
    let mut stream = cursor.stream(pid)?;
    let mut machine = ReplayMachine::new(cursor.registry());
    let mut sink = FusedSink::new(pid, function, modes.to_vec());
    let mut chunk = Vec::with_capacity(DECODE_CHUNK_EVENTS);
    while stream.next_chunk(&mut chunk, DECODE_CHUNK_EVENTS)? > 0 {
        for record in &chunk {
            machine.step(record, &mut sink);
        }
    }
    machine.finish(&mut sink);
    let mut w = telemetry.worker(Stage::Fuse);
    w.events(machine.events_stepped());
    w.bytes(stream.byte_offset());
    w.stack_depth(machine.max_depth());
    w.live_segments(sink.peak_open());
    w.sos_clamped(sink.sos_underflows());
    let parts = sink.into_parts();
    w.segments(parts.0.len() as u64);
    drop(w);
    telemetry.rank_done();
    Ok(parts)
}

/// The outcome of one sequential pass over a PVT file: per-rank results
/// for ranks `0..first_failed`, the error that stopped the pass, and the
/// pass's telemetry figures (events stepped, bytes decoded, peak depth).
struct SequentialPass<T> {
    per_rank: Vec<T>,
    error: Option<(ProcessId, TraceError)>,
    events: u64,
    bytes: u64,
    max_depth: usize,
}

/// Drives one pass over a single-file PVT trace: `make_sink` opens a
/// fresh sink per rank, `close` extracts its per-rank result. Ranks with
/// no events still produce a (default) result, in rank order.
fn pvt_pass<S, T>(
    path: &Path,
    registry: &Registry,
    num_processes: usize,
    config: &AnalysisConfig,
    mut make_sink: impl FnMut(ProcessId) -> S,
    mut feed: impl FnMut(&mut S, &EventRecord, &mut ReplayMachine),
    mut close: impl FnMut(S, &mut ReplayMachine) -> T,
) -> Result<SequentialPass<T>, TraceError> {
    let mut reader = PvtStreamReader::new(open_file_reader(path, config)?)?;
    let mut machine = ReplayMachine::new(registry);
    let mut per_rank: Vec<T> = Vec::with_capacity(num_processes);
    let mut current: Option<(ProcessId, S)> = None;
    let mut error = None;

    for item in reader.by_ref() {
        match item {
            Ok((pid, record)) => {
                let switching = !matches!(&current, Some((active, _)) if *active == pid);
                if switching {
                    // Close the active rank, pad ranks with no events,
                    // and open the new one.
                    if let Some((_, sink)) = current.take() {
                        per_rank.push(close(sink, &mut machine));
                    }
                    while per_rank.len() < pid.index() {
                        let empty = make_sink(ProcessId::from_index(per_rank.len()));
                        per_rank.push(close(empty, &mut machine));
                    }
                    current = Some((pid, make_sink(pid)));
                }
                let (_, sink) = current.as_mut().expect("sink opened above");
                feed(sink, &record, &mut machine);
            }
            Err(e) => {
                // The reader names the failing process; everything from
                // there on is unreachable in a sequential file.
                let failing = match &e {
                    TraceError::CorruptStream { process, .. } => *process,
                    _ => current
                        .as_ref()
                        .map(|(pid, _)| *pid)
                        .unwrap_or(ProcessId::from_index(per_rank.len())),
                };
                error = Some((failing, e));
                break;
            }
        }
    }
    if error.is_none() {
        if let Some((_, sink)) = current.take() {
            per_rank.push(close(sink, &mut machine));
        }
        while per_rank.len() < num_processes {
            let empty = make_sink(ProcessId::from_index(per_rank.len()));
            per_rank.push(close(empty, &mut machine));
        }
    }
    Ok(SequentialPass {
        per_rank,
        error,
        events: machine.events_stepped(),
        bytes: reader.byte_offset(),
        max_depth: machine.max_depth(),
    })
}

/// Single-file PVT driver: one sequential combined pass (plus the rare
/// fused-only re-pass on a misprediction), `O(1)` memory each.
fn analyze_pvt(
    path: &Path,
    config: &AnalysisConfig,
    mode: RecoveryMode,
    telemetry: &Telemetry,
) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
    telemetry.set_read_buffer(config.read_buffer_bytes as u64);
    // Header only: name, clock, registry (the streams start after).
    let header = PvtStreamReader::new(open_file_reader(path, config)?)?;
    let name = header.name().to_string();
    let clock = header.clock();
    let registry = header.registry().clone();
    drop(header);
    let np = registry.num_processes();
    let nf = registry.num_functions();
    let modes = metric_modes(&registry, config.analyze_counters);

    let guess = {
        let _span = telemetry.span(Stage::Profile);
        speculation_target(&registry, config, || {
            predict_pvt_function(path, &registry, config, telemetry)
        })?
    };

    // The combined pass: profile + extent + speculative fused partials.
    telemetry.begin_ranks(Stage::Fuse, np);
    let pass1 = {
        let _span = telemetry.span(Stage::Fuse);
        pvt_pass(
            path,
            &registry,
            np,
            config,
            |pid| (CombinedSink::new(pid, nf, guess, &modes), Extent::default()),
            |pair, record, machine| {
                pair.1.record(record.time);
                machine.step(record, &mut pair.0);
            },
            |(mut sink, extent), machine| {
                machine.finish(&mut sink);
                telemetry.rank_done();
                let mut w = telemetry.worker(Stage::Fuse);
                w.live_segments(sink.fused.peak_open());
                let sos_clamped = sink.fused.sos_underflows();
                w.sos_clamped(sos_clamped);
                let fused = sink.fused.into_parts();
                w.segments(fused.0.len() as u64);
                RankCombined {
                    rows: sink.profile.rows,
                    fused,
                    num_events: extent.num_events,
                    first: extent.first,
                    last: extent.last,
                    bytes: 0, // only a whole-pass figure exists, added below
                    sos_clamped,
                }
            },
        )?
    };
    {
        let mut w = telemetry.worker(Stage::Fuse);
        w.events(pass1.events);
        w.bytes(pass1.bytes);
        w.stack_depth(pass1.max_depth);
    }
    let mut first_failed = np;
    let mut per_rank = pass1.per_rank;
    let mut part = AnalysisPart::for_shape(nf, modes.len(), guess);
    part.count_bytes(pass1.bytes);
    if let Some((failing, error)) = pass1.error {
        if mode == RecoveryMode::Strict {
            return Err(error.into());
        }
        first_failed = per_rank.len().min(failing.index());
        per_rank.truncate(first_failed);
        telemetry.count_recovery((np - first_failed) as u64);
        let mut original = Some(error);
        for i in first_failed..np {
            let pid = ProcessId::from_index(i);
            let error = if pid == failing {
                original.take().expect("the failing rank appears once")
            } else {
                TraceError::Corrupt(format!(
                    "stream of {pid} is unreachable behind the corrupt stream of {failing}"
                ))
            };
            part.add_failed_rank(i, error);
        }
    }
    for (i, rank) in per_rank.into_iter().enumerate() {
        part.add_rank(i, rank);
    }

    // Finalizing verifies the speculation; re-pass fused-only on a
    // mispredict. In partial mode the re-pass stops where the combined
    // pass did; unreachable ranks contribute empties.
    let mut passes = 1;
    let outcome = {
        let _span = telemetry.span(Stage::Assemble);
        part.finalize(&name, clock, &registry, config)?
    };
    let mut ooc = match outcome {
        PartOutcome::Done(done) => *done,
        PartOutcome::Mispredicted {
            expected: function,
            part: mut retry,
        } => {
            passes = 2;
            telemetry.begin_ranks(Stage::Fuse, np);
            let pass2 = {
                let _span = telemetry.span(Stage::Fuse);
                pvt_pass(
                    path,
                    &registry,
                    np,
                    config,
                    |pid| FusedSink::new(pid, function, modes.clone()),
                    |sink, record, machine| machine.step(record, sink),
                    |mut sink, machine| {
                        machine.finish(&mut sink);
                        telemetry.rank_done();
                        let mut w = telemetry.worker(Stage::Fuse);
                        w.live_segments(sink.peak_open());
                        w.sos_clamped(sink.sos_underflows());
                        let parts = sink.into_parts();
                        w.segments(parts.0.len() as u64);
                        parts
                    },
                )?
            };
            {
                let mut w = telemetry.worker(Stage::Fuse);
                w.events(pass2.events);
                w.bytes(pass2.bytes);
                w.stack_depth(pass2.max_depth);
            }
            retry.count_bytes(pass2.bytes);
            if let Some((_, error)) = pass2.error {
                if mode == RecoveryMode::Strict {
                    return Err(error.into());
                }
            }
            let mut fused_partials = pass2.per_rank;
            fused_partials.truncate(first_failed.min(fused_partials.len()));
            while fused_partials.len() < np {
                fused_partials.push(empty_fused(modes.len()));
            }
            for (i, fused) in fused_partials.into_iter().enumerate() {
                retry.set_fused(i, fused);
            }
            retry.retarget(function);
            let _span = telemetry.span(Stage::Assemble);
            match retry.finalize(&name, clock, &registry, config)? {
                PartOutcome::Done(done) => *done,
                PartOutcome::Mispredicted { .. } => {
                    unreachable!("a retargeted part cannot mispredict")
                }
            }
        }
    };
    ooc.passes = passes;
    Ok(ooc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::analyze;
    use perfvar_trace::format::{archive, write_trace_file};
    use perfvar_trace::{Clock, FunctionRole, MetricMode as Mode, Trace, TraceBuilder};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("perfvar-outofcore-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// Multi-rank trace with nested calls, sync functions, and all three
    /// metric modes.
    fn rich_trace(ranks: u64) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("ooc");
        let iter_f = b.define_function("iteration", FunctionRole::Compute);
        let inner_f = b.define_function("inner", FunctionRole::Compute);
        let mpi_f = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        let acc = b.define_metric("CYC", Mode::Accumulating, "cycles");
        let del = b.define_metric("EXC", Mode::Delta, "#");
        for pi in 0..ranks {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = 0u64;
            let mut cyc = 0u64;
            for k in 0..6u64 {
                let load = 100 + (pi * 13 + k * 7) % 40;
                w.enter(Timestamp(t), iter_f).unwrap();
                w.metric(Timestamp(t), acc, cyc).unwrap();
                w.enter(Timestamp(t + 5), inner_f).unwrap();
                w.metric(Timestamp(t + 9), del, k + 1).unwrap();
                w.leave(Timestamp(t + load / 2), inner_f).unwrap();
                t += load;
                cyc += load * 3;
                w.enter(Timestamp(t), mpi_f).unwrap();
                w.leave(Timestamp(t + 20), mpi_f).unwrap();
                t += 20;
                w.metric(Timestamp(t), acc, cyc).unwrap();
                w.leave(Timestamp(t), iter_f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    /// A trace built to *defeat* the rank-0 prefix prediction: rank 0 is
    /// dominated by `alpha` while every other rank spends its time in
    /// `beta`, which therefore wins the global ranking.
    fn adversarial_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("adv");
        let alpha = b.define_function("alpha", FunctionRole::Compute);
        let beta = b.define_function("beta", FunctionRole::Compute);
        for pi in 0..4u64 {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = 0u64;
            let (hot, cold, hot_len) = if pi == 0 {
                (alpha, beta, 50)
            } else {
                (beta, alpha, 300)
            };
            for _ in 0..8u64 {
                w.enter(Timestamp(t), hot).unwrap();
                t += hot_len;
                w.leave(Timestamp(t), hot).unwrap();
                w.enter(Timestamp(t), cold).unwrap();
                t += 2;
                w.leave(Timestamp(t), cold).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn archive_path_equals_in_memory() {
        let trace = rich_trace(5);
        let dir = tmp("eq.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let config = AnalysisConfig::default();
        let reference = analyze(&trace, &config).unwrap();
        for threads in [1usize, 2, 0] {
            let cfg = AnalysisConfig {
                threads,
                ..config.clone()
            };
            let ooc = analyze_path_with(&dir, &cfg, RecoveryMode::Strict).unwrap();
            assert_eq!(ooc.analysis, reference, "threads = {threads}");
            assert_eq!(ooc.meta, TraceMeta::of(&trace));
            assert!(!ooc.is_partial());
        }
    }

    #[test]
    fn spmd_archive_takes_a_single_pass() {
        // Ranks profile alike, so the rank-0 prefix prediction must be
        // confirmed and the fused partials reused — one data pass.
        let trace = rich_trace(5);
        let dir = tmp("onepass.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let ooc =
            analyze_path_with(&dir, &AnalysisConfig::default(), RecoveryMode::Strict).unwrap();
        assert_eq!(ooc.passes, 1);
    }

    #[test]
    fn spmd_pvt_takes_a_single_pass() {
        let trace = rich_trace(4);
        let path = tmp("onepass.pvt");
        write_trace_file(&trace, &path).unwrap();
        let ooc =
            analyze_path_with(&path, &AnalysisConfig::default(), RecoveryMode::Strict).unwrap();
        assert_eq!(ooc.passes, 1);
    }

    #[test]
    fn explicit_override_never_repasses() {
        let trace = rich_trace(3);
        let dir = tmp("override.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let config = AnalysisConfig {
            segment_function: Some("inner".into()),
            ..AnalysisConfig::default()
        };
        let ooc = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
        assert_eq!(ooc.passes, 1);
        assert_eq!(ooc.analysis, analyze(&trace, &config).unwrap());
    }

    #[test]
    fn misprediction_falls_back_and_stays_exact() {
        let trace = adversarial_trace();
        let config = AnalysisConfig::default();
        let reference = analyze(&trace, &config).unwrap();
        // The global dominant is beta even though rank 0 suggests alpha.
        assert_eq!(
            trace.registry().function_name(reference.function),
            "beta",
            "fixture must actually mispredict"
        );
        for name in ["adv.pvta", "adv.pvt"] {
            let path = tmp(name);
            write_trace_file(&trace, &path).unwrap();
            let ooc = analyze_path_with(&path, &config, RecoveryMode::Strict).unwrap();
            assert_eq!(ooc.passes, 2, "{name}: misprediction must re-pass");
            assert_eq!(ooc.analysis, reference, "{name}");
        }
    }

    #[test]
    fn buffered_path_equals_mmap_path() {
        let trace = rich_trace(4);
        let dir = tmp("bufeq.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let mapped = analyze_path(&dir, &AnalysisConfig::default()).unwrap();
        let buffered = analyze_path(
            &dir,
            &AnalysisConfig {
                mmap: false,
                read_buffer_bytes: 64,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        assert_eq!(mapped, buffered);
    }

    #[test]
    fn pvt_path_equals_in_memory() {
        let trace = rich_trace(4);
        let path = tmp("eq.pvt");
        write_trace_file(&trace, &path).unwrap();
        let config = AnalysisConfig::default();
        assert_eq!(
            analyze_path(&path, &config).unwrap(),
            analyze(&trace, &config).unwrap()
        );
    }

    #[test]
    fn text_path_equals_in_memory() {
        let trace = rich_trace(3);
        let path = tmp("eq.pvtx");
        write_trace_file(&trace, &path).unwrap();
        let config = AnalysisConfig::default();
        assert_eq!(
            analyze_path(&path, &config).unwrap(),
            analyze(&trace, &config).unwrap()
        );
    }

    #[test]
    fn truncated_archive_stream_strict_names_rank_and_offset() {
        let trace = rich_trace(4);
        let dir = tmp("trunc.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let stream2 = dir.join(archive::stream_file(2));
        let bytes = std::fs::read(&stream2).unwrap();
        std::fs::write(&stream2, &bytes[..bytes.len() - 9]).unwrap();

        let err = analyze_path(&dir, &AnalysisConfig::default()).unwrap_err();
        let PathAnalysisError::Trace(TraceError::CorruptStream {
            process, offset, ..
        }) = err
        else {
            panic!("expected CorruptStream, got {err}");
        };
        assert_eq!(process, ProcessId(2));
        assert!(offset > 0 && offset < bytes.len() as u64);
    }

    #[test]
    fn truncated_archive_stream_partial_recovers_other_ranks() {
        let trace = rich_trace(4);
        let dir = tmp("partial.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let stream1 = dir.join(archive::stream_file(1));
        let bytes = std::fs::read(&stream1).unwrap();
        std::fs::write(&stream1, &bytes[..bytes.len() - 7]).unwrap();

        let config = AnalysisConfig::default();
        let ooc = analyze_path_with(&dir, &config, RecoveryMode::Partial).unwrap();
        assert!(ooc.is_partial());
        assert_eq!(ooc.recovered_ranks(), 3);
        assert_eq!(ooc.failures.len(), 1);
        assert_eq!(ooc.failures[0].process, ProcessId(1));
        assert!(matches!(
            ooc.failures[0].error,
            TraceError::CorruptStream { .. }
        ));
        // Rank 1 contributes exactly what an empty stream would.
        assert_eq!(ooc.analysis.segmentation.process(ProcessId(1)).len(), 0);
        assert!(!ooc.analysis.segmentation.process(ProcessId(0)).is_empty());
    }

    #[test]
    fn truncated_pvt_partial_loses_trailing_ranks() {
        let trace = rich_trace(4);
        let path = tmp("trunc.pvt");
        write_trace_file(&trace, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Cut deep into the file: some rank's stream ends mid-event.
        std::fs::write(&path, &bytes[..bytes.len() * 2 / 3]).unwrap();

        let config = AnalysisConfig::default();
        let strict = analyze_path(&path, &config).unwrap_err();
        assert!(
            matches!(
                strict,
                PathAnalysisError::Trace(TraceError::CorruptStream { .. })
            ),
            "{strict}"
        );

        let ooc = analyze_path_with(&path, &config, RecoveryMode::Partial).unwrap();
        assert!(ooc.is_partial());
        // Sequential file: the corrupt rank and everything after it fail.
        let first_failed = ooc.failures[0].process.index();
        assert_eq!(ooc.failures.len(), 4 - first_failed);
        assert_eq!(ooc.recovered_ranks(), first_failed);
        for i in 0..first_failed {
            assert!(!ooc
                .analysis
                .segmentation
                .process(ProcessId::from_index(i))
                .is_empty());
        }
    }

    #[test]
    fn missing_archive_stream_partial_reports_path() {
        let trace = rich_trace(3);
        let dir = tmp("missing.pvta");
        write_trace_file(&trace, &dir).unwrap();
        std::fs::remove_file(dir.join(archive::stream_file(1))).unwrap();
        let ooc =
            analyze_path_with(&dir, &AnalysisConfig::default(), RecoveryMode::Partial).unwrap();
        assert_eq!(ooc.failures.len(), 1);
        assert!(ooc.failures[0].error.to_string().contains("stream-1.pvts"));
    }

    #[test]
    fn refine_steps_to_finer_function() {
        let trace = rich_trace(4);
        let dir = tmp("refine.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let config = AnalysisConfig::default();
        let ooc = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
        let refined = ooc
            .refine(&dir, &config, RecoveryMode::Strict)
            .unwrap()
            .expect("a finer candidate exists");
        assert_eq!(refined.passes, 1, "refinement is an explicit single pass");
        // Matches the in-memory refinement exactly.
        let reference = analyze(&trace, &config).unwrap();
        let refined_ref = reference.refine(&trace, &config).unwrap();
        assert_eq!(refined.analysis, refined_ref);
    }

    #[test]
    fn no_dominant_function_is_an_analysis_error() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("main", FunctionRole::Compute);
        let p = b.define_process("p0");
        b.process_mut(p).enter(Timestamp(0), f).unwrap();
        b.process_mut(p).leave(Timestamp(10), f).unwrap();
        let trace = b.finish().unwrap();
        let dir = tmp("nodom.pvta");
        write_trace_file(&trace, &dir).unwrap();
        let err = analyze_path(&dir, &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(
            err,
            PathAnalysisError::Analysis(AnalysisError::NoDominantFunction { .. })
        ));
    }
}
