//! Live incremental analysis of a growing trace.
//!
//! [`LiveAnalysis`] follows a `.pvta` archive that is still being
//! written (see `perfvar_trace::format::live`) and keeps the *same*
//! streaming pipeline the batch path runs — [`ReplayMachine`] feeding
//! the fused profile + segmentation sinks — fed one
//! [`poll`](LiveAnalysis::poll) at a time. Each poll decodes only the
//! newly appended bytes and returns a [`LiveDelta`]: the events and
//! segments that appeared since the previous poll, plus the rolling
//! prefix-digest fingerprint that identifies the consumed prefix (the
//! daemon keys SSE resume tokens on it).
//!
//! Once the writer seals the run, [`finalize`](LiveAnalysis::finalize)
//! assembles the accumulated per-rank state through the identical
//! [`AnalysisPart`] machinery the batch and sharded drivers use —
//! including the misprediction re-pass, which re-reads the (now
//! batch-readable) archive. The outcome is therefore **bit-identical**
//! to a one-shot [`analyze_path`](crate::outofcore::analyze_path) of
//! the finished archive, no matter how the appends were chunked; the
//! property test at the bottom of this module proves it for arbitrary
//! chunkings.
//!
//! # Speculation in a live setting
//!
//! The batch driver predicts the dominant function from a bounded
//! rank-0 prefix before streaming. A live reader cannot re-read, so it
//! instead *buffers* decoded records until rank 0 has delivered that
//! same prefix (or the run seals first), predicts from the buffer, then
//! replays the buffer into the real sinks and streams on. Because
//! [`AnalysisPart::finalize`] verifies the speculation against the
//! global profile and re-passes on a mismatch, the final analysis does
//! not depend on which function was predicted — only the number of
//! passes does.
//!
//! # Errors
//!
//! A torn append on a sealed archive (or any mid-stream corruption)
//! surfaces as a typed `TraceError::CorruptStream` carrying the rank
//! and byte offset on the [`LiveDelta`]; the affected rank stops
//! advancing while the remaining ranks keep streaming, and the last
//! good [`LiveSnapshot`] stays available. [`finalize`](LiveAnalysis::finalize)
//! refuses to run while the run is unsealed or any rank is poisoned.

use crate::fused::metric_modes;
use crate::outofcore::{
    cursor_options, fuse_rank, predict_from_rows, speculation_target, CombinedSink, Extent,
    OutOfCoreAnalysis, PathAnalysisError, RankCombined, PREDICT_PREFIX_EVENTS,
};
use crate::part::{AnalysisPart, PartOutcome};
use crate::profile::ProfileSink;
use crate::report::AnalysisConfig;
use crate::segment::Segment;
use crate::stream::ReplayMachine;
use crate::telemetry::Telemetry;
use perfvar_trace::format::cursor::ArchiveCursor;
use perfvar_trace::format::live::ArchiveTail;
use perfvar_trace::{
    EventRecord, FunctionId, MetricMode, ProcessId, Registry, Timestamp, TraceError,
};
use std::path::Path;

/// Streaming per-rank state: the replay machine and the combined
/// profile+fused sink, exactly as in the batch combined pass, plus the
/// extent bookkeeping and how far the closed-segment prefix has been
/// reported to [`LiveDelta`] consumers.
struct RankLive {
    machine: ReplayMachine,
    sink: CombinedSink,
    extent: Extent,
    /// Number of leading segments already emitted as closed. Segments
    /// are indexed in enter order and the open stack is increasing, so
    /// everything before the first open index is closed for good.
    confirmed: usize,
}

impl RankLive {
    fn new(
        registry: &Registry,
        num_functions: usize,
        pid: ProcessId,
        target: FunctionId,
        modes: &[MetricMode],
    ) -> RankLive {
        RankLive {
            machine: ReplayMachine::new(registry),
            sink: CombinedSink::new(pid, num_functions, target, modes),
            extent: Extent::default(),
            confirmed: 0,
        }
    }

    fn step(&mut self, record: &EventRecord) {
        self.extent.record(record.time);
        self.machine.step(record, &mut self.sink);
    }

    /// Index one past the last segment known to be closed for good.
    fn closed_limit(&self) -> usize {
        self.sink
            .fused
            .first_open()
            .unwrap_or_else(|| self.sink.fused.segments().len())
    }
}

/// What one [`LiveAnalysis::poll`] changed.
#[derive(Debug, Default)]
pub struct LiveDelta {
    /// Events decoded by this poll, across all ranks.
    pub new_events: u64,
    /// Newly consumed payload bytes, across all ranks.
    pub new_bytes: u64,
    /// Segments of the (predicted) dominant function that closed for
    /// good during this poll, in (rank, enter) order. Empty until the
    /// speculation target is resolved.
    pub new_segments: Vec<Segment>,
    /// Ranks whose profile rows or extent advanced during this poll.
    pub touched_ranks: Vec<usize>,
    /// Whether the end-of-run marker has been observed (monotone:
    /// stays `true` on every later poll).
    pub finished: bool,
    /// Prefix-digest fingerprint of everything consumed so far — two
    /// readers that consumed the same prefix agree on it regardless of
    /// append chunking, so it keys resumable delta streams.
    pub fingerprint: u128,
    /// A stream error observed this poll (e.g. a sealed archive ending
    /// inside a record). The offending rank stops advancing; other
    /// ranks continue. Latches: once any rank is poisoned,
    /// [`LiveAnalysis::finalize`] refuses.
    pub error: Option<TraceError>,
}

/// Per-rank progress for [`LiveSnapshot`].
#[derive(Clone, Debug)]
pub struct RankSnapshot {
    /// Events delivered for this rank so far.
    pub events: u64,
    /// Payload bytes consumed for this rank so far.
    pub bytes: u64,
    /// Segments closed for good on this rank.
    pub segments: usize,
    /// Sum of closed-segment durations (ticks).
    pub duration_total: u64,
    /// Sum of closed-segment SOS-times (ticks).
    pub sos_total: u64,
    /// Timestamp of the newest event seen on this rank.
    pub last: Option<Timestamp>,
    /// Whether this rank hit a stream error and stopped advancing.
    pub poisoned: bool,
}

/// Aggregated per-function profile totals across all ranks (only
/// populated once the speculation target is resolved and the sinks are
/// live).
#[derive(Clone, Debug)]
pub struct FunctionTotal {
    /// The function.
    pub function: FunctionId,
    /// Its registry name.
    pub name: String,
    /// Completed invocations so far.
    pub count: u64,
    /// Inclusive ticks so far.
    pub inclusive: u64,
    /// Exclusive ticks so far.
    pub exclusive: u64,
}

/// A point-in-time view of a live run: per-rank progress plus the
/// aggregated profile. Cheap to build (no replay, no I/O).
#[derive(Clone, Debug)]
pub struct LiveSnapshot {
    /// The trace name from the archive anchor.
    pub name: String,
    /// Whether the end-of-run marker has been observed.
    pub finished: bool,
    /// The segmentation target, once resolved (prediction or explicit
    /// override). `None` while still buffering the prediction prefix.
    pub target: Option<FunctionId>,
    /// Total events delivered across all ranks.
    pub events: u64,
    /// Total payload bytes consumed across all ranks.
    pub bytes: u64,
    /// Prefix-digest fingerprint of the consumed prefix.
    pub fingerprint: u128,
    /// Per-rank progress, indexed by rank.
    pub ranks: Vec<RankSnapshot>,
    /// Per-function profile totals, sorted by inclusive time
    /// descending. Empty until the target is resolved.
    pub functions: Vec<FunctionTotal>,
}

/// Incremental analysis over a growing `.pvta` archive.
///
/// ```no_run
/// use perfvar_analysis::live::LiveAnalysis;
/// use perfvar_analysis::prelude::*;
///
/// let mut live = LiveAnalysis::open("run.pvta", AnalysisConfig::default()).unwrap();
/// loop {
///     let delta = live.poll();
///     // ... render delta / live.snapshot() ...
///     if delta.finished {
///         break;
///     }
///     std::thread::sleep(std::time::Duration::from_millis(200));
/// }
/// let analysis = live.finalize().unwrap().analysis;
/// ```
pub struct LiveAnalysis {
    tail: ArchiveTail,
    config: AnalysisConfig,
    modes: Vec<MetricMode>,
    num_functions: usize,
    /// Resolved speculation target; `None` while buffering.
    target: Option<FunctionId>,
    /// Phase-1 record buffers, one per rank; drained on resolution.
    pending: Vec<Vec<EventRecord>>,
    /// Streaming state, one per rank; empty until the target resolves.
    ranks: Vec<RankLive>,
    /// Events delivered per rank (counted from the tail, so it works
    /// during both phases).
    events: Vec<u64>,
    /// Newest timestamp per rank.
    last: Vec<Option<Timestamp>>,
    /// Ranks that hit a stream error (their state is frozen).
    poisoned: Vec<bool>,
    /// Whether any poll has reported an error (finalize refuses).
    errored: bool,
    finished: bool,
}

impl LiveAnalysis {
    /// Opens a (possibly still empty-ish) live archive for incremental
    /// analysis. The anchor must exist; stream files may appear later.
    ///
    /// An explicit [`AnalysisConfig::segment_function`] override is
    /// resolved immediately (erroring on an unknown name); otherwise
    /// the target is predicted from the rank-0 prefix once enough of it
    /// has streamed in.
    pub fn open(
        dir: impl AsRef<Path>,
        config: AnalysisConfig,
    ) -> Result<LiveAnalysis, PathAnalysisError> {
        let tail = ArchiveTail::open(dir)?;
        let registry = tail.registry().clone();
        let np = registry.num_processes();
        let nf = registry.num_functions();
        let modes = metric_modes(&registry, config.analyze_counters);
        let mut live = LiveAnalysis {
            tail,
            config,
            modes,
            num_functions: nf,
            target: None,
            pending: vec![Vec::new(); np],
            ranks: Vec::new(),
            events: vec![0; np],
            last: vec![None; np],
            poisoned: vec![false; np],
            errored: false,
            finished: false,
        };
        if live.config.segment_function.is_some() {
            let target = speculation_target(&registry, &live.config, || None)?;
            live.resolve(target);
        }
        Ok(live)
    }

    /// The registry from the archive anchor.
    pub fn registry(&self) -> &Registry {
        self.tail.registry()
    }

    /// Number of ranks (processes) in the run.
    pub fn num_processes(&self) -> usize {
        self.tail.num_processes()
    }

    /// Whether the end-of-run marker has been observed by a poll.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The resolved segmentation target, if any yet.
    pub fn target(&self) -> Option<FunctionId> {
        self.target
    }

    /// Switches from buffering to streaming: builds the per-rank
    /// machines/sinks for `target` and replays the buffered records.
    fn resolve(&mut self, target: FunctionId) {
        let registry = self.tail.registry().clone();
        let np = registry.num_processes();
        let mut ranks = Vec::with_capacity(np);
        for i in 0..np {
            let mut rank = RankLive::new(
                &registry,
                self.num_functions,
                ProcessId::from_index(i),
                target,
                &self.modes,
            );
            for record in &self.pending[i] {
                rank.step(record);
            }
            self.pending[i] = Vec::new();
            ranks.push(rank);
        }
        self.ranks = ranks;
        self.target = Some(target);
    }

    /// Predicts the dominant function from the buffered rank-0 prefix —
    /// the same bounded prefix profile the batch driver reads, so both
    /// paths speculate identically on the same bytes.
    fn predict(&self) -> Option<FunctionId> {
        let nf = self.num_functions;
        if self.pending.is_empty() || nf == 0 {
            return None;
        }
        let registry = self.tail.registry();
        let mut machine = ReplayMachine::new(registry);
        let mut sink = ProfileSink::new(nf);
        for record in self.pending[0].iter().take(PREDICT_PREFIX_EVENTS as usize) {
            machine.step(record, &mut sink);
        }
        predict_from_rows(nf, sink.rows, &self.config)
    }

    /// Decodes everything appended since the last poll and folds it
    /// into the running analysis. Non-blocking: returns an empty delta
    /// when nothing new arrived.
    pub fn poll(&mut self) -> LiveDelta {
        let tail_delta = self.tail.poll();
        let mut delta = LiveDelta {
            new_bytes: tail_delta.new_bytes,
            finished: tail_delta.finished,
            ..LiveDelta::default()
        };
        self.finished |= tail_delta.finished;
        delta.finished = self.finished;

        for (pid, records) in &tail_delta.records {
            let i = pid.index();
            if records.is_empty() || self.poisoned[i] {
                continue;
            }
            self.events[i] += records.len() as u64;
            self.last[i] = records.last().map(|r| r.time).or(self.last[i]);
            delta.new_events += records.len() as u64;
            delta.touched_ranks.push(i);
            match &mut self.target {
                Some(_) => {
                    let rank = &mut self.ranks[i];
                    for record in records {
                        rank.step(record);
                    }
                }
                None => self.pending[i].extend(records.iter().cloned()),
            }
        }

        // Resolve the speculation target once rank 0 has delivered the
        // prediction prefix — or at end of run, with whatever arrived.
        if self.target.is_none()
            && !self.pending.is_empty()
            && (self.finished || self.events[0] >= PREDICT_PREFIX_EVENTS)
        {
            let registry = self.tail.registry();
            let target = speculation_target(registry, &self.config, || self.predict())
                .expect("no explicit override at this point, so resolution cannot fail");
            self.resolve(target);
        }

        // Report segments that closed for good this poll, in rank order.
        for rank in &mut self.ranks {
            let limit = rank.closed_limit();
            if limit > rank.confirmed {
                delta
                    .new_segments
                    .extend_from_slice(&rank.sink.fused.segments()[rank.confirmed..limit]);
                rank.confirmed = limit;
            }
        }

        if let Some(error) = tail_delta.error {
            if let TraceError::CorruptStream { process, .. } = &error {
                self.poisoned[process.index()] = true;
            }
            self.errored = true;
            delta.error = Some(error);
        }
        delta.fingerprint = self.tail.prefix_digest().fingerprint();
        delta
    }

    /// Segments closed for good on `rank` so far, in enter order.
    /// Empty while the speculation target is still unresolved.
    pub fn closed_segments(&self, rank: usize) -> &[Segment] {
        match self.ranks.get(rank) {
            Some(r) => &r.sink.fused.segments()[..r.confirmed],
            None => &[],
        }
    }

    /// A point-in-time view of the run. Always reflects the last good
    /// state: poisoned ranks freeze, healthy ranks keep advancing.
    pub fn snapshot(&self) -> LiveSnapshot {
        let registry = self.tail.registry();
        let np = registry.num_processes();
        let mut ranks = Vec::with_capacity(np);
        for i in 0..np {
            let (segments, duration_total, sos_total) = match self.ranks.get(i) {
                Some(r) => {
                    let closed = &r.sink.fused.segments()[..r.confirmed];
                    (
                        closed.len(),
                        closed.iter().map(|s| s.duration().0).sum(),
                        closed.iter().map(|s| s.sos().0).sum(),
                    )
                }
                None => (0, 0, 0),
            };
            ranks.push(RankSnapshot {
                events: self.events[i],
                bytes: self.tail.consumed(ProcessId::from_index(i)),
                segments,
                duration_total,
                sos_total,
                last: self.last[i],
                poisoned: self.poisoned[i],
            });
        }
        let mut functions: Vec<FunctionTotal> = (0..self.num_functions)
            .map(|f| FunctionTotal {
                function: FunctionId(f as u32),
                name: registry.function_name(FunctionId(f as u32)).to_string(),
                count: 0,
                inclusive: 0,
                exclusive: 0,
            })
            .collect();
        for rank in &self.ranks {
            for (f, row) in rank.sink.profile.rows.iter().enumerate() {
                functions[f].count += row.count;
                functions[f].inclusive += row.inclusive;
                functions[f].exclusive += row.exclusive;
            }
        }
        functions.retain(|f| f.count > 0);
        functions.sort_by(|a, b| {
            b.inclusive
                .cmp(&a.inclusive)
                .then(a.function.0.cmp(&b.function.0))
        });
        LiveSnapshot {
            name: self.tail.name().to_string(),
            finished: self.finished,
            target: self.target,
            events: self.events.iter().sum(),
            bytes: ranks.iter().map(|r| r.bytes).sum(),
            fingerprint: self.tail.prefix_digest().fingerprint(),
            ranks,
            functions,
        }
    }

    /// Assembles the final analysis of the sealed run.
    ///
    /// Bit-identical to a one-shot
    /// [`analyze_path_with`](crate::outofcore::analyze_path_with) of
    /// the finished archive, regardless of how the appends were
    /// chunked: the per-rank state goes through the same
    /// [`AnalysisPart`] verification, and a misprediction re-passes the
    /// (now batch-readable) archive with the true function, exactly as
    /// the batch driver does.
    ///
    /// Errors if the run has not sealed yet (poll until
    /// [`LiveDelta::finished`]) or if any rank was poisoned by a stream
    /// error.
    pub fn finalize(self) -> Result<OutOfCoreAnalysis, PathAnalysisError> {
        let LiveAnalysis {
            tail,
            config,
            modes,
            num_functions,
            target,
            ranks,
            errored,
            finished,
            ..
        } = self;
        if !finished {
            return Err(TraceError::Corrupt(
                "live analysis finalized before the end-of-run marker was observed".into(),
            )
            .into());
        }
        if errored {
            return Err(TraceError::Corrupt(
                "live analysis cannot finalize: a stream error poisoned the run".into(),
            )
            .into());
        }
        let registry = tail.registry().clone();
        let name = tail.name().to_string();
        let clock = tail.clock();
        let np = registry.num_processes();
        let target = target.expect("a sealed run has resolved its target");
        let telemetry = Telemetry::noop();

        let mut part = AnalysisPart::for_shape(num_functions, modes.len(), target);
        for (i, mut rank) in ranks.into_iter().enumerate() {
            rank.machine.finish(&mut rank.sink);
            let sos_clamped = rank.sink.fused.sos_underflows();
            let bytes = tail.consumed(ProcessId::from_index(i));
            part.add_rank(
                i,
                RankCombined {
                    rows: rank.sink.profile.rows,
                    fused: rank.sink.fused.into_parts(),
                    num_events: rank.extent.num_events,
                    first: rank.extent.first,
                    last: rank.extent.last,
                    bytes,
                    sos_clamped,
                },
            );
        }

        let mut passes = 1;
        let mut done = match part.finalize(&name, clock, &registry, &config)? {
            PartOutcome::Done(done) => done,
            PartOutcome::Mispredicted {
                expected,
                part: mut retry,
            } => {
                passes = 2;
                let cursor = ArchiveCursor::open_with(tail.dir(), cursor_options(&config))?;
                for i in 0..np {
                    let fused = fuse_rank(
                        &cursor,
                        ProcessId::from_index(i),
                        expected,
                        &modes,
                        &telemetry,
                    )?;
                    retry.set_fused(i, fused);
                }
                retry.retarget(expected);
                match retry.finalize(&name, clock, &registry, &config)? {
                    PartOutcome::Done(done) => done,
                    PartOutcome::Mispredicted { .. } => {
                        unreachable!("a retargeted part cannot mispredict")
                    }
                }
            }
        };
        done.passes = passes;
        Ok(*done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outofcore::{analyze_path_with, RecoveryMode};
    use perfvar_trace::format::live::LiveArchiveWriter;
    use perfvar_trace::registry::FunctionRole;
    use perfvar_trace::trace::{Trace, TraceBuilder};
    use perfvar_trace::Clock;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("perfvar-analysis-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_dir_all(&path);
        path
    }

    fn sample(ranks: usize, iterations: u64) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("live analysis sample");
        let work = b.define_function("work", FunctionRole::Compute);
        let inner = b.define_function("kernel", FunctionRole::Compute);
        let mpi = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        for pi in 0..ranks {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = pi as u64;
            for k in 0..iterations {
                w.enter(Timestamp(t), work).unwrap();
                t += 3;
                w.enter(Timestamp(t), inner).unwrap();
                t += 2 + (k % 3) + pi as u64;
                w.leave(Timestamp(t), inner).unwrap();
                t += 1;
                w.enter(Timestamp(t), mpi).unwrap();
                t += 2;
                w.leave(Timestamp(t), mpi).unwrap();
                w.leave(Timestamp(t), work).unwrap();
                t += 1;
            }
        }
        b.finish().unwrap()
    }

    /// A trace whose rank-0 prefix is dominated by a different function
    /// than the full run: rank 0 spends its time in `decoy` while every
    /// other rank hammers `work`, so prefix speculation mispredicts and
    /// the finalize re-pass must run.
    fn adversarial(ranks: usize, iterations: u64) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("live adversarial");
        let work = b.define_function("work", FunctionRole::Compute);
        let decoy = b.define_function("decoy", FunctionRole::Compute);
        for pi in 0..ranks {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let f = if pi == 0 { decoy } else { work };
            let mut t = 0u64;
            for _ in 0..iterations {
                w.enter(Timestamp(t), f).unwrap();
                t += 10;
                w.leave(Timestamp(t), f).unwrap();
                t += 1;
                w.enter(Timestamp(t), work).unwrap();
                t += 1;
                w.leave(Timestamp(t), work).unwrap();
                t += 1;
            }
        }
        b.finish().unwrap()
    }

    /// Drives `trace` through a live writer in `chunk`-record slices
    /// per rank per flush, polling `live` after every flush, and
    /// returns the folded deltas (events, segments) plus the finalized
    /// result.
    fn run_live(
        trace: &Trace,
        dir: &Path,
        chunk: usize,
        config: &AnalysisConfig,
    ) -> (u64, Vec<Segment>, OutOfCoreAnalysis) {
        let mut w =
            LiveArchiveWriter::create(dir, &trace.name, trace.clock(), trace.registry()).unwrap();
        let mut live = LiveAnalysis::open(dir, config.clone()).unwrap();
        let mut offsets = vec![0usize; trace.num_processes()];
        let mut folded_events = 0u64;
        let mut folded_segments = Vec::new();
        loop {
            let mut wrote = false;
            for (i, stream) in trace.streams().iter().enumerate() {
                let records = stream.records();
                let end = (offsets[i] + chunk).min(records.len());
                for r in &records[offsets[i]..end] {
                    w.append(stream.process, r).unwrap();
                }
                wrote |= end > offsets[i];
                offsets[i] = end;
            }
            if !wrote {
                break;
            }
            w.flush().unwrap();
            let delta = live.poll();
            assert!(delta.error.is_none(), "{:?}", delta.error);
            folded_events += delta.new_events;
            folded_segments.extend(delta.new_segments);
        }
        w.finish().unwrap();
        let delta = live.poll();
        assert!(delta.finished);
        assert!(delta.error.is_none(), "{:?}", delta.error);
        folded_events += delta.new_events;
        folded_segments.extend(delta.new_segments);
        let result = live.finalize().unwrap();
        (folded_events, folded_segments, result)
    }

    #[test]
    fn live_matches_one_shot_batch_analysis() {
        let t = sample(3, 40);
        let dir = tmp("match.pvta");
        let config = AnalysisConfig::default();
        let (events, segments, live) = run_live(&t, &dir, 7, &config);
        let batch = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
        assert_eq!(live.analysis, batch.analysis);
        assert_eq!(live.meta, batch.meta);
        assert_eq!(events, live.meta.num_events);
        // Every closed segment the deltas reported is in the final
        // segmentation (the delta stream under-reports only in-flight
        // suffixes, never fabricates).
        for s in &segments {
            assert!(
                live.analysis.segmentation.process(s.process).contains(s),
                "{s:?}"
            );
        }
    }

    #[test]
    fn misprediction_repasses_and_stays_exact() {
        let t = adversarial(4, 30);
        let dir = tmp("mispredict.pvta");
        let config = AnalysisConfig::default();
        let (_, _, live) = run_live(&t, &dir, 5, &config);
        assert_eq!(live.passes, 2, "the decoy prefix must mispredict");
        let batch = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
        assert_eq!(live.analysis, batch.analysis);
    }

    #[test]
    fn explicit_override_streams_single_pass() {
        let t = adversarial(4, 30);
        let dir = tmp("override.pvta");
        let config = AnalysisConfig {
            segment_function: Some("work".to_string()),
            ..AnalysisConfig::default()
        };
        let (_, _, live) = run_live(&t, &dir, 9, &config);
        assert_eq!(live.passes, 1);
        let batch = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
        assert_eq!(live.analysis, batch.analysis);
    }

    #[test]
    fn unknown_override_fails_at_open() {
        let t = sample(2, 4);
        let dir = tmp("unknown.pvta");
        let w = LiveArchiveWriter::create(&dir, &t.name, t.clock(), t.registry()).unwrap();
        drop(w);
        let config = AnalysisConfig {
            segment_function: Some("no_such_function".to_string()),
            ..AnalysisConfig::default()
        };
        assert!(LiveAnalysis::open(&dir, config).is_err());
    }

    #[test]
    fn snapshot_tracks_progress_and_freezes_on_corruption() {
        let t = sample(2, 20);
        let dir = tmp("corrupt.pvta");
        // Resolve immediately so segments accrue from the first poll.
        let config = AnalysisConfig {
            segment_function: Some("work".to_string()),
            ..AnalysisConfig::default()
        };
        let mut w = LiveArchiveWriter::create(&dir, &t.name, t.clock(), t.registry()).unwrap();
        let mut live = LiveAnalysis::open(&dir, config).unwrap();
        // All of rank 0, and a balanced prefix of rank 1.
        let streams = t.streams();
        for r in streams[0].records() {
            w.append(streams[0].process, r).unwrap();
        }
        let half = streams[1].records().len() / 2;
        for r in &streams[1].records()[..half] {
            w.append(streams[1].process, r).unwrap();
        }
        w.flush().unwrap();
        let delta = live.poll();
        assert!(delta.new_events > 0);
        let good = live.snapshot();
        assert_eq!(good.ranks.len(), 2);
        assert!(good.ranks[0].segments > 0);
        assert!(good.functions.iter().any(|f| f.name == "work"));

        // Append the rest of rank 1, then tear its trailing bytes off
        // and seal: a torn append on a sealed archive.
        for r in &streams[1].records()[half..] {
            w.append(streams[1].process, r).unwrap();
        }
        w.flush().unwrap();
        drop(w);
        let stream1 = dir.join(perfvar_trace::format::archive::stream_file(1));
        let bytes = std::fs::read(&stream1).unwrap();
        std::fs::write(&stream1, &bytes[..bytes.len() - 2]).unwrap();
        perfvar_trace::format::live::mark_finished(&dir).unwrap();

        let delta = live.poll();
        assert!(
            matches!(
                delta.error,
                Some(TraceError::CorruptStream { process, .. }) if process.index() == 1
            ),
            "{:?}",
            delta.error
        );
        let after = live.snapshot();
        assert!(after.ranks[1].poisoned);
        assert!(!after.ranks[0].poisoned);
        // The last good rank-1 state is retained, never rolled back.
        assert!(after.ranks[1].segments >= good.ranks[1].segments);
        assert!(live.finalize().is_err());
    }

    #[test]
    fn finalize_before_seal_is_refused() {
        let t = sample(2, 4);
        let dir = tmp("early.pvta");
        let _w = LiveArchiveWriter::create(&dir, &t.name, t.clock(), t.registry()).unwrap();
        let live = LiveAnalysis::open(&dir, AnalysisConfig::default()).unwrap();
        assert!(live.finalize().is_err());
    }

    mod chunking {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// THE live-analysis invariant: for an arbitrary split of
            /// the trace into append chunks, folding `poll()` deltas
            /// and finalizing is bit-identical to one-shot
            /// `analyze_path` of the finished archive.
            #[test]
            fn any_append_chunking_finalizes_bit_identical(
                ranks in 1usize..4,
                // ≥ 2 so the dominant function clears its `2p`
                // invocation floor on every generated shape.
                iterations in 2u64..30,
                chunk in 1usize..50,
            ) {
                let t = sample(ranks, iterations);
                let dir = tmp(&format!("prop-{ranks}-{iterations}-{chunk}.pvta"));
                let config = AnalysisConfig::default();
                let (_, _, live) = run_live(&t, &dir, chunk, &config);
                let batch = analyze_path_with(&dir, &config, RecoveryMode::Strict).unwrap();
                prop_assert_eq!(&live.analysis, &batch.analysis);
                prop_assert_eq!(&live.meta, &batch.meta);
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
}
