//! The synchronization-oblivious segment time matrix (§V).
//!
//! Comparing plain segment durations detects variation *across
//! iterations* but cannot localise the responsible *process*: fast ranks
//! wait inside synchronization calls, so every rank's iteration takes
//! equally long. The paper therefore subtracts synchronization time from
//! each segment — the **SOS-time** — before comparing. [`SosMatrix`]
//! holds the per-process, per-segment values and the summary statistics
//! the detector and visualizer work with.

use crate::segment::Segmentation;
use perfvar_trace::{DurationTicks, FunctionId, ProcessId};
use serde::{Deserialize, Serialize};

/// Per-process, per-segment SOS-times (and durations) for one
/// segmentation function. Rows may be ragged if processes executed
/// different numbers of segments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SosMatrix {
    /// The segmentation function the matrix was computed for.
    pub function: FunctionId,
    sos: Vec<Vec<DurationTicks>>,
    durations: Vec<Vec<DurationTicks>>,
}

/// Simple distribution summary of a set of tick values.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TickStats {
    /// Number of values.
    pub count: usize,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Median (lower of the two middle elements for even counts).
    pub median: u64,
}

impl TickStats {
    /// Computes stats over raw tick values.
    pub fn from_values(values: impl IntoIterator<Item = u64>) -> TickStats {
        let mut v: Vec<u64> = values.into_iter().collect();
        if v.is_empty() {
            return TickStats::default();
        }
        v.sort_unstable();
        let count = v.len();
        let min = v[0];
        let max = v[count - 1];
        let median = v[(count - 1) / 2];
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / count as f64;
        let var = v
            .iter()
            .map(|&x| {
                let d = x as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        TickStats {
            count,
            min,
            max,
            mean,
            stddev: var.sqrt(),
            median,
        }
    }

    /// Coefficient of variation (stddev / mean); 0 for an empty or
    /// zero-mean set.
    pub fn cv(&self) -> f64 {
        if self.mean > 0.0 {
            self.stddev / self.mean
        } else {
            0.0
        }
    }
}

impl SosMatrix {
    /// Computes the matrix from a segmentation.
    pub fn from_segmentation(seg: &Segmentation) -> SosMatrix {
        let mut sos = Vec::with_capacity(seg.num_processes());
        let mut durations = Vec::with_capacity(seg.num_processes());
        for p in 0..seg.num_processes() {
            let segs = seg.process(ProcessId::from_index(p));
            sos.push(segs.iter().map(|s| s.sos()).collect());
            durations.push(segs.iter().map(|s| s.duration()).collect());
        }
        SosMatrix {
            function: seg.function,
            sos,
            durations,
        }
    }

    /// Number of processes (rows).
    pub fn num_processes(&self) -> usize {
        self.sos.len()
    }

    /// The SOS-time series of one process.
    pub fn process_sos(&self, p: ProcessId) -> &[DurationTicks] {
        &self.sos[p.index()]
    }

    /// The plain segment-duration series of one process.
    pub fn process_durations(&self, p: ProcessId) -> &[DurationTicks] {
        &self.durations[p.index()]
    }

    /// SOS-time of segment `ordinal` on `p`, if present.
    pub fn sos(&self, p: ProcessId, ordinal: usize) -> Option<DurationTicks> {
        self.sos[p.index()].get(ordinal).copied()
    }

    /// Duration of segment `ordinal` on `p`, if present.
    pub fn duration(&self, p: ProcessId, ordinal: usize) -> Option<DurationTicks> {
        self.durations[p.index()].get(ordinal).copied()
    }

    /// Iterates `(process, ordinal, sos)` over all segments.
    pub fn iter_sos(&self) -> impl Iterator<Item = (ProcessId, usize, DurationTicks)> + '_ {
        self.sos.iter().enumerate().flat_map(|(p, row)| {
            row.iter()
                .enumerate()
                .map(move |(i, &v)| (ProcessId::from_index(p), i, v))
        })
    }

    /// Total SOS-time per process (the per-process computational load).
    pub fn process_totals(&self) -> Vec<DurationTicks> {
        self.sos
            .iter()
            .map(|row| row.iter().copied().sum())
            .collect()
    }

    /// Maximum SOS-time per process.
    pub fn process_maxima(&self) -> Vec<DurationTicks> {
        self.sos
            .iter()
            .map(|row| row.iter().copied().max().unwrap_or(DurationTicks::ZERO))
            .collect()
    }

    /// Statistics over all SOS values in the matrix.
    pub fn sos_stats(&self) -> TickStats {
        TickStats::from_values(self.sos.iter().flatten().map(|d| d.0))
    }

    /// Statistics over all plain durations.
    pub fn duration_stats(&self) -> TickStats {
        TickStats::from_values(self.durations.iter().flatten().map(|d| d.0))
    }

    /// Per-ordinal mean duration across processes (the "how long was
    /// iteration k" series; reveals variation over time, §V ¶1). Ragged
    /// rows contribute to the ordinals they have.
    pub fn duration_by_ordinal(&self) -> Vec<f64> {
        let width = self.durations.iter().map(Vec::len).max().unwrap_or(0);
        let mut sums = vec![0.0f64; width];
        let mut counts = vec![0usize; width];
        for row in &self.durations {
            for (i, d) in row.iter().enumerate() {
                sums[i] += d.0 as f64;
                counts[i] += 1;
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// Per-ordinal mean SOS across processes.
    pub fn sos_by_ordinal(&self) -> Vec<f64> {
        let width = self.sos.iter().map(Vec::len).max().unwrap_or(0);
        let mut sums = vec![0.0f64; width];
        let mut counts = vec![0usize; width];
        for row in &self.sos {
            for (i, d) in row.iter().enumerate() {
                sums[i] += d.0 as f64;
                counts[i] += 1;
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect()
    }

    /// The globally largest SOS value and its location.
    pub fn argmax(&self) -> Option<(ProcessId, usize, DurationTicks)> {
        self.iter_sos()
            .max_by_key(|(p, i, v)| (*v, std::cmp::Reverse(p.0), std::cmp::Reverse(*i)))
    }

    /// Ablation helper: a matrix whose "SOS" values are the *plain
    /// segment durations* — i.e. the naive analysis the paper argues
    /// against in §V. Feeding this to
    /// [`ImbalanceAnalysis`](crate::imbalance::ImbalanceAnalysis) shows
    /// what detection quality is lost without the synchronization
    /// subtraction (synchronization hides the slow process, so the naive
    /// variant cannot localise imbalances across processes).
    pub fn durations_as_sos(&self) -> SosMatrix {
        SosMatrix {
            function: self.function,
            sos: self.durations.clone(),
            durations: self.durations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use crate::segment::Segmentation;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, Trace, TraceBuilder};

    /// The paper's Fig. 3: three processes, three invocations of the
    /// dominant function `a`, each `calc` + `MPI`. All processes leave
    /// each synchronization together.
    ///
    /// Iteration 1 (0–6): calc loads 5/3/1 → SOS 5/3/1 (the paper:
    /// "the SOS-time of Process 2 shows 1 compared to a SOS-time of 5
    /// for Process 0"). Durations are 6 for everyone.
    /// Iterations 2 and 3 (6–9, 9–12): balanced loads → duration 3
    /// ("twice as fast as the first iteration").
    pub(crate) fn fig3_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let a_f = b.define_function("a", FunctionRole::Compute);
        let calc_f = b.define_function("calc", FunctionRole::Compute);
        let mpi_f = b.define_function("MPI", FunctionRole::MpiCollective);
        // calc ticks per (process, iteration).
        let loads = [[5u64, 2, 2], [3, 2, 2], [1, 2, 2]];
        // iteration boundaries: 0..6, 6..9, 9..12.
        let bounds = [(0u64, 6u64), (6, 9), (9, 12)];
        for row in loads {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            for (k, (start, end)) in bounds.iter().enumerate() {
                w.enter(Timestamp(*start), a_f).unwrap();
                w.enter(Timestamp(*start), calc_f).unwrap();
                w.leave(Timestamp(start + row[k]), calc_f).unwrap();
                w.enter(Timestamp(start + row[k]), mpi_f).unwrap();
                w.leave(Timestamp(*end), mpi_f).unwrap();
                w.leave(Timestamp(*end), a_f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    fn fig3_matrix() -> SosMatrix {
        let trace = fig3_trace();
        let a = trace.registry().function_by_name("a").unwrap();
        let seg = Segmentation::new(&trace, &replay_all(&trace), a);
        SosMatrix::from_segmentation(&seg)
    }

    #[test]
    fn fig3_durations_match_paper() {
        let m = fig3_matrix();
        // Middle of Fig. 3: plain durations are 6 then 3 then 3, on every
        // process — the duration comparison cannot tell processes apart.
        for p in 0..3 {
            let d: Vec<u64> = m
                .process_durations(ProcessId(p))
                .iter()
                .map(|d| d.0)
                .collect();
            assert_eq!(d, vec![6, 3, 3], "process {p}");
        }
    }

    #[test]
    fn fig3_sos_times_match_paper() {
        let m = fig3_matrix();
        // Bottom of Fig. 3: subtracting synchronization reveals the load
        // imbalance of the first iteration.
        assert_eq!(m.sos(ProcessId(0), 0), Some(DurationTicks(5)));
        assert_eq!(m.sos(ProcessId(1), 0), Some(DurationTicks(3)));
        assert_eq!(m.sos(ProcessId(2), 0), Some(DurationTicks(1)));
        // Balanced iterations: SOS 2 everywhere.
        for p in 0..3 {
            assert_eq!(m.sos(ProcessId(p), 1), Some(DurationTicks(2)));
            assert_eq!(m.sos(ProcessId(p), 2), Some(DurationTicks(2)));
        }
        // The hotspot is Process 0's first segment.
        let (p, i, v) = m.argmax().unwrap();
        assert_eq!((p, i, v), (ProcessId(0), 0, DurationTicks(5)));
    }

    #[test]
    fn totals_and_maxima() {
        let m = fig3_matrix();
        assert_eq!(
            m.process_totals(),
            vec![DurationTicks(9), DurationTicks(7), DurationTicks(5)]
        );
        assert_eq!(
            m.process_maxima(),
            vec![DurationTicks(5), DurationTicks(3), DurationTicks(2)]
        );
    }

    #[test]
    fn ordinal_series() {
        let m = fig3_matrix();
        assert_eq!(m.duration_by_ordinal(), vec![6.0, 3.0, 3.0]);
        let sos = m.sos_by_ordinal();
        assert!((sos[0] - 3.0).abs() < 1e-12);
        assert!((sos[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_summary() {
        let m = fig3_matrix();
        let s = m.sos_stats();
        assert_eq!(s.count, 9);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.median, 2);
        let d = m.duration_stats();
        assert_eq!(d.max, 6);
        assert_eq!(d.min, 3);
    }

    #[test]
    fn tick_stats_edge_cases() {
        let empty = TickStats::from_values([]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.cv(), 0.0);
        let single = TickStats::from_values([7]);
        assert_eq!(single.mean, 7.0);
        assert_eq!(single.stddev, 0.0);
        assert_eq!(single.median, 7);
        let even = TickStats::from_values([1, 3, 5, 7]);
        assert_eq!(even.median, 3);
        assert_eq!(even.mean, 4.0);
    }

    #[test]
    fn empty_matrix() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        b.define_process("p0");
        let trace = b.finish().unwrap();
        let seg = Segmentation::new(&trace, &replay_all(&trace), f);
        let m = SosMatrix::from_segmentation(&seg);
        assert_eq!(m.argmax(), None);
        assert_eq!(m.sos_stats().count, 0);
        assert!(m.duration_by_ordinal().is_empty());
    }
}
