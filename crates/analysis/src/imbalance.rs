//! Imbalance detection over the SOS-time matrix.
//!
//! The paper guides the analyst visually: high (red) SOS values stand out
//! on the timeline. This module adds the programmatic counterpart used by
//! the report, the CLI, and the experiment harness: robust outlier scores
//! for individual segments and for whole processes, plus a temporal trend
//! of segment durations (the paper's COSMO-SPECS study observes
//! "gradually increased durations towards the end of the run").
//!
//! Scores are robust z-scores, `(x − median) / (1.4826 · MAD)`, which
//! tolerate the very outliers being hunted (a plain mean/σ score would be
//! dragged by them). If the MAD degenerates to zero (many identical
//! values) the mean absolute deviation about the median is the fallback
//! scale.

use crate::sos::SosMatrix;
use perfvar_trace::{DurationTicks, ProcessId};
use serde::{Deserialize, Serialize};

/// Detection thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceConfig {
    /// Robust z-score above which a segment/process is an outlier.
    pub z_threshold: f64,
    /// Additionally require the value to exceed the median by this
    /// relative margin (guards against flagging noise in near-constant
    /// data where the scale estimate is tiny).
    pub min_relative_excess: f64,
}

impl Default for ImbalanceConfig {
    fn default() -> ImbalanceConfig {
        ImbalanceConfig {
            z_threshold: 3.5,
            min_relative_excess: 0.10,
        }
    }
}

/// One flagged segment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Outlier {
    /// Process of the flagged segment.
    pub process: ProcessId,
    /// Segment ordinal on that process.
    pub ordinal: usize,
    /// The segment's SOS-time.
    pub sos: DurationTicks,
    /// Robust z-score of the SOS value.
    pub score: f64,
}

/// Linear trend of mean segment duration over ordinals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trend {
    /// Least-squares slope, ticks per segment ordinal.
    pub slope: f64,
    /// `(last fitted value − first fitted value) / first fitted value`;
    /// e.g. `1.0` means durations doubled over the run.
    pub relative_increase: f64,
}

/// The result of imbalance detection on one SOS matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImbalanceAnalysis {
    /// Flagged segments, highest score first.
    pub segment_outliers: Vec<Outlier>,
    /// Robust z-score of each process's total SOS-time.
    pub process_scores: Vec<f64>,
    /// Processes whose total SOS-time is an outlier, highest score first.
    pub process_outliers: Vec<ProcessId>,
    /// Trend of mean segment duration over the run.
    pub duration_trend: Trend,
    /// The configuration used.
    pub config: ImbalanceConfig,
}

impl ImbalanceAnalysis {
    /// Detects imbalances in `matrix` using `config`.
    pub fn detect(matrix: &SosMatrix, config: ImbalanceConfig) -> ImbalanceAnalysis {
        // --- per-segment outliers ---
        let values: Vec<f64> = matrix.iter_sos().map(|(_, _, v)| v.0 as f64).collect();
        let scorer = RobustScorer::fit(&values);
        let mut segment_outliers: Vec<Outlier> = matrix
            .iter_sos()
            .filter_map(|(p, i, v)| {
                let score = scorer.score(v.0 as f64);
                let excess_ok = scorer.median > 0.0
                    && v.0 as f64 >= scorer.median * (1.0 + config.min_relative_excess);
                (score >= config.z_threshold && excess_ok).then_some(Outlier {
                    process: p,
                    ordinal: i,
                    sos: v,
                    score,
                })
            })
            .collect();
        segment_outliers.sort_by(|a, b| b.score.total_cmp(&a.score));

        // --- per-process outliers (total SOS = computational load) ---
        let totals: Vec<f64> = matrix.process_totals().iter().map(|d| d.0 as f64).collect();
        let pscorer = RobustScorer::fit(&totals);
        let process_scores: Vec<f64> = totals.iter().map(|&t| pscorer.score(t)).collect();
        let mut process_outliers: Vec<ProcessId> = process_scores
            .iter()
            .enumerate()
            .filter(|(p, &score)| {
                score >= config.z_threshold
                    && pscorer.median > 0.0
                    && totals[*p] >= pscorer.median * (1.0 + config.min_relative_excess)
            })
            .map(|(p, _)| ProcessId::from_index(p))
            .collect();
        process_outliers
            .sort_by(|a, b| process_scores[b.index()].total_cmp(&process_scores[a.index()]));

        let duration_trend = Trend::fit_robust(&matrix.duration_by_ordinal());

        ImbalanceAnalysis {
            segment_outliers,
            process_scores,
            process_outliers,
            duration_trend,
            config,
        }
    }

    /// The process with the highest total-SOS score, if any process
    /// recorded segments (not necessarily above threshold).
    pub fn hottest_process(&self) -> Option<ProcessId> {
        self.process_scores
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(p, _)| ProcessId::from_index(p))
    }

    /// The flagged segment with the highest score.
    pub fn hottest_segment(&self) -> Option<&Outlier> {
        self.segment_outliers.first()
    }

    /// Whether anything was flagged.
    pub fn has_findings(&self) -> bool {
        !self.segment_outliers.is_empty() || !self.process_outliers.is_empty()
    }
}

/// Waste quantification: how much aggregate CPU time the detected
/// imbalance costs.
///
/// Related work (Scalasca) ranks findings "by their severity and impact
/// on the application performance"; this provides the same guidance for
/// SOS findings. Under synchronized iterations every process effectively
/// waits for the per-ordinal maximum, so the **waste** of segment
/// ordinal `k` is `Σ_p (max_sos(k) − sos(p, k))` — the CPU time the
/// other processes spend waiting for the slowest one. Perfect balance ⇒
/// zero waste.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WasteAnalysis {
    /// Waste per segment ordinal.
    pub per_ordinal: Vec<DurationTicks>,
    /// Total waste across the run.
    pub total: DurationTicks,
    /// Total SOS (useful work) across the run.
    pub total_sos: DurationTicks,
}

impl WasteAnalysis {
    /// Computes the waste of `matrix`. Ragged rows contribute to the
    /// ordinals they have.
    pub fn compute(matrix: &SosMatrix) -> WasteAnalysis {
        let p = matrix.num_processes();
        let width = (0..p)
            .map(|i| matrix.process_sos(ProcessId::from_index(i)).len())
            .max()
            .unwrap_or(0);
        let mut maxima = vec![0u64; width];
        for (_, i, v) in matrix.iter_sos() {
            maxima[i] = maxima[i].max(v.0);
        }
        let mut per_ordinal = vec![0u64; width];
        for (_, i, v) in matrix.iter_sos() {
            per_ordinal[i] += maxima[i] - v.0;
        }
        let total = DurationTicks(per_ordinal.iter().sum());
        let total_sos = DurationTicks(matrix.iter_sos().map(|(_, _, v)| v.0).sum());
        WasteAnalysis {
            per_ordinal: per_ordinal.into_iter().map(DurationTicks).collect(),
            total,
            total_sos,
        }
    }

    /// Fraction of aggregate CPU time lost to waiting:
    /// `waste / (waste + useful)`. This bounds the speedup a perfect
    /// load balance could deliver.
    pub fn waste_fraction(&self) -> f64 {
        let denom = self.total.0 + self.total_sos.0;
        if denom == 0 {
            0.0
        } else {
            self.total.0 as f64 / denom as f64
        }
    }

    /// The ordinal with the highest waste (the iteration most worth
    /// fixing first), if any segment exists.
    pub fn worst_ordinal(&self) -> Option<usize> {
        self.per_ordinal
            .iter()
            .enumerate()
            .max_by_key(|(i, v)| (**v, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
    }
}

/// Median/MAD-based scorer with σ fallback.
#[derive(Debug)]
struct RobustScorer {
    median: f64,
    scale: f64,
}

impl RobustScorer {
    fn fit(values: &[f64]) -> RobustScorer {
        if values.is_empty() {
            return RobustScorer {
                median: 0.0,
                scale: 0.0,
            };
        }
        let median = median_of(values);
        let deviations: Vec<f64> = values.iter().map(|v| (v - median).abs()).collect();
        let mad = median_of(&deviations);
        let mut scale = 1.4826 * mad;
        if scale <= f64::EPSILON {
            // MAD degenerates to zero when more than half the values are
            // identical — common for balanced runs with a few hot spots.
            // Fall back to the mean absolute deviation about the median
            // (consistency constant 1.2533 for normal data), which stays
            // small in that regime instead of being inflated by the very
            // outliers we are hunting (as σ would be).
            let mean_ad = deviations.iter().sum::<f64>() / deviations.len() as f64;
            scale = 1.2533 * mean_ad;
        }
        RobustScorer { median, scale }
    }

    fn score(&self, value: f64) -> f64 {
        if self.scale <= f64::EPSILON {
            0.0
        } else {
            (value - self.median) / self.scale
        }
    }
}

fn median_of(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

impl Trend {
    /// Robust linear fit: a least-squares fit, then points whose
    /// residual exceeds 3 × (1.4826·MAD of residuals) are rejected and
    /// the fit repeated. One warm-up iteration absorbing startup skew
    /// (common in real traces — and in the WRF case study, whose first
    /// timestep soaks up init-phase imbalance) would otherwise fake a
    /// strong negative trend.
    pub fn fit_robust(series: &[f64]) -> Trend {
        let first = Trend::fit(series);
        if series.len() < 4 {
            return first;
        }
        let intercept_at = |t: &Trend, x: f64, mean_x: f64, mean_y: f64| -> f64 {
            mean_y + t.slope * (x - mean_x)
        };
        let n = series.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = series.iter().sum::<f64>() / n;
        let residuals: Vec<f64> = series
            .iter()
            .enumerate()
            .map(|(i, &y)| (y - intercept_at(&first, i as f64, mean_x, mean_y)).abs())
            .collect();
        let mad = median_of(&residuals);
        let cutoff = 3.0 * 1.4826 * mad;
        if cutoff <= f64::EPSILON {
            return first;
        }
        let kept: Vec<(usize, f64)> = series
            .iter()
            .enumerate()
            .filter(|(i, &y)| (y - intercept_at(&first, *i as f64, mean_x, mean_y)).abs() <= cutoff)
            .map(|(i, &y)| (i, y))
            .collect();
        if kept.len() == series.len() || kept.len() < 3 {
            return first;
        }
        // Refit on the surviving points (original x positions).
        let kn = kept.len() as f64;
        let kmx = kept.iter().map(|(i, _)| *i as f64).sum::<f64>() / kn;
        let kmy = kept.iter().map(|(_, y)| *y).sum::<f64>() / kn;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for (i, y) in &kept {
            let dx = *i as f64 - kmx;
            sxy += dx * (y - kmy);
            sxx += dx * dx;
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let first_fitted = kmy - slope * kmx;
        let last_fitted = first_fitted + slope * (n - 1.0);
        let relative_increase = if first_fitted.abs() > f64::EPSILON {
            (last_fitted - first_fitted) / first_fitted
        } else {
            0.0
        };
        Trend {
            slope,
            relative_increase,
        }
    }

    /// Least-squares linear fit of `series` against its index.
    pub fn fit(series: &[f64]) -> Trend {
        let n = series.len();
        if n < 2 {
            return Trend::default();
        }
        let nf = n as f64;
        let mean_x = (nf - 1.0) / 2.0;
        let mean_y = series.iter().sum::<f64>() / nf;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for (i, &y) in series.iter().enumerate() {
            let dx = i as f64 - mean_x;
            sxy += dx * (y - mean_y);
            sxx += dx * dx;
        }
        let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
        let first = mean_y - slope * mean_x;
        let last = first + slope * (nf - 1.0);
        let relative_increase = if first.abs() > f64::EPSILON {
            (last - first) / first
        } else {
            0.0
        };
        Trend {
            slope,
            relative_increase,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use crate::segment::Segmentation;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, Trace, TraceBuilder};

    /// Builds a trace with `procs` processes × `iters` balanced segments
    /// of `base` ticks, plus an injected hot segment.
    fn trace_with_hot_segment(
        procs: usize,
        iters: usize,
        base: u64,
        hot: (usize, usize, u64),
    ) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for pi in 0..procs {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for k in 0..iters {
                let load = if (pi, k) == (hot.0, hot.1) {
                    hot.2
                } else {
                    base
                };
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
            let _ = pi;
        }
        b.finish().unwrap()
    }

    fn matrix_of(trace: &Trace) -> SosMatrix {
        let f = trace.registry().function_by_name("iter").unwrap();
        SosMatrix::from_segmentation(&Segmentation::new(trace, &replay_all(trace), f))
    }

    #[test]
    fn single_hot_segment_flagged() {
        let trace = trace_with_hot_segment(6, 10, 100, (3, 7, 500));
        let m = matrix_of(&trace);
        let a = ImbalanceAnalysis::detect(&m, ImbalanceConfig::default());
        assert_eq!(a.segment_outliers.len(), 1);
        let o = a.hottest_segment().unwrap();
        assert_eq!(o.process, ProcessId(3));
        assert_eq!(o.ordinal, 7);
        assert_eq!(o.sos, DurationTicks(500));
        assert!(o.score > 3.5);
        // Process 3 carries the extra load overall too.
        assert_eq!(a.hottest_process(), Some(ProcessId(3)));
    }

    #[test]
    fn balanced_matrix_has_no_findings() {
        let trace = trace_with_hot_segment(4, 8, 100, (0, 0, 100));
        let m = matrix_of(&trace);
        let a = ImbalanceAnalysis::detect(&m, ImbalanceConfig::default());
        assert!(!a.has_findings());
        assert!(a.segment_outliers.is_empty());
        assert!(a.process_outliers.is_empty());
    }

    #[test]
    fn small_noise_not_flagged() {
        // All identical except one value 5 % higher: below the relative
        // excess gate even though MAD-based z would explode (scale ≈ 0).
        let trace = trace_with_hot_segment(4, 10, 1000, (1, 2, 1050));
        let m = matrix_of(&trace);
        let a = ImbalanceAnalysis::detect(&m, ImbalanceConfig::default());
        assert!(a.segment_outliers.is_empty());
    }

    #[test]
    fn overloaded_process_flagged() {
        // Process 2 runs every segment 3× longer.
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for pi in 0..8 {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for _ in 0..6 {
                let load = if pi == 2 { 300 } else { 100 };
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace = b.finish().unwrap();
        let m = matrix_of(&trace);
        let a = ImbalanceAnalysis::detect(&m, ImbalanceConfig::default());
        assert_eq!(a.process_outliers, vec![ProcessId(2)]);
        assert_eq!(a.hottest_process(), Some(ProcessId(2)));
    }

    #[test]
    fn trend_detects_gradual_slowdown() {
        let series: Vec<f64> = (0..20).map(|i| 100.0 + 10.0 * i as f64).collect();
        let t = Trend::fit(&series);
        assert!((t.slope - 10.0).abs() < 1e-9);
        assert!((t.relative_increase - 1.9).abs() < 1e-9);
        let flat = Trend::fit(&[5.0, 5.0, 5.0]);
        assert_eq!(flat.slope, 0.0);
        assert_eq!(flat.relative_increase, 0.0);
    }

    #[test]
    fn robust_trend_ignores_a_warmup_spike() {
        // Flat series with a huge first value (init-skew absorption):
        // the plain fit reports a steep decline, the robust fit is flat.
        let mut series = vec![100.0f64; 20];
        series[0] = 5_000.0;
        let plain = Trend::fit(&series);
        assert!(plain.relative_increase < -0.5);
        let robust = Trend::fit_robust(&series);
        assert!(
            robust.relative_increase.abs() < 0.05,
            "robust trend {robust:?}"
        );
    }

    #[test]
    fn robust_trend_keeps_a_genuine_slope() {
        let series: Vec<f64> = (0..30).map(|i| 100.0 + 10.0 * i as f64).collect();
        let robust = Trend::fit_robust(&series);
        assert!((robust.slope - 10.0).abs() < 1e-6, "{robust:?}");
        assert!((robust.relative_increase - 2.9).abs() < 1e-6);
    }

    #[test]
    fn trend_edge_cases() {
        assert_eq!(Trend::fit(&[]), Trend::default());
        assert_eq!(Trend::fit(&[1.0]), Trend::default());
    }

    #[test]
    fn empty_matrix_yields_empty_analysis() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let _f = b.define_function("iter", FunctionRole::Compute);
        b.define_process("p0");
        let trace = b.finish().unwrap();
        let m = matrix_of(&trace);
        let a = ImbalanceAnalysis::detect(&m, ImbalanceConfig::default());
        assert!(!a.has_findings());
        assert_eq!(a.hottest_process(), Some(ProcessId(0)));
        assert!(a.hottest_segment().is_none());
    }

    #[test]
    fn waste_of_fig3_example() {
        // Fig. 3 loads: iteration 0 has SOS 5/3/1 → waste (5-5)+(5-3)+(5-1)=6.
        // Iterations 1 and 2 are balanced (2/2/2) → waste 0.
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for loads in [[5u64, 2, 2], [3, 2, 2], [1, 2, 2]] {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for load in loads {
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace = b.finish().unwrap();
        let m = matrix_of(&trace);
        let waste = WasteAnalysis::compute(&m);
        assert_eq!(
            waste.per_ordinal,
            vec![DurationTicks(6), DurationTicks(0), DurationTicks(0)]
        );
        assert_eq!(waste.total, DurationTicks(6));
        assert_eq!(waste.total_sos, DurationTicks(21));
        assert_eq!(waste.worst_ordinal(), Some(0));
        assert!((waste.waste_fraction() - 6.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_run_has_zero_waste() {
        let trace = trace_with_hot_segment(4, 6, 100, (0, 0, 100));
        let waste = WasteAnalysis::compute(&matrix_of(&trace));
        assert_eq!(waste.total, DurationTicks::ZERO);
        assert_eq!(waste.waste_fraction(), 0.0);
    }

    #[test]
    fn hot_segment_concentrates_waste_in_its_ordinal() {
        let trace = trace_with_hot_segment(5, 8, 100, (2, 3, 600));
        let waste = WasteAnalysis::compute(&matrix_of(&trace));
        assert_eq!(waste.worst_ordinal(), Some(3));
        // Waste of ordinal 3: four processes wait 500 each.
        assert_eq!(waste.per_ordinal[3], DurationTicks(4 * 500));
    }

    #[test]
    fn empty_waste() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let _f = b.define_function("iter", FunctionRole::Compute);
        b.define_process("p0");
        let trace = b.finish().unwrap();
        let waste = WasteAnalysis::compute(&matrix_of(&trace));
        assert!(waste.per_ordinal.is_empty());
        assert_eq!(waste.worst_ordinal(), None);
        assert_eq!(waste.waste_fraction(), 0.0);
    }

    #[test]
    fn outliers_sorted_by_score() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        for pi in 0..5 {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for k in 0..10 {
                let load = match (pi, k) {
                    (1, 3) => 900,
                    (4, 8) => 500,
                    _ => 100,
                };
                w.enter(Timestamp(t), f).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace = b.finish().unwrap();
        let m = matrix_of(&trace);
        let a = ImbalanceAnalysis::detect(&m, ImbalanceConfig::default());
        assert_eq!(a.segment_outliers.len(), 2);
        assert_eq!(a.segment_outliers[0].process, ProcessId(1));
        assert_eq!(a.segment_outliers[1].process, ProcessId(4));
        assert!(a.segment_outliers[0].score > a.segment_outliers[1].score);
    }
}
