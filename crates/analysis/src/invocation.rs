//! Call-stack replay: from event streams to function invocations.
//!
//! This module implements the paper's Fig. 1 semantics. For every
//! `Enter`/`Leave` pair it produces an [`Invocation`] carrying:
//!
//! * **inclusive time** — leave minus enter, *including* sub-calls;
//! * **exclusive time** — inclusive minus the inclusive times of direct
//!   children;
//! * **contained synchronization time** — the total inclusive time of
//!   synchronization-role descendants (an invocation whose own role is
//!   synchronizing contributes its full inclusive time; nested
//!   synchronization is not double-counted). This is the quantity the
//!   SOS-time computation (§V) subtracts from segment durations.
//!
//! Replay assumes a validated trace (see `perfvar_trace::validate`);
//! the trace types guarantee this for every constructed `Trace`.

use perfvar_trace::{DurationTicks, Event, FunctionId, ProcessId, Timestamp, Trace};
use serde::{Deserialize, Serialize};

/// One completed function invocation on one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invocation {
    /// The invoked function.
    pub function: FunctionId,
    /// Call-stack depth (0 = top level).
    pub depth: u32,
    /// Index of the parent invocation in the same
    /// [`ProcessInvocations`], if any.
    pub parent: Option<u32>,
    /// Enter timestamp.
    pub enter: Timestamp,
    /// Leave timestamp.
    pub leave: Timestamp,
    /// Total inclusive time of direct children.
    pub children_inclusive: DurationTicks,
    /// Synchronization/communication time contained in this invocation
    /// (its own inclusive time if its role is synchronizing).
    pub sync_within: DurationTicks,
}

impl Invocation {
    /// Inclusive time: full duration from enter to leave (Fig. 1).
    #[inline]
    pub fn inclusive(&self) -> DurationTicks {
        self.leave.since(self.enter)
    }

    /// Exclusive time: inclusive minus direct children (Fig. 1).
    #[inline]
    pub fn exclusive(&self) -> DurationTicks {
        self.inclusive().saturating_sub(self.children_inclusive)
    }

    /// Whether `t` falls within `[enter, leave)`.
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        self.enter <= t && t < self.leave
    }
}

/// All invocations of one process, in *enter order* (which is also
/// depth-first pre-order of the call tree).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProcessInvocations {
    /// The process these invocations belong to.
    pub process: ProcessId,
    invocations: Vec<Invocation>,
}

impl ProcessInvocations {
    /// The invocations in enter order.
    #[inline]
    pub fn invocations(&self) -> &[Invocation] {
        &self.invocations
    }

    /// Number of invocations.
    #[inline]
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether the process recorded no invocations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Iterates over the invocations of one function.
    pub fn of_function(&self, function: FunctionId) -> impl Iterator<Item = &Invocation> + '_ {
        self.invocations
            .iter()
            .filter(move |inv| inv.function == function)
    }

    /// The top-level (depth 0) invocations.
    pub fn roots(&self) -> impl Iterator<Item = &Invocation> + '_ {
        self.invocations.iter().filter(|inv| inv.depth == 0)
    }
}

/// Replays the call stack of one process.
pub fn replay_process(trace: &Trace, process: ProcessId) -> ProcessInvocations {
    let registry = trace.registry();
    let stream = trace.stream(process);
    // Frames under construction: (invocation index, accumulators).
    struct Frame {
        index: usize,
        children_inclusive: u64,
        sync_within: u64,
    }
    let mut invocations: Vec<Invocation> = Vec::with_capacity(stream.len() / 2);
    let mut stack: Vec<Frame> = Vec::new();
    for record in stream.records() {
        match record.event {
            Event::Enter { function } => {
                let index = invocations.len();
                invocations.push(Invocation {
                    function,
                    depth: stack.len() as u32,
                    parent: stack.last().map(|f| f.index as u32),
                    enter: record.time,
                    leave: record.time, // finalised on leave
                    children_inclusive: DurationTicks::ZERO,
                    sync_within: DurationTicks::ZERO,
                });
                stack.push(Frame {
                    index,
                    children_inclusive: 0,
                    sync_within: 0,
                });
            }
            Event::Leave { function } => {
                let frame = stack.pop().expect("validated trace: balanced leave");
                let inv = &mut invocations[frame.index];
                debug_assert_eq!(inv.function, function, "validated trace: matching leave");
                inv.leave = record.time;
                inv.children_inclusive = DurationTicks(frame.children_inclusive);
                let inclusive = inv.inclusive().0;
                let role_is_sync = registry.function_role(function).is_synchronization();
                let sync = if role_is_sync {
                    inclusive
                } else {
                    frame.sync_within
                };
                inv.sync_within = DurationTicks(sync);
                if let Some(parent) = stack.last_mut() {
                    parent.children_inclusive += inclusive;
                    parent.sync_within += sync;
                }
            }
            _ => {}
        }
    }
    debug_assert!(stack.is_empty(), "validated trace: balanced stream");
    ProcessInvocations {
        process,
        invocations,
    }
}

/// Replays every process of `trace` sequentially. See
/// [`crate::parallel::replay_all_parallel`] for the multi-threaded
/// variant.
pub fn replay_all(trace: &Trace) -> Vec<ProcessInvocations> {
    trace
        .registry()
        .process_ids()
        .map(|p| replay_process(trace, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvar_trace::{Clock, FunctionRole, TraceBuilder};

    /// The paper's Fig. 1: `foo` enters at 0, calls `bar` from 2 to 4,
    /// leaves at 6. Inclusive(foo) = 6, exclusive(foo) = 4.
    fn fig1_trace() -> (Trace, FunctionId, FunctionId) {
        let mut b = TraceBuilder::new(Clock::microseconds());
        #[allow(clippy::disallowed_names)] // the paper's Fig. 1 names it "foo"
        let foo = b.define_function("foo", FunctionRole::Compute);
        let bar = b.define_function("bar", FunctionRole::Compute);
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        w.enter(Timestamp(0), foo).unwrap();
        w.enter(Timestamp(2), bar).unwrap();
        w.leave(Timestamp(4), bar).unwrap();
        w.leave(Timestamp(6), foo).unwrap();
        (b.finish().unwrap(), foo, bar)
    }

    #[test]
    fn fig1_inclusive_exclusive() {
        let (trace, foo, bar) = fig1_trace();
        let inv = replay_process(&trace, ProcessId(0));
        assert_eq!(inv.len(), 2);
        let foo_inv = inv.of_function(foo).next().unwrap();
        assert_eq!(foo_inv.inclusive(), DurationTicks(6));
        assert_eq!(foo_inv.exclusive(), DurationTicks(4));
        let bar_inv = inv.of_function(bar).next().unwrap();
        assert_eq!(bar_inv.inclusive(), DurationTicks(2));
        assert_eq!(bar_inv.exclusive(), DurationTicks(2));
        assert_eq!(bar_inv.parent, Some(0));
        assert_eq!(bar_inv.depth, 1);
    }

    #[test]
    fn enter_order_is_preorder() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let a = b.define_function("a", FunctionRole::Compute);
        let c = b.define_function("c", FunctionRole::Compute);
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        // a [ c ] [ c ] a  — two siblings under one root.
        w.enter(Timestamp(0), a).unwrap();
        w.enter(Timestamp(1), c).unwrap();
        w.leave(Timestamp(2), c).unwrap();
        w.enter(Timestamp(3), c).unwrap();
        w.leave(Timestamp(4), c).unwrap();
        w.leave(Timestamp(5), a).unwrap();
        let trace = b.finish().unwrap();
        let inv = replay_process(&trace, ProcessId(0));
        let order: Vec<(FunctionId, u64)> = inv
            .invocations()
            .iter()
            .map(|i| (i.function, i.enter.0))
            .collect();
        assert_eq!(order, vec![(a, 0), (c, 1), (c, 3)]);
        assert_eq!(inv.roots().count(), 1);
    }

    #[test]
    fn sync_within_counts_sync_descendants_once() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let main_f = b.define_function("main", FunctionRole::Compute);
        let iter_f = b.define_function("iter", FunctionRole::Compute);
        let coll = b.define_function("MPI_Allreduce", FunctionRole::MpiCollective);
        let wait = b.define_function("MPI_Wait", FunctionRole::MpiWait);
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        w.enter(Timestamp(0), main_f).unwrap();
        w.enter(Timestamp(0), iter_f).unwrap();
        w.enter(Timestamp(10), coll).unwrap();
        // An MPI_Wait nested inside a collective: must not double count.
        w.enter(Timestamp(12), wait).unwrap();
        w.leave(Timestamp(18), wait).unwrap();
        w.leave(Timestamp(20), coll).unwrap();
        w.leave(Timestamp(30), iter_f).unwrap();
        w.leave(Timestamp(30), main_f).unwrap();
        let trace = b.finish().unwrap();
        let inv = replay_process(&trace, ProcessId(0));
        let iter_inv = inv.of_function(iter_f).next().unwrap();
        // The collective spans 10 ticks; the nested wait is inside it.
        assert_eq!(iter_inv.sync_within, DurationTicks(10));
        assert_eq!(iter_inv.inclusive(), DurationTicks(30));
        // main inherits the contained sync from iter.
        let main_inv = inv.of_function(main_f).next().unwrap();
        assert_eq!(main_inv.sync_within, DurationTicks(10));
        // The collective itself reports its own inclusive time as sync.
        let coll_inv = inv.of_function(coll).next().unwrap();
        assert_eq!(coll_inv.sync_within, DurationTicks(10));
    }

    #[test]
    fn sibling_sync_times_accumulate() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let iter_f = b.define_function("iter", FunctionRole::Compute);
        let bar = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        w.enter(Timestamp(0), iter_f).unwrap();
        w.enter(Timestamp(2), bar).unwrap();
        w.leave(Timestamp(5), bar).unwrap();
        w.enter(Timestamp(7), bar).unwrap();
        w.leave(Timestamp(9), bar).unwrap();
        w.leave(Timestamp(10), iter_f).unwrap();
        let trace = b.finish().unwrap();
        let inv = replay_process(&trace, ProcessId(0));
        let iter_inv = inv.of_function(iter_f).next().unwrap();
        assert_eq!(iter_inv.sync_within, DurationTicks(3 + 2));
        assert_eq!(iter_inv.exclusive(), DurationTicks(5));
    }

    #[test]
    fn recursion_produces_nested_invocations() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        w.enter(Timestamp(0), f).unwrap();
        w.enter(Timestamp(1), f).unwrap();
        w.leave(Timestamp(3), f).unwrap();
        w.leave(Timestamp(5), f).unwrap();
        let trace = b.finish().unwrap();
        let inv = replay_process(&trace, ProcessId(0));
        assert_eq!(inv.len(), 2);
        let outer = &inv.invocations()[0];
        let inner = &inv.invocations()[1];
        assert_eq!(outer.inclusive(), DurationTicks(5));
        assert_eq!(outer.exclusive(), DurationTicks(3));
        assert_eq!(inner.inclusive(), DurationTicks(2));
        assert_eq!(inner.parent, Some(0));
    }

    #[test]
    fn empty_stream_yields_no_invocations() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        b.define_process("p0");
        let trace = b.finish().unwrap();
        let inv = replay_process(&trace, ProcessId(0));
        assert!(inv.is_empty());
        assert_eq!(inv.roots().count(), 0);
    }

    #[test]
    fn replay_all_covers_every_process() {
        let (trace, _, _) = fig1_trace();
        let all = replay_all(&trace);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].process, ProcessId(0));
    }

    #[test]
    fn contains_uses_half_open_interval() {
        let (trace, foo, _) = fig1_trace();
        let inv = replay_process(&trace, ProcessId(0));
        let foo_inv = inv.of_function(foo).next().unwrap();
        assert!(foo_inv.contains(Timestamp(0)));
        assert!(foo_inv.contains(Timestamp(5)));
        assert!(!foo_inv.contains(Timestamp(6)));
    }
}
