//! The one-stop analysis pipeline and hotspot report.
//!
//! [`analyze`] chains the paper's steps: profile → dominant-function
//! selection → segmentation → SOS matrix → imbalance detection →
//! counter attribution/correlation. The default path is *fused*: every
//! per-process stage streams over the event stream once (see
//! [`crate::stream`] and [`crate::fused`]) on
//! [`AnalysisConfig::threads`] workers. [`analyze_reference`] runs the
//! original materialising pipeline — replay into invocation lists, then
//! rescan — and is kept as the executable specification the fused path
//! is property-tested against. The resulting [`Analysis`] is a
//! self-contained value (serialisable to JSON by the CLI) and can be
//! *refined* to a finer segmentation function, exactly as the analyst
//! does in the paper's case study B.

use crate::counters::{correlate_with_sos, CounterMatrix};
use crate::dominant::{DominantRanking, DominantSelection};
use crate::fused::fuse_segments_observed;
use crate::imbalance::{ImbalanceAnalysis, ImbalanceConfig, WasteAnalysis};
use crate::parallel::replay_all_parallel;
use crate::profile::ProfileTable;
use crate::segment::Segmentation;
use crate::sos::SosMatrix;
use crate::telemetry::{Stage, Telemetry};
use perfvar_trace::{FunctionId, MetricId, Registry, Trace, TraceMeta};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the analysis pipeline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Invocation-count multiplier of the dominant-function rule
    /// (§IV uses 2: at least `2p` invocations).
    pub dominant_multiplier: u64,
    /// Override: segment by this function name instead of the
    /// automatically selected dominant function.
    pub segment_function: Option<String>,
    /// Imbalance detection thresholds.
    pub imbalance: ImbalanceConfig,
    /// Worker threads for every per-process pipeline stage
    /// (0 = hardware parallelism).
    pub threads: usize,
    /// Attribute and correlate every metric channel in the trace.
    pub analyze_counters: bool,
    /// Read-buffer size in bytes for buffered out-of-core reads
    /// (ignored where a stream file is memory-mapped). Like `threads`,
    /// a pure performance knob: it never changes the result.
    #[serde(default = "AnalysisConfig::default_read_buffer_bytes")]
    pub read_buffer_bytes: usize,
    /// Memory-map archive stream files where the platform allows it
    /// (the default); `false` forces buffered reads everywhere.
    #[serde(default = "AnalysisConfig::default_mmap")]
    pub mmap: bool,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            dominant_multiplier: 2,
            segment_function: None,
            imbalance: ImbalanceConfig::default(),
            threads: 0,
            analyze_counters: true,
            read_buffer_bytes: AnalysisConfig::default_read_buffer_bytes(),
            mmap: true,
        }
    }
}

impl AnalysisConfig {
    fn default_read_buffer_bytes() -> usize {
        perfvar_trace::format::cursor::CursorOptions::DEFAULT_READ_BUFFER
    }

    fn default_mmap() -> bool {
        true
    }

    /// Canonical string of every field that affects the *result* of the
    /// pipeline — the configuration half of a content-addressed result
    /// cache key.
    ///
    /// [`threads`](AnalysisConfig::threads) is deliberately excluded —
    /// as are the pure I/O knobs
    /// [`read_buffer_bytes`](AnalysisConfig::read_buffer_bytes) and
    /// [`mmap`](AnalysisConfig::mmap):
    /// the pipeline is property-tested to produce bit-identical results
    /// at every thread count and on every read path, so two runs
    /// differing only in parallelism or I/O strategy must share a cache
    /// entry. Everything else participates, including
    /// the float thresholds (encoded via [`f64::to_bits`] so the key
    /// never depends on decimal formatting). Two configs with equal keys
    /// produce equal [`Analysis`] values on equal input; any change to a
    /// result-affecting field changes the key (each field lands in a
    /// fixed, delimited position).
    pub fn result_key(&self) -> String {
        format!(
            "v1;mult={};func={:?};z={:016x};excess={:016x};counters={}",
            self.dominant_multiplier,
            self.segment_function,
            self.imbalance.z_threshold.to_bits(),
            self.imbalance.min_relative_excess.to_bits(),
            self.analyze_counters,
        )
    }
}

/// Pipeline errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// No function satisfies the dominant-function rule (trace too small
    /// or not iterative).
    NoDominantFunction {
        /// The `multiplier × p` threshold that nothing passed.
        required_invocations: u64,
    },
    /// The `segment_function` override names an unknown function.
    UnknownFunction(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoDominantFunction {
                required_invocations,
            } => write!(
                f,
                "no function is invoked at least {required_invocations} times; \
                 cannot segment the run (is the trace iterative?)"
            ),
            AnalysisError::UnknownFunction(name) => {
                write!(f, "segment function {name:?} is not defined in the trace")
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Counter attribution of one metric channel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterAnalysis {
    /// The channel.
    pub metric: MetricId,
    /// Per-segment values.
    pub matrix: CounterMatrix,
    /// Pearson correlation with the SOS matrix, if defined.
    pub sos_correlation: Option<f64>,
}

/// The complete result of the paper's analysis pipeline on one trace.
///
/// `PartialEq` compares every component bit-for-bit; the equivalence
/// property tests rely on it to hold the fused and reference pipelines
/// (and runs at different thread counts) equal.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Name of the analysed trace.
    pub trace_name: String,
    /// Dominant-function selection outcome (candidates, threshold).
    pub dominant: DominantSelection,
    /// The segmentation function actually used (the dominant function,
    /// or the configured override / refinement).
    pub function: FunctionId,
    /// Per-function aggregated profiles.
    pub profiles: ProfileTable,
    /// Segments of the run.
    pub segmentation: Segmentation,
    /// The SOS-time matrix.
    pub sos: SosMatrix,
    /// Imbalance findings.
    pub imbalance: ImbalanceAnalysis,
    /// Waste quantification (CPU time lost to waiting for the slowest).
    pub waste: WasteAnalysis,
    /// Counter attributions (one per metric channel).
    pub counters: Vec<CounterAnalysis>,
}

/// Resolves the segmentation function: the configured override, or the
/// selected dominant function.
pub(crate) fn segmentation_function(
    registry: &Registry,
    dominant: &DominantSelection,
    config: &AnalysisConfig,
) -> Result<FunctionId, AnalysisError> {
    match &config.segment_function {
        Some(name) => registry
            .function_by_name(name)
            .ok_or_else(|| AnalysisError::UnknownFunction(name.clone())),
        None => dominant.function.ok_or(AnalysisError::NoDominantFunction {
            required_invocations: dominant.required_invocations,
        }),
    }
}

/// Derives the downstream results shared by all pipeline variants
/// (fused, reference, out-of-core) from a segmentation and its counter
/// matrices.
pub(crate) fn assemble(
    trace_name: String,
    config: &AnalysisConfig,
    dominant: DominantSelection,
    function: FunctionId,
    profiles: ProfileTable,
    segmentation: Segmentation,
    counter_matrices: Vec<CounterMatrix>,
) -> Analysis {
    let sos = SosMatrix::from_segmentation(&segmentation);
    let imbalance = ImbalanceAnalysis::detect(&sos, config.imbalance);
    let waste = WasteAnalysis::compute(&sos);
    let counters = counter_matrices
        .into_iter()
        .map(|matrix| CounterAnalysis {
            metric: matrix.metric,
            sos_correlation: correlate_with_sos(&matrix, &sos),
            matrix,
        })
        .collect();
    Analysis {
        trace_name,
        dominant,
        function,
        profiles,
        segmentation,
        sos,
        imbalance,
        waste,
        counters,
    }
}

/// Runs the full pipeline on `trace` — the fused streaming path.
///
/// Each per-process stage is a single pass over the process's event
/// stream on [`AnalysisConfig::threads`] workers: one pass builds the
/// profile table for dominant-function selection, a second fused pass
/// produces segments, SOS inputs and every counter channel at once.
/// Memory per worker is `O(stack depth + segments + functions)` instead
/// of `O(invocations)`. The result is identical to
/// [`analyze_reference`] (property-tested in `tests/properties.rs`).
/// For traces too large to load at all, see
/// [`analyze_path`](crate::outofcore::analyze_path), which produces the
/// same `Analysis` straight from disk.
///
/// ```
/// use perfvar_analysis::report::{analyze, AnalysisConfig};
/// use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};
///
/// // Four ranks, eight iterations each; rank 2's sixth iteration is slow.
/// let mut b = TraceBuilder::new(Clock::microseconds()).with_name("demo");
/// let iter_f = b.define_function("iteration", FunctionRole::Compute);
/// for pi in 0..4u64 {
///     let p = b.define_process(format!("rank {pi}"));
///     let w = b.process_mut(p);
///     let mut t = 0;
///     for k in 0..8u64 {
///         let load = if pi == 2 && k == 5 { 500 } else { 100 };
///         w.enter(Timestamp(t), iter_f).unwrap();
///         t += load;
///         w.leave(Timestamp(t), iter_f).unwrap();
///     }
/// }
/// let trace = b.finish().unwrap();
///
/// let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
/// // "iteration" passes the 2p rule and segments the run …
/// assert_eq!(trace.registry().function_name(analysis.function), "iteration");
/// // … and the injected hotspot is flagged on rank 2, ordinal 5.
/// let hot = analysis.imbalance.hottest_segment().unwrap();
/// assert_eq!((hot.process.index(), hot.ordinal), (2, 5));
/// ```
pub fn analyze(trace: &Trace, config: &AnalysisConfig) -> Result<Analysis, AnalysisError> {
    analyze_observed(trace, config, &Telemetry::noop())
}

/// Like [`analyze`] but recording per-stage wall time, throughput
/// counters and peak-state gauges into `telemetry` (see
/// [`crate::telemetry`]). With [`Telemetry::noop`] this *is* [`analyze`]
/// — the instrumentation reduces to always-false branches.
pub fn analyze_observed(
    trace: &Trace,
    config: &AnalysisConfig,
    telemetry: &Telemetry,
) -> Result<Analysis, AnalysisError> {
    telemetry.begin_ranks(Stage::Profile, trace.num_processes());
    let profiles = {
        let _span = telemetry.span(Stage::Profile);
        ProfileTable::stream_observed(trace, config.threads, telemetry)
    };
    let ranking = DominantRanking::with_multiplier(trace, &profiles, config.dominant_multiplier);
    let dominant = ranking.selection();
    let function = segmentation_function(trace.registry(), &dominant, config)?;

    telemetry.begin_ranks(Stage::Fuse, trace.num_processes());
    let fused = {
        let _span = telemetry.span(Stage::Fuse);
        fuse_segments_observed(
            trace,
            function,
            config.threads,
            config.analyze_counters,
            telemetry,
        )
    };
    let _span = telemetry.span(Stage::Assemble);
    Ok(assemble(
        trace.name.clone(),
        config,
        dominant,
        function,
        profiles,
        fused.segmentation,
        fused.counters,
    ))
}

/// Runs the full pipeline via the materialising reference implementation:
/// replay every process into invocation lists, then derive the profile,
/// segmentation and counter matrices from rescans.
///
/// Kept as the executable specification of the pipeline semantics; the
/// fused [`analyze`] must produce bit-identical results.
pub fn analyze_reference(
    trace: &Trace,
    config: &AnalysisConfig,
) -> Result<Analysis, AnalysisError> {
    let replayed = replay_all_parallel(trace, config.threads);
    let profiles = ProfileTable::from_invocations(trace, &replayed);
    let ranking = DominantRanking::with_multiplier(trace, &profiles, config.dominant_multiplier);
    let dominant = ranking.selection();
    let function = segmentation_function(trace.registry(), &dominant, config)?;

    let segmentation = Segmentation::new(trace, &replayed, function);
    let counter_matrices = if config.analyze_counters {
        trace
            .registry()
            .metric_ids()
            .map(|m| CounterMatrix::for_segments(trace, &segmentation, m))
            .collect()
    } else {
        Vec::new()
    };
    Ok(assemble(
        trace.name.clone(),
        config,
        dominant,
        function,
        profiles,
        segmentation,
        counter_matrices,
    ))
}

impl Analysis {
    /// Re-runs the pipeline with the next-finer segmentation function
    /// (§VII-B: "choosing a function with a smaller inclusive time [...]
    /// achieves a more fine-grained segmentation"). Returns `None` when
    /// no finer candidate exists.
    pub fn refine(&self, trace: &Trace, config: &AnalysisConfig) -> Option<Analysis> {
        let pos = self
            .dominant
            .candidates
            .iter()
            .position(|f| *f == self.function)?;
        let next = *self.dominant.candidates.get(pos + 1)?;
        let next_name = trace.registry().function_name(next).to_string();
        let cfg = AnalysisConfig {
            segment_function: Some(next_name),
            ..config.clone()
        };
        analyze(trace, &cfg).ok()
    }

    /// Renders a human-readable hotspot report.
    pub fn render_text(&self, trace: &Trace) -> String {
        self.render_text_meta(&TraceMeta::of(trace))
    }

    /// Renders the hotspot report from trace *metadata* alone — the
    /// out-of-core path never holds a [`Trace`], only a [`TraceMeta`]
    /// assembled while streaming. [`render_text`](Analysis::render_text)
    /// is this with `TraceMeta::of(trace)`.
    pub fn render_text_meta(&self, meta: &TraceMeta) -> String {
        use std::fmt::Write as _;
        let reg = &meta.registry;
        let clock = meta.clock;
        let mut out = String::new();
        let _ = writeln!(out, "perfvar analysis of {:?}", self.trace_name);
        let _ = writeln!(
            out,
            "  processes: {}, events: {}, span: {}",
            meta.num_processes(),
            meta.num_events,
            clock.format_duration(meta.span()),
        );
        let _ = writeln!(
            out,
            "  segmentation function: {:?} ({})",
            reg.function_name(self.function),
            if Some(self.function) == self.dominant.function {
                "time-dominant"
            } else {
                "override/refined"
            }
        );
        let _ = writeln!(
            out,
            "  candidates (≥{} invocations): {}",
            self.dominant.required_invocations,
            self.dominant
                .candidates
                .iter()
                .map(|f| format!("{:?}", reg.function_name(*f)))
                .collect::<Vec<_>>()
                .join(", ")
        );
        let stats = self.sos.sos_stats();
        let _ = writeln!(
            out,
            "  segments: {} ({} per process max); SOS median {} / max {}",
            self.segmentation.len(),
            self.segmentation.max_segments_per_process(),
            clock.format_duration(perfvar_trace::DurationTicks(stats.median)),
            clock.format_duration(perfvar_trace::DurationTicks(stats.max)),
        );
        let _ = writeln!(
            out,
            "  waste (waiting for the slowest): {} = {:.1}% of aggregate CPU time",
            clock.format_duration(self.waste.total),
            self.waste.waste_fraction() * 100.0
        );
        let trend = self.imbalance.duration_trend;
        if trend.relative_increase.abs() > 0.1 {
            let _ = writeln!(
                out,
                "  duration trend: {:+.0}% over the run",
                trend.relative_increase * 100.0
            );
        }
        if self.imbalance.process_outliers.is_empty() {
            let _ = writeln!(out, "  process outliers: none");
        } else {
            let _ = writeln!(out, "  process outliers (by total SOS-time):");
            for p in &self.imbalance.process_outliers {
                let _ = writeln!(
                    out,
                    "    {} ({}) score {:.1}",
                    p,
                    reg.process(*p).name,
                    self.imbalance.process_scores[p.index()]
                );
            }
        }
        if self.imbalance.segment_outliers.is_empty() {
            let _ = writeln!(out, "  segment outliers: none");
        } else {
            let _ = writeln!(out, "  segment outliers:");
            for o in self.imbalance.segment_outliers.iter().take(10) {
                let _ = writeln!(
                    out,
                    "    {} segment #{} SOS {} score {:.1}",
                    o.process,
                    o.ordinal,
                    clock.format_duration(o.sos),
                    o.score
                );
            }
            if self.imbalance.segment_outliers.len() > 10 {
                let _ = writeln!(
                    out,
                    "    … and {} more",
                    self.imbalance.segment_outliers.len() - 10
                );
            }
        }
        for c in &self.counters {
            let def = reg.metric(c.metric);
            match c.sos_correlation {
                Some(r) => {
                    let _ = writeln!(
                        out,
                        "  counter {:?}: SOS correlation r = {:+.3}{}",
                        def.name,
                        r,
                        if r > 0.9 {
                            "  (matches the SOS heatmap)"
                        } else {
                            ""
                        }
                    );
                }
                None => {
                    let _ = writeln!(out, "  counter {:?}: no variation", def.name);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfvar_trace::{Clock, DurationTicks, FunctionRole, ProcessId, Timestamp, TraceBuilder};

    /// Balanced 4-process trace with a hot segment on process 2 and a
    /// nested finer function.
    fn pipeline_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds()).with_name("pipeline");
        let iter_f = b.define_function("iteration", FunctionRole::Compute);
        let inner_f = b.define_function("inner_step", FunctionRole::Compute);
        let mpi_f = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        for pi in 0..4u32 {
            let p = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(p);
            let mut t = 0u64;
            for k in 0..8u64 {
                let load = if pi == 2 && k == 5 { 500 } else { 100 };
                w.enter(Timestamp(t), iter_f).unwrap();
                // Two inner steps per iteration → inner qualifies as a
                // finer candidate.
                w.enter(Timestamp(t), inner_f).unwrap();
                w.leave(Timestamp(t + load / 2), inner_f).unwrap();
                w.enter(Timestamp(t + load / 2), inner_f).unwrap();
                w.leave(Timestamp(t + load), inner_f).unwrap();
                t += load;
                w.enter(Timestamp(t), mpi_f).unwrap();
                // All ranks sync at the slowest: iteration 5 ends late.
                let end = (k + 1) * 100 + if k >= 5 { 400 } else { 0 };
                t = end;
                w.leave(Timestamp(t), mpi_f).unwrap();
                w.leave(Timestamp(t), iter_f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn full_pipeline_detects_injected_hotspot() {
        let trace = pipeline_trace();
        let a = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let reg = trace.registry();
        assert_eq!(reg.function_name(a.function), "iteration");
        let hot = a.imbalance.hottest_segment().unwrap();
        assert_eq!(hot.process, ProcessId(2));
        assert_eq!(hot.ordinal, 5);
        assert_eq!(hot.sos, DurationTicks(500));
        assert_eq!(a.imbalance.hottest_process(), Some(ProcessId(2)));
    }

    #[test]
    fn refinement_moves_to_finer_function() {
        let trace = pipeline_trace();
        let a = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let refined = a.refine(&trace, &AnalysisConfig::default()).unwrap();
        assert_eq!(
            trace.registry().function_name(refined.function),
            "inner_step"
        );
        // Twice as many segments per process.
        assert_eq!(
            refined.segmentation.max_segments_per_process(),
            2 * a.segmentation.max_segments_per_process()
        );
        // The hotspot is still on process 2, now pinned to one half-step.
        let hot = refined.imbalance.hottest_segment().unwrap();
        assert_eq!(hot.process, ProcessId(2));
    }

    #[test]
    fn override_function_used() {
        let trace = pipeline_trace();
        let cfg = AnalysisConfig {
            segment_function: Some("inner_step".into()),
            ..AnalysisConfig::default()
        };
        let a = analyze(&trace, &cfg).unwrap();
        assert_eq!(trace.registry().function_name(a.function), "inner_step");
    }

    #[test]
    fn unknown_override_rejected() {
        let trace = pipeline_trace();
        let cfg = AnalysisConfig {
            segment_function: Some("nope".into()),
            ..AnalysisConfig::default()
        };
        assert_eq!(
            analyze(&trace, &cfg).unwrap_err(),
            AnalysisError::UnknownFunction("nope".into())
        );
    }

    #[test]
    fn non_iterative_trace_has_no_dominant() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("main", FunctionRole::Compute);
        let p = b.define_process("p0");
        b.process_mut(p).enter(Timestamp(0), f).unwrap();
        b.process_mut(p).leave(Timestamp(10), f).unwrap();
        let trace = b.finish().unwrap();
        let err = analyze(&trace, &AnalysisConfig::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::NoDominantFunction { .. }));
        assert!(err.to_string().contains("iterative"));
    }

    #[test]
    fn text_report_mentions_findings() {
        let trace = pipeline_trace();
        let a = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let text = a.render_text(&trace);
        assert!(text.contains("iteration"), "{text}");
        assert!(text.contains("segment outliers"), "{text}");
        assert!(text.contains("P2"), "{text}");
    }

    #[test]
    fn analysis_serialises_to_json() {
        let trace = pipeline_trace();
        let a = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("segment_outliers"));
        let back: Analysis = serde_json::from_str(&json).unwrap();
        assert_eq!(back.function, a.function);
        assert_eq!(
            back.imbalance.segment_outliers.len(),
            a.imbalance.segment_outliers.len()
        );
    }

    #[test]
    fn counters_skipped_when_disabled() {
        let trace = pipeline_trace();
        let cfg = AnalysisConfig {
            analyze_counters: false,
            ..AnalysisConfig::default()
        };
        let a = analyze(&trace, &cfg).unwrap();
        assert!(a.counters.is_empty());
    }

    #[test]
    fn fused_equals_reference_pipeline() {
        let trace = pipeline_trace();
        for analyze_counters in [true, false] {
            let cfg = AnalysisConfig {
                analyze_counters,
                ..AnalysisConfig::default()
            };
            assert_eq!(
                analyze(&trace, &cfg).unwrap(),
                analyze_reference(&trace, &cfg).unwrap()
            );
        }
    }

    #[test]
    fn thread_count_does_not_change_analysis() {
        let trace = pipeline_trace();
        let at = |threads| {
            let cfg = AnalysisConfig {
                threads,
                ..AnalysisConfig::default()
            };
            analyze(&trace, &cfg).unwrap()
        };
        let single = at(1);
        assert_eq!(single, at(8));
        assert_eq!(single, at(0));
        let reference = |threads| {
            let cfg = AnalysisConfig {
                threads,
                ..AnalysisConfig::default()
            };
            analyze_reference(&trace, &cfg).unwrap()
        };
        assert_eq!(reference(1), reference(8));
        assert_eq!(single, reference(8));
    }

    #[test]
    fn result_key_tracks_result_affecting_fields_only() {
        let base = AnalysisConfig::default();
        // Thread count is result-irrelevant (asserted above) → same key.
        let threaded = AnalysisConfig {
            threads: 8,
            ..base.clone()
        };
        assert_eq!(base.result_key(), threaded.result_key());
        // Every result-affecting field changes the key.
        let variants = [
            AnalysisConfig {
                dominant_multiplier: 3,
                ..base.clone()
            },
            AnalysisConfig {
                segment_function: Some("inner".to_string()),
                ..base.clone()
            },
            AnalysisConfig {
                imbalance: crate::imbalance::ImbalanceConfig {
                    z_threshold: 2.0,
                    ..base.imbalance
                },
                ..base.clone()
            },
            AnalysisConfig {
                imbalance: crate::imbalance::ImbalanceConfig {
                    min_relative_excess: 0.25,
                    ..base.imbalance
                },
                ..base.clone()
            },
            AnalysisConfig {
                analyze_counters: false,
                ..base.clone()
            },
        ];
        let mut keys: Vec<String> = variants.iter().map(|c| c.result_key()).collect();
        keys.push(base.result_key());
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
