//! Pipeline self-observability: per-stage spans, throughput counters and
//! peak-state gauges.
//!
//! The fused pipeline is fast precisely because it never materialises
//! intermediate state — which also makes it a black box on a large run:
//! nothing says which stage consumes the wall time, how many events/s a
//! worker sustains, or how far along a long out-of-core analysis is.
//! This module instruments the pipeline the same way the pipeline
//! instruments the target application:
//!
//! * **Spans** ([`Telemetry::span`]) measure per-[`Stage`] wall time on
//!   the monotonic clock ([`std::time::Instant`]). Spans are RAII guards;
//!   overlapping spans of the same stage (e.g. from concurrent phases)
//!   simply accumulate.
//! * **Worker buffers** ([`Telemetry::worker`]) collect event/byte/
//!   segment counters and peak-state gauges. Each buffer is owned by one
//!   worker task — increments are plain (unshared, lock-free) integer
//!   adds on the hot path — and merges into the shared aggregate exactly
//!   once, when dropped at task exit.
//! * **Progress** ([`Telemetry::rank_done`]) drives an optional callback
//!   (`N/M ranks, X events/s`) the CLI renders as a live progress line
//!   for out-of-core runs.
//!
//! The whole layer is zero-cost when disabled: [`Telemetry::noop`]
//! allocates nothing, and every recording call reduces to one branch on
//! an `Option` that is always `None`.
//!
//! [`Telemetry::snapshot`] folds everything into a serialisable
//! [`PipelineStats`] — the value behind the CLI's `--stats` table and
//! `--stats-json` machine output. The experiments harness bounds the
//! instrumentation overhead (<5% target) in `BENCH_pipeline.json`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// A stage of the analysis pipeline, for span and counter attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Loading/decoding the input into memory (in-memory path only; the
    /// out-of-core passes decode inline and account bytes to themselves).
    Load,
    /// The profile pass: replay every rank into per-function aggregates
    /// for dominant-function selection.
    Profile,
    /// The fused pass: segments, SOS inputs and counter rows per rank.
    Fuse,
    /// Merging partials and deriving SOS/imbalance/waste/correlations.
    Assemble,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Load, Stage::Profile, Stage::Fuse, Stage::Assemble];

    /// Stable lower-case name (used in `--stats` output and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Load => "load",
            Stage::Profile => "profile",
            Stage::Fuse => "fuse",
            Stage::Assemble => "assemble",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Totals of the pipeline-wide throughput counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Event records replayed through the stack machine (all passes).
    pub events_replayed: u64,
    /// Bytes decoded from disk (out-of-core cursors, input loading).
    pub bytes_decoded: u64,
    /// Segments emitted by the fused pass.
    pub segments_emitted: u64,
    /// Segments whose contained synchronization time exceeded their
    /// inclusive time and was clamped in the SOS computation (possible
    /// after timestamp repair on malformed streams; see `Segment::sos`).
    pub sos_clamped: u64,
    /// Per-rank stream failures recovered in partial mode.
    pub recovery_events: u64,
}

impl Counters {
    /// Adds `other`'s totals into `self`. Counter totals form a
    /// commutative monoid under this sum (identity:
    /// [`Counters::default`]), which is what lets per-shard pipeline
    /// counters — e.g. those carried by
    /// [`AnalysisPart`](crate::part::AnalysisPart) — be combined in any
    /// order at a coordinator.
    pub fn merge(&mut self, other: &Counters) {
        self.events_replayed += other.events_replayed;
        self.bytes_decoded += other.bytes_decoded;
        self.segments_emitted += other.segments_emitted;
        self.sos_clamped += other.sos_clamped;
        self.recovery_events += other.recovery_events;
    }
}

/// Peak-state gauges: the high-water marks of per-worker live state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Peaks {
    /// Deepest call stack any worker replayed.
    pub max_stack_depth: u64,
    /// Most simultaneously open segments in any fused sink.
    pub max_live_segments: u64,
    /// Worker buffers merged over the run (one per rank per pass).
    pub worker_buffers: u64,
    /// Effective read-buffer size of the out-of-core buffered path, in
    /// bytes (`0` until an out-of-core pass records it). Memory-mapped
    /// streams bypass the buffer; the gauge still reports what the
    /// buffered fallback would use.
    #[serde(default)]
    pub read_buffer_bytes: u64,
}

/// Wall time and throughput of one pipeline stage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StageStats {
    /// Stage name (see [`Stage::name`]).
    pub stage: String,
    /// Accumulated wall time of the stage's spans, in seconds.
    pub wall_s: f64,
    /// Events replayed within the stage.
    pub events: u64,
    /// Bytes decoded within the stage.
    pub bytes: u64,
}

impl StageStats {
    /// Events per second sustained by the stage (0 for an empty stage).
    pub fn events_per_sec(&self) -> f64 {
        rate(self.events, self.wall_s)
    }

    /// Bytes per second sustained by the stage (0 for an empty stage).
    pub fn bytes_per_sec(&self) -> f64 {
        rate(self.bytes, self.wall_s)
    }
}

fn rate(count: u64, wall_s: f64) -> f64 {
    if wall_s > 0.0 {
        count as f64 / wall_s
    } else {
        0.0
    }
}

/// The aggregated result of one instrumented pipeline run.
///
/// Serialises to the `--stats-json` machine output; the shape round-trips
/// through `serde_json` (tested).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Wall time from [`Telemetry`] construction to the snapshot.
    pub wall_s: f64,
    /// Per-stage wall time and throughput, in pipeline order. Stages
    /// that never ran (no span, no counters) are omitted.
    pub stages: Vec<StageStats>,
    /// Pipeline-wide counter totals.
    pub totals: Counters,
    /// Peak-state gauges.
    pub peaks: Peaks,
    /// Ranks in the largest fan-out pass.
    pub ranks: u64,
}

impl PipelineStats {
    /// Overall events per second (all passes over total wall time).
    pub fn events_per_sec(&self) -> f64 {
        rate(self.totals.events_replayed, self.wall_s)
    }

    /// Overall bytes per second (all passes over total wall time).
    pub fn bytes_per_sec(&self) -> f64 {
        rate(self.totals.bytes_decoded, self.wall_s)
    }

    /// The stats of one stage, by [`Stage::name`].
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Renders the human-readable `--stats` table.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "pipeline stats: {:.3} s wall, {} ranks, {:.2} Mevents/s, {:.1} MiB/s",
            self.wall_s,
            self.ranks,
            self.events_per_sec() / 1e6,
            self.bytes_per_sec() / (1024.0 * 1024.0),
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>9} {:>12} {:>10} {:>12} {:>10}",
            "stage", "wall s", "events", "Mev/s", "bytes", "MiB/s"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  {:<10} {:>9.3} {:>12} {:>10.2} {:>12} {:>10.1}",
                s.stage,
                s.wall_s,
                s.events,
                s.events_per_sec() / 1e6,
                s.bytes,
                s.bytes_per_sec() / (1024.0 * 1024.0),
            );
        }
        let _ = writeln!(
            out,
            "  totals: {} events, {} bytes, {} segments",
            self.totals.events_replayed, self.totals.bytes_decoded, self.totals.segments_emitted,
        );
        let _ = writeln!(
            out,
            "  peaks: stack depth {}, live segments {}, worker buffers {}",
            self.peaks.max_stack_depth, self.peaks.max_live_segments, self.peaks.worker_buffers,
        );
        if self.peaks.read_buffer_bytes > 0 {
            let _ = writeln!(
                out,
                "  read buffer: {} bytes (buffered out-of-core path)",
                self.peaks.read_buffer_bytes
            );
        }
        if self.totals.sos_clamped > 0 {
            let _ = writeln!(
                out,
                "  warning: {} segment(s) had sync time exceeding inclusive time (SOS clamped to 0)",
                self.totals.sos_clamped
            );
        }
        if self.totals.recovery_events > 0 {
            let _ = writeln!(
                out,
                "  warning: {} rank stream(s) failed and were recovered as empty",
                self.totals.recovery_events
            );
        }
        out
    }
}

/// A progress update, fired once per completed rank.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Name of the stage the rank completed in.
    pub stage: &'static str,
    /// Ranks completed in the current fan-out pass.
    pub ranks_done: u64,
    /// Ranks the current pass fans out over.
    pub ranks_total: u64,
    /// Events replayed so far, across all passes.
    pub events_replayed: u64,
    /// Seconds since the telemetry was created.
    pub elapsed_s: f64,
}

impl Progress {
    /// Overall events per second so far.
    pub fn events_per_sec(&self) -> f64 {
        rate(self.events_replayed, self.elapsed_s)
    }
}

type ProgressFn = Box<dyn Fn(Progress) + Send + Sync>;

/// The shared aggregate every worker buffer and span merges into. Only
/// touched at span end and worker-buffer drop — never on the hot path.
#[derive(Default)]
struct Agg {
    stage_wall: [f64; Stage::ALL.len()],
    stage_events: [u64; Stage::ALL.len()],
    stage_bytes: [u64; Stage::ALL.len()],
    totals: Counters,
    peaks: Peaks,
}

struct Inner {
    start: Instant,
    agg: Mutex<Agg>,
    /// Progress state (atomics: updated by workers without the lock).
    stage: AtomicUsize,
    ranks_done: AtomicU64,
    ranks_total: AtomicU64,
    ranks_max: AtomicU64,
    events_done: AtomicU64,
    progress: Option<ProgressFn>,
}

/// Handle to one pipeline run's telemetry. Shared by reference across
/// the worker threads of the run (the type is `Sync`).
pub struct Telemetry {
    inner: Option<Inner>,
}

impl Telemetry {
    /// An enabled recorder.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Inner {
                start: Instant::now(),
                agg: Mutex::new(Agg::default()),
                stage: AtomicUsize::new(Stage::Load.index()),
                ranks_done: AtomicU64::new(0),
                ranks_total: AtomicU64::new(0),
                ranks_max: AtomicU64::new(0),
                events_done: AtomicU64::new(0),
                progress: None,
            }),
        }
    }

    /// The disabled recorder: allocates nothing, records nothing; every
    /// call on it is one always-false branch.
    pub fn noop() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Whether this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Installs a progress callback, fired once per completed rank (from
    /// worker threads). No-op on a disabled recorder.
    pub fn with_progress(mut self, f: impl Fn(Progress) + Send + Sync + 'static) -> Telemetry {
        if let Some(inner) = &mut self.inner {
            inner.progress = Some(Box::new(f));
        }
        self
    }

    /// Opens a wall-time span for `stage`; the guard records on drop.
    pub fn span(&self, stage: Stage) -> Span<'_> {
        Span {
            active: self.inner.as_ref().map(|i| (i, stage, Instant::now())),
        }
    }

    /// Opens a worker buffer attributed to `stage`. The buffer is owned
    /// by the calling worker — recording into it is lock-free — and
    /// merges into the shared aggregate when dropped.
    pub fn worker(&self, stage: Stage) -> Worker<'_> {
        Worker {
            parent: self.inner.as_ref().map(|i| (i, stage)),
            counters: Counters::default(),
            max_stack_depth: 0,
            max_live_segments: 0,
        }
    }

    /// Starts a fan-out pass over `total` ranks: progress resets to
    /// `0/total` and subsequent [`rank_done`](Telemetry::rank_done) calls
    /// report against `stage`.
    pub fn begin_ranks(&self, stage: Stage, total: usize) {
        if let Some(inner) = &self.inner {
            inner.stage.store(stage.index(), Ordering::Relaxed);
            inner.ranks_done.store(0, Ordering::Relaxed);
            inner.ranks_total.store(total as u64, Ordering::Relaxed);
            inner.ranks_max.fetch_max(total as u64, Ordering::Relaxed);
        }
    }

    /// Marks one rank of the current pass complete, firing the progress
    /// callback (if any). Called from worker threads.
    pub fn rank_done(&self) {
        if let Some(inner) = &self.inner {
            let done = inner.ranks_done.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(progress) = &inner.progress {
                progress(Progress {
                    stage: Stage::ALL[inner.stage.load(Ordering::Relaxed).min(3)].name(),
                    ranks_done: done,
                    ranks_total: inner.ranks_total.load(Ordering::Relaxed),
                    events_replayed: inner.events_done.load(Ordering::Relaxed),
                    elapsed_s: inner.start.elapsed().as_secs_f64(),
                });
            }
        }
    }

    /// Counts `n` rank streams recovered (skipped) in partial mode.
    pub fn count_recovery(&self, n: u64) {
        if let Some(inner) = &self.inner {
            inner.agg.lock().unwrap().totals.recovery_events += n;
        }
    }

    /// Records the effective buffered read-buffer size of an out-of-core
    /// pass (see [`Peaks::read_buffer_bytes`]).
    pub fn set_read_buffer(&self, bytes: u64) {
        if let Some(inner) = &self.inner {
            let mut agg = inner.agg.lock().unwrap();
            agg.peaks.read_buffer_bytes = agg.peaks.read_buffer_bytes.max(bytes);
        }
    }

    /// Folds everything recorded so far into a [`PipelineStats`].
    /// Returns `None` on a disabled recorder.
    pub fn snapshot(&self) -> Option<PipelineStats> {
        let inner = self.inner.as_ref()?;
        let agg = inner.agg.lock().unwrap();
        let stages = Stage::ALL
            .iter()
            .filter(|s| {
                agg.stage_wall[s.index()] > 0.0
                    || agg.stage_events[s.index()] > 0
                    || agg.stage_bytes[s.index()] > 0
            })
            .map(|s| StageStats {
                stage: s.name().to_string(),
                wall_s: agg.stage_wall[s.index()],
                events: agg.stage_events[s.index()],
                bytes: agg.stage_bytes[s.index()],
            })
            .collect();
        Some(PipelineStats {
            wall_s: inner.start.elapsed().as_secs_f64(),
            stages,
            totals: agg.totals,
            peaks: agg.peaks,
            ranks: inner.ranks_max.load(Ordering::Relaxed),
        })
    }
}

/// RAII wall-time span for one [`Stage`] (see [`Telemetry::span`]).
pub struct Span<'t> {
    active: Option<(&'t Inner, Stage, Instant)>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((inner, stage, started)) = self.active.take() {
            let elapsed = started.elapsed().as_secs_f64();
            inner.agg.lock().unwrap().stage_wall[stage.index()] += elapsed;
        }
    }
}

/// A per-worker counter buffer (see [`Telemetry::worker`]).
///
/// Owned by one worker task: every recording method is a plain integer
/// operation on unshared state. The buffer merges into the pipeline
/// aggregate (one mutex acquisition) when dropped.
pub struct Worker<'t> {
    parent: Option<(&'t Inner, Stage)>,
    counters: Counters,
    max_stack_depth: u64,
    max_live_segments: u64,
}

impl Worker<'_> {
    /// Counts `n` events replayed.
    #[inline]
    pub fn events(&mut self, n: u64) {
        if self.parent.is_some() {
            self.counters.events_replayed += n;
        }
    }

    /// Counts `n` bytes decoded from disk.
    #[inline]
    pub fn bytes(&mut self, n: u64) {
        if self.parent.is_some() {
            self.counters.bytes_decoded += n;
        }
    }

    /// Counts `n` segments emitted.
    #[inline]
    pub fn segments(&mut self, n: u64) {
        if self.parent.is_some() {
            self.counters.segments_emitted += n;
        }
    }

    /// Counts `n` SOS underflow clamps (sync time > inclusive time).
    #[inline]
    pub fn sos_clamped(&mut self, n: u64) {
        if self.parent.is_some() {
            self.counters.sos_clamped += n;
        }
    }

    /// Raises the peak stack-depth gauge to at least `depth`.
    #[inline]
    pub fn stack_depth(&mut self, depth: usize) {
        if self.parent.is_some() {
            self.max_stack_depth = self.max_stack_depth.max(depth as u64);
        }
    }

    /// Raises the peak live-segments gauge to at least `n`.
    #[inline]
    pub fn live_segments(&mut self, n: usize) {
        if self.parent.is_some() {
            self.max_live_segments = self.max_live_segments.max(n as u64);
        }
    }
}

impl Drop for Worker<'_> {
    fn drop(&mut self) {
        if let Some((inner, stage)) = self.parent {
            inner
                .events_done
                .fetch_add(self.counters.events_replayed, Ordering::Relaxed);
            let mut agg = inner.agg.lock().unwrap();
            agg.stage_events[stage.index()] += self.counters.events_replayed;
            agg.stage_bytes[stage.index()] += self.counters.bytes_decoded;
            agg.totals.merge(&self.counters);
            agg.peaks.max_stack_depth = agg.peaks.max_stack_depth.max(self.max_stack_depth);
            agg.peaks.max_live_segments = agg.peaks.max_live_segments.max(self.max_live_segments);
            agg.peaks.worker_buffers += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_records_nothing() {
        let t = Telemetry::noop();
        assert!(!t.is_enabled());
        {
            let _span = t.span(Stage::Profile);
            let mut w = t.worker(Stage::Profile);
            w.events(100);
            w.bytes(100);
            w.stack_depth(9);
        }
        t.rank_done();
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn worker_buffers_merge_across_threads() {
        // Counters recorded from concurrent worker threads (with nested
        // spans per worker) sum exactly; gauges take the maximum.
        let t = Telemetry::enabled();
        t.begin_ranks(Stage::Profile, 8);
        std::thread::scope(|scope| {
            for k in 0..8u64 {
                let t = &t;
                scope.spawn(move || {
                    let _span = t.span(Stage::Profile);
                    let mut w = t.worker(Stage::Profile);
                    w.events(1000 + k);
                    w.bytes(10 * (k + 1));
                    w.segments(k);
                    w.stack_depth(k as usize);
                    drop(w);
                    t.rank_done();
                });
            }
        });
        let stats = t.snapshot().unwrap();
        assert_eq!(stats.totals.events_replayed, 8 * 1000 + 28);
        assert_eq!(stats.totals.bytes_decoded, 10 * 36);
        assert_eq!(stats.totals.segments_emitted, 28);
        assert_eq!(stats.peaks.max_stack_depth, 7);
        assert_eq!(stats.peaks.worker_buffers, 8);
        assert_eq!(stats.ranks, 8);
        let profile = stats.stage("profile").expect("profile stage present");
        assert_eq!(profile.events, 8 * 1000 + 28);
        // Eight overlapping spans accumulated — wall time is positive.
        assert!(profile.wall_s >= 0.0);
        assert!(stats.stage("fuse").is_none(), "fuse never ran");
    }

    #[test]
    fn spans_nest_and_accumulate() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span(Stage::Load);
            let _inner = t.span(Stage::Load); // nested span, same stage
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let stats = t.snapshot().unwrap();
        let load = stats.stage("load").unwrap();
        // Both guards recorded: accumulated wall ≥ 2 × 2 ms.
        assert!(load.wall_s >= 0.004, "wall_s = {}", load.wall_s);
        assert!(stats.wall_s >= load.wall_s / 2.0);
    }

    #[test]
    fn progress_fires_per_rank() {
        let seen = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let t = Telemetry::enabled().with_progress(move |p| {
            sink.lock()
                .unwrap()
                .push((p.stage, p.ranks_done, p.ranks_total));
        });
        t.begin_ranks(Stage::Fuse, 3);
        for _ in 0..3 {
            let mut w = t.worker(Stage::Fuse);
            w.events(5);
            drop(w);
            t.rank_done();
        }
        let seen = seen.lock().unwrap();
        assert_eq!(*seen, vec![("fuse", 1, 3), ("fuse", 2, 3), ("fuse", 3, 3)]);
    }

    #[test]
    fn recovery_and_clamp_counters_surface_in_the_table() {
        let t = Telemetry::enabled();
        t.count_recovery(2);
        {
            let mut w = t.worker(Stage::Fuse);
            w.sos_clamped(1);
        }
        let stats = t.snapshot().unwrap();
        assert_eq!(stats.totals.recovery_events, 2);
        assert_eq!(stats.totals.sos_clamped, 1);
        let table = stats.render_table();
        assert!(table.contains("SOS clamped"), "{table}");
        assert!(table.contains("recovered as empty"), "{table}");
    }

    #[test]
    fn stats_round_trip_through_serde_json() {
        let t = Telemetry::enabled();
        {
            let _span = t.span(Stage::Profile);
            let mut w = t.worker(Stage::Profile);
            w.events(123);
            w.bytes(456);
            w.stack_depth(3);
        }
        let stats = t.snapshot().unwrap();
        let json = serde_json::to_string(&stats).unwrap();
        let back: PipelineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert!(json.contains("events_replayed"));
    }
}
