//! Hardware-counter attribution to segments, and counter–SOS correlation.
//!
//! The paper's case studies use PAPI-style counters twice:
//!
//! * **COSMO-SPECS+FD4** (§VII-B): the interrupted invocation shows a low
//!   `PAPI_TOT_CYC` reading — wall time passed but few cycles were
//!   assigned. Attributing the *accumulating* counter to segments means
//!   differencing the readings at the segment boundaries.
//! * **WRF** (§VII-C): the `FR_FPU_EXCEPTIONS_SSE_MICROTRAPS` counter,
//!   color-coded per segment, "perfectly match\[es\] our runtime variation
//!   analysis". Attributing a *delta* counter means summing the samples
//!   that fall inside each segment; the match is quantified here as a
//!   Pearson correlation between counter values and SOS-times.

use crate::segment::Segmentation;
use crate::sos::SosMatrix;
use perfvar_trace::{Event, MetricId, MetricMode, ProcessId, Timestamp, Trace};
use serde::{Deserialize, Serialize};

/// Per-process, per-segment values of one metric channel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterMatrix {
    /// The attributed metric.
    pub metric: MetricId,
    /// How samples were interpreted.
    pub mode: MetricMode,
    values: Vec<Vec<u64>>,
}

impl CounterMatrix {
    /// Attributes `metric` to the segments of `seg`.
    ///
    /// * [`MetricMode::Accumulating`]: value = reading at segment end −
    ///   reading at segment start, where "reading at `t`" is the latest
    ///   sample with timestamp ≤ `t` (0 before the first sample).
    /// * [`MetricMode::Delta`] / [`MetricMode::Gauge`]: sum of the samples
    ///   with `enter ≤ t < leave` (gauges are summed too, which matches
    ///   one-sample-per-segment usage; multi-sample gauges need custom
    ///   handling).
    pub fn for_segments(trace: &Trace, seg: &Segmentation, metric: MetricId) -> CounterMatrix {
        let mode = trace.registry().metric(metric).mode;
        let mut values = Vec::with_capacity(seg.num_processes());
        for p in 0..seg.num_processes() {
            let pid = ProcessId::from_index(p);
            // Collect this process's samples of the channel, time-sorted
            // (streams are time-sorted already).
            let samples: Vec<(Timestamp, u64)> = trace
                .stream(pid)
                .records()
                .iter()
                .filter_map(|r| match r.event {
                    Event::Metric { metric: m, value } if m == metric => Some((r.time, value)),
                    _ => None,
                })
                .collect();
            let row = seg
                .process(pid)
                .iter()
                .map(|s| match mode {
                    MetricMode::Accumulating => {
                        let start = reading_at(&samples, s.enter);
                        let end = reading_at(&samples, s.leave);
                        end.saturating_sub(start)
                    }
                    MetricMode::Delta | MetricMode::Gauge => samples
                        .iter()
                        .filter(|(t, _)| s.enter <= *t && *t < s.leave)
                        .map(|(_, v)| *v)
                        .sum(),
                })
                .collect();
            values.push(row);
        }
        CounterMatrix {
            metric,
            mode,
            values,
        }
    }

    /// Assembles a matrix from per-process rows built elsewhere (the
    /// fused streaming pass in [`crate::fused`]).
    pub(crate) fn from_parts(
        metric: MetricId,
        mode: MetricMode,
        values: Vec<Vec<u64>>,
    ) -> CounterMatrix {
        CounterMatrix {
            metric,
            mode,
            values,
        }
    }

    /// Number of processes (rows).
    pub fn num_processes(&self) -> usize {
        self.values.len()
    }

    /// The per-segment values of one process.
    pub fn process_values(&self, p: ProcessId) -> &[u64] {
        &self.values[p.index()]
    }

    /// The value of segment `ordinal` on `p`, if present.
    pub fn value(&self, p: ProcessId, ordinal: usize) -> Option<u64> {
        self.values[p.index()].get(ordinal).copied()
    }

    /// Iterates `(process, ordinal, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, usize, u64)> + '_ {
        self.values.iter().enumerate().flat_map(|(p, row)| {
            row.iter()
                .enumerate()
                .map(move |(i, &v)| (ProcessId::from_index(p), i, v))
        })
    }

    /// Total per process.
    pub fn process_totals(&self) -> Vec<u64> {
        self.values.iter().map(|row| row.iter().sum()).collect()
    }

    /// The process with the highest total (Fig. 6(c): the counter heatmap
    /// singles out Process 39).
    pub fn hottest_process(&self) -> Option<ProcessId> {
        self.process_totals()
            .iter()
            .enumerate()
            .max_by_key(|(p, &v)| (v, std::cmp::Reverse(*p)))
            .map(|(p, _)| ProcessId::from_index(p))
    }

    /// The globally largest value and its location.
    pub fn argmax(&self) -> Option<(ProcessId, usize, u64)> {
        self.iter()
            .max_by_key(|(p, i, v)| (*v, std::cmp::Reverse(p.0), std::cmp::Reverse(*i)))
    }

    /// The globally smallest value and its location.
    pub fn argmin(&self) -> Option<(ProcessId, usize, u64)> {
        self.iter().min_by_key(|(_, _, v)| *v)
    }
}

/// Latest sample value at or before `t` (0 before the first sample).
fn reading_at(samples: &[(Timestamp, u64)], t: Timestamp) -> u64 {
    match samples.binary_search_by(|(st, _)| st.cmp(&t)) {
        Ok(mut i) => {
            // Several samples may share the timestamp; take the last.
            while i + 1 < samples.len() && samples[i + 1].0 == t {
                i += 1;
            }
            samples[i].1
        }
        Err(0) => 0,
        Err(i) => samples[i - 1].1,
    }
}

/// Pearson correlation coefficient of two equal-length series.
/// `None` if fewer than two points or either series has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Correlates a counter matrix with an SOS matrix over all segments both
/// cover (paired by process and ordinal).
pub fn correlate_with_sos(counters: &CounterMatrix, sos: &SosMatrix) -> Option<f64> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (p, i, v) in counters.iter() {
        if let Some(s) = sos.sos(p, i) {
            xs.push(v as f64);
            ys.push(s.0 as f64);
        }
    }
    pearson(&xs, &ys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use perfvar_trace::{Clock, FunctionRole, Trace, TraceBuilder};

    /// One process, two segments [0,10) and [10,20); an accumulating
    /// counter sampled at 0, 10, 20 with values 0, 100, 250; a delta
    /// counter emitted at 5 (=7) and 15 (=9).
    fn counter_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        let acc = b.define_metric("CYC", MetricMode::Accumulating, "cycles");
        let del = b.define_metric("EXC", MetricMode::Delta, "#");
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        w.metric(Timestamp(0), acc, 0).unwrap();
        w.enter(Timestamp(0), f).unwrap();
        w.metric(Timestamp(5), del, 7).unwrap();
        w.leave(Timestamp(10), f).unwrap();
        w.metric(Timestamp(10), acc, 100).unwrap();
        w.enter(Timestamp(10), f).unwrap();
        w.metric(Timestamp(15), del, 9).unwrap();
        w.leave(Timestamp(20), f).unwrap();
        w.metric(Timestamp(20), acc, 250).unwrap();
        b.finish().unwrap()
    }

    fn seg_of(trace: &Trace) -> Segmentation {
        let f = trace.registry().function_by_name("iter").unwrap();
        Segmentation::new(trace, &replay_all(trace), f)
    }

    #[test]
    fn accumulating_counter_differenced_at_boundaries() {
        let trace = counter_trace();
        let seg = seg_of(&trace);
        let acc = trace.registry().metric_by_name("CYC").unwrap();
        let m = CounterMatrix::for_segments(&trace, &seg, acc);
        assert_eq!(m.process_values(ProcessId(0)), &[100, 150]);
        assert_eq!(m.process_totals(), vec![250]);
    }

    #[test]
    fn delta_counter_summed_within_segments() {
        let trace = counter_trace();
        let seg = seg_of(&trace);
        let del = trace.registry().metric_by_name("EXC").unwrap();
        let m = CounterMatrix::for_segments(&trace, &seg, del);
        assert_eq!(m.process_values(ProcessId(0)), &[7, 9]);
        assert_eq!(m.argmax(), Some((ProcessId(0), 1, 9)));
        assert_eq!(m.argmin(), Some((ProcessId(0), 0, 7)));
        assert_eq!(m.hottest_process(), Some(ProcessId(0)));
    }

    #[test]
    fn reading_at_boundaries() {
        let samples = vec![
            (Timestamp(10), 1u64),
            (Timestamp(20), 2),
            (Timestamp(20), 3),
            (Timestamp(30), 4),
        ];
        assert_eq!(reading_at(&samples, Timestamp(5)), 0);
        assert_eq!(reading_at(&samples, Timestamp(10)), 1);
        assert_eq!(reading_at(&samples, Timestamp(15)), 1);
        assert_eq!(reading_at(&samples, Timestamp(20)), 3);
        assert_eq!(reading_at(&samples, Timestamp(99)), 4);
    }

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), None); // zero variance
        assert_eq!(pearson(&[1.0], &[2.0]), None); // too few
        assert_eq!(pearson(&xs, &ys[..2]), None); // length mismatch
    }

    #[test]
    fn counter_sos_correlation() {
        // Build two processes whose per-segment compute time is exactly
        // proportional to a delta counter → correlation 1.
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        let del = b.define_metric("EXC", MetricMode::Delta, "#");
        for loads in [[10u64, 30, 20], [40, 10, 50]] {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for load in loads {
                w.enter(Timestamp(t), f).unwrap();
                w.metric(Timestamp(t), del, load * 3).unwrap();
                t += load;
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        let trace = b.finish().unwrap();
        let seg = seg_of(&trace);
        let sos = SosMatrix::from_segmentation(&seg);
        let del = trace.registry().metric_by_name("EXC").unwrap();
        let cm = CounterMatrix::for_segments(&trace, &seg, del);
        let r = correlate_with_sos(&cm, &sos).unwrap();
        assert!((r - 1.0).abs() < 1e-12, "r = {r}");
    }

    #[test]
    fn missing_samples_mean_zero() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("iter", FunctionRole::Compute);
        let acc = b.define_metric("CYC", MetricMode::Accumulating, "cycles");
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        w.enter(Timestamp(0), f).unwrap();
        w.leave(Timestamp(10), f).unwrap();
        let trace = b.finish().unwrap();
        let seg = seg_of(&trace);
        let m = CounterMatrix::for_segments(&trace, &seg, acc);
        assert_eq!(m.process_values(ProcessId(0)), &[0]);
    }
}
