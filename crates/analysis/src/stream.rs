//! Streaming call-stack replay: the single-pass visitor engine.
//!
//! [`replay_visit`] drives the same Fig. 1 stack machine as
//! [`replay_process`](crate::invocation::replay_process) but never
//! materialises invocations: instead it pushes each completed frame (and
//! every metric sample and timestamp-group boundary) into a
//! [`ReplayVisitor`] sink. Memory stays `O(stack depth)` regardless of
//! trace length, which is what lets the fused pipeline
//! ([`crate::fused`]) analyse a process's stream in one pass.
//!
//! The visitor contract mirrors the event stream:
//!
//! * [`on_enter`](ReplayVisitor::on_enter) fires for every `Enter`
//!   record, *before* the frame is pushed (so sinks observe enter order —
//!   depth-first pre-order of the call tree).
//! * [`on_frame`](ReplayVisitor::on_frame) fires for every `Leave`
//!   record with the completed frame's full timing split (inclusive,
//!   children-inclusive, contained synchronization) — exactly the fields
//!   an [`Invocation`](crate::invocation::Invocation) would carry.
//! * [`on_metric`](ReplayVisitor::on_metric) fires for every counter
//!   sample in stream order.
//! * [`on_tick`](ReplayVisitor::on_tick) fires once per *timestamp
//!   group*: after the last record carrying a given timestamp and before
//!   the first record of a later one (and once more at end of stream).
//!   Counter attribution is defined over timestamps, not record order,
//!   so sinks that must match the batch semantics bit-for-bit resolve
//!   boundary readings here.
//! * [`on_finish`](ReplayVisitor::on_finish) fires after the last tick.
//!
//! The stack machine itself is exposed as [`ReplayMachine`] so callers
//! that do not hold a `Trace` — the out-of-core path in
//! [`crate::outofcore`], which reads records straight off a disk cursor
//! — can drive the identical semantics one record at a time.

use perfvar_trace::{
    DurationTicks, Event, EventRecord, FunctionId, MetricId, ProcessId, Registry, Timestamp, Trace,
};

/// A completed stack frame, reported by [`replay_visit`] on `Leave`.
///
/// Carries the same timing split as a materialised
/// [`Invocation`](crate::invocation::Invocation) minus the parent index
/// (sinks that need parent links can maintain their own index stack from
/// `on_enter`/`on_frame` pairing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClosedFrame {
    /// The function the frame executed.
    pub function: FunctionId,
    /// Call-stack depth (0 = top level).
    pub depth: u32,
    /// Enter timestamp.
    pub enter: Timestamp,
    /// Leave timestamp.
    pub leave: Timestamp,
    /// Total inclusive time of direct children.
    pub children_inclusive: DurationTicks,
    /// Synchronization/communication time contained in the frame (its
    /// own inclusive time if its role is synchronizing).
    pub sync_within: DurationTicks,
}

impl ClosedFrame {
    /// Inclusive time: full duration from enter to leave.
    #[inline]
    pub fn inclusive(&self) -> DurationTicks {
        self.leave.since(self.enter)
    }

    /// Exclusive time: inclusive minus direct children.
    #[inline]
    pub fn exclusive(&self) -> DurationTicks {
        self.inclusive().saturating_sub(self.children_inclusive)
    }
}

/// Sink for one streaming pass over a process's event stream.
///
/// All methods default to no-ops so sinks implement only what they fold.
pub trait ReplayVisitor {
    /// A frame is about to be pushed (an `Enter` record).
    fn on_enter(&mut self, function: FunctionId, depth: u32, time: Timestamp) {
        let _ = (function, depth, time);
    }

    /// A frame completed (a `Leave` record), with its full timing split.
    fn on_frame(&mut self, frame: &ClosedFrame) {
        let _ = frame;
    }

    /// A metric channel sample.
    fn on_metric(&mut self, metric: MetricId, time: Timestamp, value: u64) {
        let _ = (metric, time, value);
    }

    /// All records carrying timestamp `time` have been delivered.
    fn on_tick(&mut self, time: Timestamp) {
        let _ = time;
    }

    /// End of stream.
    fn on_finish(&mut self) {}
}

struct Frame {
    function: FunctionId,
    enter: Timestamp,
    children_inclusive: u64,
    sync_within: u64,
}

/// The incremental Fig. 1 stack machine behind [`replay_visit`].
///
/// [`replay_visit`] drives it from an in-memory
/// [`EventStream`](perfvar_trace::EventStream); the out-of-core path
/// ([`crate::outofcore`]) drives it record by record from a disk cursor.
/// Both produce identical visitor callback sequences: feed every record
/// of one process's stream (already validated — balanced and
/// time-ordered, which both the trace builder and the format cursors
/// guarantee) to [`step`](ReplayMachine::step), then call
/// [`finish`](ReplayMachine::finish) exactly once.
///
/// Live state is the open call stack plus one pending tick timestamp —
/// `O(stack depth)` regardless of stream length.
pub struct ReplayMachine {
    /// Per-function synchronization-role flags (resolved once so stepping
    /// never touches the registry).
    sync_role: Vec<bool>,
    stack: Vec<Frame>,
    tick: Option<Timestamp>,
    max_depth: usize,
    events: u64,
}

impl ReplayMachine {
    /// Creates a machine for streams described by `registry`.
    pub fn new(registry: &Registry) -> ReplayMachine {
        ReplayMachine {
            sync_role: registry
                .function_ids()
                .map(|f| registry.function_role(f).is_synchronization())
                .collect(),
            stack: Vec::new(),
            tick: None,
            max_depth: 0,
            events: 0,
        }
    }

    /// Feeds one record, firing the due visitor callbacks.
    pub fn step<V: ReplayVisitor>(&mut self, record: &EventRecord, visitor: &mut V) {
        self.events += 1;
        match self.tick {
            Some(t) if t != record.time => visitor.on_tick(t),
            _ => {}
        }
        self.tick = Some(record.time);
        match record.event {
            Event::Enter { function } => {
                visitor.on_enter(function, self.stack.len() as u32, record.time);
                self.stack.push(Frame {
                    function,
                    enter: record.time,
                    children_inclusive: 0,
                    sync_within: 0,
                });
                self.max_depth = self.max_depth.max(self.stack.len());
            }
            Event::Leave { function } => {
                let frame = self.stack.pop().expect("validated stream: balanced leave");
                debug_assert_eq!(frame.function, function, "validated stream: matching leave");
                let inclusive = record.time.since(frame.enter).0;
                let sync = if self.sync_role[function.index()] {
                    inclusive
                } else {
                    frame.sync_within
                };
                if let Some(parent) = self.stack.last_mut() {
                    parent.children_inclusive += inclusive;
                    parent.sync_within += sync;
                }
                visitor.on_frame(&ClosedFrame {
                    function,
                    depth: self.stack.len() as u32,
                    enter: frame.enter,
                    leave: record.time,
                    children_inclusive: DurationTicks(frame.children_inclusive),
                    sync_within: DurationTicks(sync),
                });
            }
            Event::Metric { metric, value } => visitor.on_metric(metric, record.time, value),
            _ => {}
        }
    }

    /// Ends the stream: fires the final tick (if any records were fed)
    /// and `on_finish`. The machine is reusable for another stream
    /// afterwards.
    pub fn finish<V: ReplayVisitor>(&mut self, visitor: &mut V) {
        debug_assert!(self.stack.is_empty(), "validated stream: balanced");
        if let Some(t) = self.tick.take() {
            visitor.on_tick(t);
        }
        visitor.on_finish();
    }

    /// Deepest call stack observed so far (across all streams fed since
    /// construction) — the out-of-core benchmarks account per-worker
    /// memory with it.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Records stepped so far (across all streams fed since
    /// construction) — the telemetry layer's events-replayed counter.
    pub fn events_stepped(&self) -> u64 {
        self.events
    }

    /// Snapshot of the machine's replay statistics.
    pub fn stats(&self) -> ReplayStats {
        ReplayStats {
            events: self.events,
            max_depth: self.max_depth,
        }
    }
}

/// Lightweight statistics of a replay pass: what the telemetry layer
/// (see [`crate::telemetry`]) records per worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records stepped through the machine.
    pub events: u64,
    /// Deepest call stack observed.
    pub max_depth: usize,
}

/// Replays one process's stream through `visitor` in a single pass.
///
/// Implements the same semantics as
/// [`replay_process`](crate::invocation::replay_process) (the
/// materialising reference): sync time is the frame's own inclusive time
/// for synchronization-role functions, else the sum contributed by its
/// descendants, counted once.
///
/// ```
/// use perfvar_analysis::stream::{replay_visit, ClosedFrame, ReplayVisitor};
/// use perfvar_trace::{Clock, FunctionRole, ProcessId, Timestamp, TraceBuilder};
///
/// /// Counts completed frames and sums their exclusive time.
/// #[derive(Default)]
/// struct ExclusiveSum {
///     frames: usize,
///     exclusive_ticks: u64,
/// }
///
/// impl ReplayVisitor for ExclusiveSum {
///     fn on_frame(&mut self, frame: &ClosedFrame) {
///         self.frames += 1;
///         self.exclusive_ticks += frame.exclusive().0;
///     }
/// }
///
/// let mut b = TraceBuilder::new(Clock::microseconds());
/// let outer = b.define_function("outer", FunctionRole::Compute);
/// let inner = b.define_function("inner", FunctionRole::Compute);
/// let p = b.define_process("rank 0");
/// let w = b.process_mut(p);
/// w.enter(Timestamp(0), outer).unwrap();
/// w.enter(Timestamp(3), inner).unwrap();
/// w.leave(Timestamp(7), inner).unwrap();
/// w.leave(Timestamp(10), outer).unwrap();
/// let trace = b.finish().unwrap();
///
/// let mut sink = ExclusiveSum::default();
/// replay_visit(&trace, ProcessId(0), &mut sink);
/// assert_eq!(sink.frames, 2);
/// // inner: 4 exclusive ticks; outer: 10 − 4 = 6.
/// assert_eq!(sink.exclusive_ticks, 10);
/// ```
///
/// Returns the pass's [`ReplayStats`] (event count, peak stack depth)
/// so instrumented callers can feed the telemetry layer; uninstrumented
/// callers simply ignore them.
pub fn replay_visit<V: ReplayVisitor>(
    trace: &Trace,
    process: ProcessId,
    visitor: &mut V,
) -> ReplayStats {
    let mut machine = ReplayMachine::new(trace.registry());
    for record in trace.stream(process).records() {
        machine.step(record, visitor);
    }
    machine.finish(visitor);
    machine.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_process;
    use perfvar_trace::{Clock, FunctionRole, MetricMode, TraceBuilder};

    /// Sink that records every callback, for driver-contract tests.
    #[derive(Default)]
    struct Recorder {
        enters: Vec<(FunctionId, u32, u64)>,
        frames: Vec<ClosedFrame>,
        metrics: Vec<(MetricId, u64, u64)>,
        ticks: Vec<u64>,
        finished: bool,
    }

    impl ReplayVisitor for Recorder {
        fn on_enter(&mut self, function: FunctionId, depth: u32, time: Timestamp) {
            self.enters.push((function, depth, time.0));
        }
        fn on_frame(&mut self, frame: &ClosedFrame) {
            self.frames.push(*frame);
        }
        fn on_metric(&mut self, metric: MetricId, time: Timestamp, value: u64) {
            self.metrics.push((metric, time.0, value));
        }
        fn on_tick(&mut self, time: Timestamp) {
            self.ticks.push(time.0);
        }
        fn on_finish(&mut self) {
            self.finished = true;
        }
    }

    fn nested_trace() -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let outer = b.define_function("outer", FunctionRole::Compute);
        let barrier = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        let m = b.define_metric("EXC", MetricMode::Delta, "#");
        let p = b.define_process("p0");
        let w = b.process_mut(p);
        w.enter(Timestamp(0), outer).unwrap();
        w.metric(Timestamp(0), m, 3).unwrap();
        w.enter(Timestamp(2), barrier).unwrap();
        w.leave(Timestamp(5), barrier).unwrap();
        w.metric(Timestamp(5), m, 4).unwrap();
        w.leave(Timestamp(9), outer).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn callbacks_follow_the_stream() {
        let trace = nested_trace();
        let mut r = Recorder::default();
        replay_visit(&trace, ProcessId(0), &mut r);
        assert_eq!(r.enters.len(), 2);
        assert_eq!(r.enters[0].1, 0); // outer at depth 0
        assert_eq!(r.enters[1].1, 1); // barrier at depth 1
        assert_eq!(r.metrics, vec![(MetricId(0), 0, 3), (MetricId(0), 5, 4)]);
        // Tick groups: 0, 2, 5, 9 (one per distinct timestamp).
        assert_eq!(r.ticks, vec![0, 2, 5, 9]);
        assert!(r.finished);
    }

    #[test]
    fn frames_match_materialised_replay() {
        let trace = nested_trace();
        let mut r = Recorder::default();
        replay_visit(&trace, ProcessId(0), &mut r);
        let reference = replay_process(&trace, ProcessId(0));
        // Frames arrive in leave order; compare against the invocations
        // sorted the same way.
        assert_eq!(r.frames.len(), reference.len());
        for frame in &r.frames {
            let inv = reference
                .invocations()
                .iter()
                .find(|i| i.function == frame.function && i.enter == frame.enter)
                .expect("frame has a matching invocation");
            assert_eq!(frame.depth, inv.depth);
            assert_eq!(frame.leave, inv.leave);
            assert_eq!(frame.children_inclusive, inv.children_inclusive);
            assert_eq!(frame.sync_within, inv.sync_within);
            assert_eq!(frame.inclusive(), inv.inclusive());
            assert_eq!(frame.exclusive(), inv.exclusive());
        }
        // The barrier closed first (leave order) and carries its own
        // inclusive time as sync.
        assert_eq!(r.frames[0].sync_within, DurationTicks(3));
        assert_eq!(r.frames[1].sync_within, DurationTicks(3));
    }

    #[test]
    fn machine_driven_stepping_equals_replay_visit() {
        let trace = nested_trace();
        let mut whole = Recorder::default();
        replay_visit(&trace, ProcessId(0), &mut whole);

        let mut stepped = Recorder::default();
        let mut machine = ReplayMachine::new(trace.registry());
        for record in trace.stream(ProcessId(0)).records() {
            machine.step(record, &mut stepped);
        }
        machine.finish(&mut stepped);

        assert_eq!(stepped.enters, whole.enters);
        assert_eq!(stepped.frames, whole.frames);
        assert_eq!(stepped.metrics, whole.metrics);
        assert_eq!(stepped.ticks, whole.ticks);
        assert!(stepped.finished);
        assert_eq!(machine.max_depth(), 2);
        assert_eq!(
            machine.events_stepped(),
            trace.stream(ProcessId(0)).records().len() as u64
        );
    }

    #[test]
    fn replay_visit_reports_stats() {
        let trace = nested_trace();
        let mut r = Recorder::default();
        let stats = replay_visit(&trace, ProcessId(0), &mut r);
        assert_eq!(
            stats.events,
            trace.stream(ProcessId(0)).records().len() as u64
        );
        assert_eq!(stats.max_depth, 2);
    }

    #[test]
    fn empty_stream_only_finishes() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        b.define_process("p0");
        let trace = b.finish().unwrap();
        let mut r = Recorder::default();
        replay_visit(&trace, ProcessId(0), &mut r);
        assert!(r.enters.is_empty() && r.frames.is_empty() && r.ticks.is_empty());
        assert!(r.finished);
    }
}
