//! Automatic diagnosis at scale: cluster-summarised behaviour with
//! cause-labelled findings.
//!
//! At 10k–100k ranks a per-rank heatmap is unreadable and a flat outlier
//! list unhelpful. This module condenses an [`Analysis`] into a
//! [`Diagnosis`]: processes are grouped into at most
//! [`DiagnoseConfig::max_clusters`] behaviour clusters (each with a
//! representative rank and a spread summary, so the visualizer can draw
//! *one heatmap row per cluster*), every cluster carries a human-readable
//! **cause** label, and the findings list is extended with two
//! scale-aware kinds: [`FindingKind::OverloadedCluster`] for persistent
//! load concentrated on a group of ranks, and
//! [`FindingKind::PropagatingWait`] for desynchronisation ("idle") waves
//! after Afzal et al. (arXiv 2205.13963) — waiting time that travels one
//! rank per segment through the communication topology while the
//! computational load stays perfectly balanced. SOS-time is what makes
//! the distinction possible: a static imbalance lives in the SOS matrix,
//! a wave lives only in the synchronisation time (`duration − SOS`).
//!
//! Small runs are clustered exactly (the agglomerative algorithm of
//! [`crate::clustering`]); above [`DiagnoseConfig::exact_threshold`]
//! processes a deterministic single-pass summariser folds the per-rank
//! SOS profiles into a bounded set of sketches in ascending rank order,
//! never materialising the O(ranks²) distance matrix — the same
//! out-of-core spirit as the rest of the pipeline, and bit-stable across
//! thread and shard counts because it consumes only the (bit-stable)
//! [`Analysis`].
//!
//! Everything here is **clock-free**: descriptions quote raw ticks and
//! percentages only, so the daemon (which holds no [`perfvar_trace::Clock`])
//! renders byte-identical JSON to the CLI.

use crate::clustering::{euclidean, ClusterConfig, ProcessClustering};
use crate::findings::{Finding, FindingKind};
use crate::report::Analysis;
use crate::sos::{SosMatrix, TickStats};
use perfvar_trace::{DurationTicks, ProcessId, TraceMeta};
use serde::{Deserialize, Serialize};

/// Diagnosis parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DiagnoseConfig {
    /// Parameters of the underlying process clustering.
    pub cluster: ClusterConfig,
    /// Hard cap on reported clusters — the summarised heatmap draws one
    /// row per cluster, so this bounds the visual height of any run.
    pub max_clusters: usize,
    /// Process counts up to this use the exact agglomerative clustering;
    /// larger runs use the streaming sketch summariser.
    pub exact_threshold: usize,
}

impl Default for DiagnoseConfig {
    fn default() -> DiagnoseConfig {
        DiagnoseConfig {
            cluster: ClusterConfig::default(),
            max_clusters: 20,
            exact_threshold: 512,
        }
    }
}

/// One behaviour cluster with its diagnosis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiagnosedCluster {
    /// Member processes, ascending.
    pub members: Vec<ProcessId>,
    /// The representative rank (member closest to the cluster centroid)
    /// whose SOS row stands in for the whole cluster in summarised
    /// heatmaps.
    pub representative: ProcessId,
    /// Distribution of the members' total SOS-times — the *spread band*
    /// around the representative.
    pub spread: TickStats,
    /// Median of the cluster's mean per-segment SOS profile (the level
    /// the cause labels compare against the baseline cluster).
    pub median_sos: f64,
    /// Human-readable cause label for this cluster's behaviour.
    pub cause: String,
}

/// A detected desynchronisation wave: waiting time propagating one rank
/// per segment ordinal through the communication topology.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WaveDiagnosis {
    /// The rank whose one-off delay launched the wave.
    pub origin: ProcessId,
    /// Segment ordinal at which the wave left the origin (the first
    /// neighbour's blocked segment).
    pub start_ordinal: usize,
    /// Ring direction of travel: `1` towards higher ranks, `-1` towards
    /// lower ranks.
    pub direction: i8,
    /// Ranks swept by the front, ascending.
    pub affected: Vec<ProcessId>,
    /// Fraction of the affected ranks whose wait peak sits on the
    /// one-rank-per-segment diagonal (± one ordinal).
    pub fit: f64,
    /// Largest single blocking time on the front, in ticks.
    pub peak_wait: DurationTicks,
}

/// The complete automatic diagnosis of one analysis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Name of the analysed trace.
    pub trace_name: String,
    /// Name of the segmentation function.
    pub function: String,
    /// Number of processes in the run.
    pub num_processes: usize,
    /// Behaviour clusters, largest first, each with a cause label.
    pub clusters: Vec<DiagnosedCluster>,
    /// The desynchronisation wave, if one was detected.
    pub wave: Option<WaveDiagnosis>,
    /// Severity-ranked findings (the cluster- and wave-aware extension
    /// of [`crate::findings`]).
    pub findings: Vec<Finding>,
}

/// Diagnoses `analysis`. `function_name` is the display name of
/// `analysis.function`; `counter_names` names `analysis.counters` (same
/// order). Both are passed in rather than looked up so the daemon can
/// reproduce the CLI's output byte for byte from its cached metadata.
pub fn diagnose_analysis(
    analysis: &Analysis,
    function_name: &str,
    counter_names: &[String],
    config: &DiagnoseConfig,
) -> Diagnosis {
    let n = analysis.sos.num_processes();
    let clustering = cluster_summarised(&analysis.sos, config);
    let wave = detect_wave(analysis);
    let totals = analysis.sos.process_totals();

    // Decorate clusters with spread and cause labels.
    let baseline_median = clustering
        .clusters
        .first()
        .map(|c| median(&c.centroid))
        .unwrap_or(0.0);
    let counter_hint = strongest_counter(analysis, counter_names);
    let mut clusters = Vec::with_capacity(clustering.clusters.len());
    for (idx, c) in clustering.clusters.iter().enumerate() {
        let spread = TickStats::from_values(c.members.iter().map(|p| totals[p.index()].0));
        let median_sos = median(&c.centroid);
        let cause = cause_label(
            idx,
            c,
            median_sos,
            baseline_median,
            wave.as_ref(),
            analysis,
            function_name,
            counter_hint.as_deref(),
        );
        clusters.push(DiagnosedCluster {
            members: c.members.clone(),
            representative: c.representative,
            spread,
            median_sos,
            cause,
        });
    }

    let findings = diagnosis_findings(
        analysis,
        function_name,
        counter_names,
        &clusters,
        wave.as_ref(),
    );

    Diagnosis {
        trace_name: analysis.trace_name.clone(),
        function: function_name.to_string(),
        num_processes: n,
        clusters,
        wave,
        findings,
    }
}

/// Convenience wrapper resolving the function and counter names from
/// trace metadata (the CLI / in-memory path).
pub fn diagnose_meta(meta: &TraceMeta, analysis: &Analysis, config: &DiagnoseConfig) -> Diagnosis {
    let function_name = meta.registry.function(analysis.function).name.clone();
    let counter_names: Vec<String> = analysis
        .counters
        .iter()
        .map(|c| meta.registry.metric(c.metric).name.clone())
        .collect();
    diagnose_analysis(analysis, &function_name, &counter_names, config)
}

impl Diagnosis {
    /// Renders the diagnosis as human-readable text (clock-free: raw
    /// ticks, like the JSON form).
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "automatic diagnosis: trace {:?}, segmentation function `{}`, {} process(es)",
            self.trace_name, self.function, self.num_processes
        );
        let _ = writeln!(out, "behaviour clusters ({}):", self.clusters.len());
        for (i, c) in self.clusters.iter().enumerate() {
            let _ = writeln!(
                out,
                "  cluster #{i} ×{:<6} rep {:<8} total SOS {:.0}±{:.0} ticks  [{}]  cause: {}",
                c.members.len(),
                c.representative.to_string(),
                c.spread.mean,
                c.spread.stddev,
                member_summary(&c.members),
                c.cause
            );
        }
        if let Some(w) = &self.wave {
            let _ = writeln!(
                out,
                "idle wave: origin {} at segment #{}, direction {}, {} rank(s) swept \
                 (diagonal fit {:.0}%, peak wait {} ticks)",
                w.origin,
                w.start_ordinal,
                if w.direction >= 0 { "+1" } else { "-1" },
                w.affected.len(),
                w.fit * 100.0,
                w.peak_wait.0
            );
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "findings: none — the run looks healthy");
        } else {
            let _ = writeln!(out, "findings ({}):", self.findings.len());
            for (i, f) in self.findings.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  {}. [{:>3.0}%] {}",
                    i + 1,
                    f.severity * 100.0,
                    f.description
                );
            }
        }
        out
    }
}

/// Compact member listing: first few ranks plus a remainder count.
fn member_summary(members: &[ProcessId]) -> String {
    let head: Vec<String> = members.iter().take(6).map(|p| p.to_string()).collect();
    if members.len() > 6 {
        format!("{} …+{}", head.join(" "), members.len() - 6)
    } else {
        head.join(" ")
    }
}

fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    v[(v.len() - 1) / 2]
}

/// The strongest root-cause counter hint (|r| > 0.8), as a display name.
fn strongest_counter(analysis: &Analysis, counter_names: &[String]) -> Option<String> {
    analysis
        .counters
        .iter()
        .enumerate()
        .filter_map(|(i, c)| c.sos_correlation.map(|r| (i, r)))
        .filter(|(_, r)| r.abs() > 0.8)
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
        .map(|(i, _)| {
            counter_names
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("metric#{i}"))
        })
}

#[allow(clippy::too_many_arguments)]
fn cause_label(
    idx: usize,
    cluster: &crate::clustering::Cluster,
    median_sos: f64,
    baseline_median: f64,
    wave: Option<&WaveDiagnosis>,
    analysis: &Analysis,
    function_name: &str,
    counter_hint: Option<&str>,
) -> String {
    let confirmed = |s: String| match counter_hint {
        Some(m) => format!("{s}, counter-confirmed (`{m}`)"),
        None => s,
    };
    if idx == 0 {
        // The largest cluster is the baseline everything else is judged
        // against.
        if let Some(w) = wave {
            let swept = cluster
                .members
                .iter()
                .filter(|p| w.affected.binary_search(p).is_ok())
                .count();
            if swept * 2 >= w.affected.len().max(1) && swept > 0 {
                return format!("baseline compute; {swept} rank(s) swept by the idle wave");
            }
        }
        return "baseline behaviour".to_string();
    }
    if let Some(w) = wave {
        if cluster.members.contains(&w.origin) {
            return format!(
                "one-off delay at segment #{} that launched the idle wave",
                w.start_ordinal
            );
        }
    }
    let persistent_overload = if baseline_median > 0.0 {
        median_sos > baseline_median * 1.25
    } else {
        median_sos > 0.0
    };
    if persistent_overload {
        let vs = if baseline_median > 0.0 {
            format!(
                "+{:.0}% vs baseline",
                (median_sos / baseline_median - 1.0) * 100.0
            )
        } else {
            format!("median SOS {median_sos:.0} ticks vs idle baseline")
        };
        return confirmed(format!(
            "persistent computational overload in `{function_name}` ({vs})"
        ));
    }
    // One-off spikes: the centroid is flat except for isolated segments,
    // or a member carries a flagged outlier invocation.
    let peak = cluster.centroid.iter().cloned().fold(0.0f64, f64::max);
    let spiky = peak > 2.0 * median_sos.max(1.0);
    let outlier = analysis
        .imbalance
        .segment_outliers
        .iter()
        .find(|o| cluster.members.contains(&o.process));
    if spiky || outlier.is_some() {
        let detail = match outlier {
            Some(o) => format!("{} segment #{}", o.process, o.ordinal),
            None => format!(
                "peak {:.0} ticks over a {:.0}-tick median",
                peak, median_sos
            ),
        };
        return confirmed(format!("one-off slow invocation(s): {detail}"));
    }
    if baseline_median > 0.0 && median_sos < baseline_median * 0.75 {
        return format!(
            "persistently underloaded (−{:.0}% vs baseline)",
            (1.0 - median_sos / baseline_median) * 100.0
        );
    }
    "behaviour differs from baseline".to_string()
}

/// Builds the severity-ranked findings of a diagnosis. All descriptions
/// are clock-free. Push order matters: the stable sort keeps the wave
/// and cluster findings ahead of generic findings of equal severity —
/// they *explain* the waste rather than merely flagging it.
fn diagnosis_findings(
    analysis: &Analysis,
    function_name: &str,
    counter_names: &[String],
    clusters: &[DiagnosedCluster],
    wave: Option<&WaveDiagnosis>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let waste_fraction = analysis.waste.waste_fraction();

    if let Some(w) = wave {
        // The wave accounts for the run's waiting time; rank it by the
        // larger of its direct cost and the overall waste it explains.
        let total: u64 = (0..analysis.sos.num_processes())
            .map(|p| {
                analysis
                    .sos
                    .process_durations(ProcessId::from_index(p))
                    .iter()
                    .map(|d| d.0)
                    .sum::<u64>()
            })
            .sum();
        let front_cost: u64 = w
            .affected
            .iter()
            .map(|p| peak_wait_of(&analysis.sos, *p).0)
            .sum();
        let fraction = if total > 0 {
            front_cost as f64 / total as f64
        } else {
            0.0
        };
        out.push(Finding {
            kind: FindingKind::PropagatingWait {
                origin: w.origin,
                start_ordinal: w.start_ordinal,
                affected_ranks: w.affected.len(),
            },
            severity: fraction.max(waste_fraction).min(1.0),
            description: format!(
                "idle wave: a one-off delay on {} launches a wait front at segment #{} \
                 that sweeps {} rank(s) one rank per segment (peak wait {} ticks) — \
                 compute is balanced, the loss is propagating synchronisation",
                w.origin,
                w.start_ordinal,
                w.affected.len(),
                w.peak_wait.0
            ),
        });
    }

    let baseline_median = clusters.first().map(|c| c.median_sos).unwrap_or(0.0);
    for (idx, c) in clusters.iter().enumerate().skip(1) {
        let overloaded = if baseline_median > 0.0 {
            c.median_sos > baseline_median * 1.25
        } else {
            c.median_sos > 0.0
        };
        if !overloaded {
            continue;
        }
        let names: Vec<String> = c.members.iter().take(8).map(|p| p.to_string()).collect();
        out.push(Finding {
            kind: FindingKind::OverloadedCluster {
                cluster: idx,
                processes: c.members.clone(),
                function: function_name.to_string(),
            },
            severity: waste_fraction,
            description: format!(
                "cluster #{idx} ({} rank(s): {}{}) carries persistent computational \
                 overload in `{function_name}`: median SOS {:.0} ticks vs baseline {:.0}; \
                 ≈{:.0}% of aggregate CPU time is spent waiting for the slowest",
                c.members.len(),
                names.join(", "),
                if c.members.len() > 8 { ", …" } else { "" },
                c.median_sos,
                baseline_median,
                waste_fraction * 100.0
            ),
        });
    }

    // Localised spikes (clock-free variant of the base findings' rule).
    let spike_like = !analysis.imbalance.segment_outliers.is_empty()
        && analysis.imbalance.segment_outliers.len()
            <= 3 * analysis.imbalance.process_outliers.len().max(1);
    if spike_like {
        let segments: Vec<(ProcessId, usize)> = analysis
            .imbalance
            .segment_outliers
            .iter()
            .map(|o| (o.process, o.ordinal))
            .collect();
        let top = &analysis.imbalance.segment_outliers[0];
        out.push(Finding {
            kind: FindingKind::OutlierInvocations {
                segments: segments.clone(),
            },
            severity: waste_fraction,
            description: format!(
                "{} isolated slow invocation(s); worst: {} segment #{} with SOS {} ticks \
                 (score {:.0})",
                segments.len(),
                top.process,
                top.ordinal,
                top.sos.0,
                top.score
            ),
        });
    }

    let drift = analysis.imbalance.duration_trend.relative_increase;
    if drift.abs() > 0.25 {
        out.push(Finding {
            kind: FindingKind::TemporalDrift {
                relative_increase: drift,
            },
            severity: (drift.abs() / 4.0).min(1.0),
            description: format!(
                "segment durations {} by {:.0}% over the run",
                if drift > 0.0 { "grow" } else { "shrink" },
                drift.abs() * 100.0
            ),
        });
    }

    for (i, counter) in analysis.counters.iter().enumerate() {
        if let Some(r) = counter.sos_correlation {
            if r.abs() > 0.8 {
                let metric = counter_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("metric#{i}"));
                out.push(Finding {
                    kind: FindingKind::CounterCorrelation {
                        metric: metric.clone(),
                        correlation: r,
                    },
                    severity: r.abs(),
                    description: format!(
                        "counter {metric:?} correlates with SOS-time (r = {r:+.2}) — \
                         a likely root-cause indicator"
                    ),
                });
            }
        }
    }

    // Causes outrank symptoms: once the waste is attributed to a wave
    // or an overloaded cluster, the remaining findings (drift, spikes,
    // counter correlations) describe the same loss from the outside —
    // a steadily growing cloud *is* a duration drift. Cap them just
    // below the strongest cause so the ranking leads with the
    // explanation while keeping their relative order.
    let is_cause = |kind: &FindingKind| {
        matches!(
            kind,
            FindingKind::PropagatingWait { .. } | FindingKind::OverloadedCluster { .. }
        )
    };
    let cause_max = out
        .iter()
        .filter(|f| is_cause(&f.kind))
        .map(|f| f.severity)
        .fold(f64::NEG_INFINITY, f64::max);
    if cause_max.is_finite() {
        for f in &mut out {
            if !is_cause(&f.kind) {
                f.severity = f.severity.min(cause_max * 0.95);
            }
        }
    }

    out.sort_by(|a, b| b.severity.total_cmp(&a.severity));
    out
}

/// Largest per-segment wait (`duration − SOS`) of `p`.
fn peak_wait_of(m: &SosMatrix, p: ProcessId) -> DurationTicks {
    let dur = m.process_durations(p);
    let sos = m.process_sos(p);
    DurationTicks(
        dur.iter()
            .zip(sos)
            .map(|(d, s)| d.0.saturating_sub(s.0))
            .max()
            .unwrap_or(0),
    )
}

/// Detects a desynchronisation wave in the synchronisation time
/// (`duration − SOS`) of the matrix: a set of ranks whose *wait peaks*
/// advance one segment ordinal per rank along the ring — the diagonal
/// front of Afzal et al. Static imbalances fail the test because every
/// waiting rank peaks at the *same* ordinal (typically the last), and
/// background jitter fails the diagonal fit.
fn detect_wave(analysis: &Analysis) -> Option<WaveDiagnosis> {
    let m = &analysis.sos;
    let n = m.num_processes();
    if n < 3 {
        return None;
    }
    // Per rank: largest wait and the ordinal it happens at (first max).
    let mut peaks: Vec<(u64, usize)> = Vec::with_capacity(n);
    for p in 0..n {
        let pid = ProcessId::from_index(p);
        let dur = m.process_durations(pid);
        let sos = m.process_sos(pid);
        let mut best = (0u64, 0usize);
        for (i, (d, s)) in dur.iter().zip(sos).enumerate() {
            let wait = d.0.saturating_sub(s.0);
            if wait > best.0 {
                best = (wait, i);
            }
        }
        peaks.push(best);
    }
    let global_max = peaks.iter().map(|p| p.0).max()?;
    if global_max == 0 {
        return None;
    }
    // A wave-sized wait dwarfs per-segment compute noise; waits on the
    // scale of ordinary SOS jitter are not a wave.
    let sos_mean = m.sos_stats().mean;
    if (global_max as f64) < 0.5 * sos_mean {
        return None;
    }
    let cutoff = global_max / 3;
    let affected: Vec<usize> = (0..n).filter(|&p| peaks[p].0 >= cutoff).collect();
    if affected.len() < 3 {
        return None;
    }
    let distinct: std::collections::BTreeSet<usize> =
        affected.iter().map(|&p| peaks[p].1).collect();
    if distinct.len() < 3 {
        return None;
    }
    // The front head: earliest peak ordinal, lowest rank on ties.
    let first_ord = *distinct.iter().next()?;
    let r0 = *affected.iter().find(|&&p| peaks[p].1 == first_ord)?;
    // Try both ring directions; expected ordinal grows one per hop.
    let score = |dir: i64| -> usize {
        affected
            .iter()
            .filter(|&&p| {
                let dist = if dir > 0 {
                    (p + n - r0) % n
                } else {
                    (r0 + n - p) % n
                };
                let expected = first_ord + dist;
                peaks[p].1.abs_diff(expected) <= 1
            })
            .count()
    };
    let (fwd, bwd) = (score(1), score(-1));
    let (dir, matches) = if fwd >= bwd { (1i8, fwd) } else { (-1i8, bwd) };
    let fit = matches as f64 / affected.len() as f64;
    if fit < 0.8 {
        return None;
    }
    // The origin sits one hop upstream of the front head: its delay is
    // compute (SOS), so it never waits — its neighbour blocks first.
    let origin = if dir > 0 {
        (r0 + n - 1) % n
    } else {
        (r0 + 1) % n
    };
    let peak_wait = DurationTicks(affected.iter().map(|&p| peaks[p].0).max().unwrap_or(0));
    Some(WaveDiagnosis {
        origin: ProcessId::from_index(origin),
        start_ordinal: first_ord,
        direction: dir,
        affected: affected.iter().map(|&p| ProcessId::from_index(p)).collect(),
        fit,
        peak_wait,
    })
}

/// Clusters the matrix, switching to the streaming summariser above
/// `config.exact_threshold` processes and capping the result at
/// `config.max_clusters` either way.
fn cluster_summarised(matrix: &SosMatrix, config: &DiagnoseConfig) -> ProcessClustering {
    let n = matrix.num_processes();
    let max_clusters = config.max_clusters.max(1);
    let target = config
        .cluster
        .num_clusters
        .map(|k| k.clamp(1, max_clusters));
    if n <= config.exact_threshold {
        let c = ProcessClustering::compute(
            matrix,
            ClusterConfig {
                distance_threshold: config.cluster.distance_threshold,
                num_clusters: target,
            },
        );
        if c.len() <= max_clusters {
            return c;
        }
        // Threshold clustering overshot the row budget: force the cap.
        return ProcessClustering::compute(
            matrix,
            ClusterConfig {
                distance_threshold: config.cluster.distance_threshold,
                num_clusters: Some(max_clusters),
            },
        );
    }
    cluster_streaming(
        matrix,
        config.cluster.distance_threshold,
        target,
        max_clusters,
    )
}

/// Deterministic single-pass sketch clustering for large runs.
///
/// Ranks are folded in ascending order: each per-rank SOS profile is
/// absorbed into the nearest sketch if within the stop distance, else it
/// opens a new sketch; once the sketch budget is full, profiles are
/// absorbed into their nearest sketch unconditionally (the summariser
/// trades tail precision for a hard memory bound, like the rest of the
/// out-of-core pipeline). A final agglomerative pass merges the sketch
/// centroids down to the requested cluster count. O(ranks × budget ×
/// width) time, O(budget × width + ranks) memory — the full rank×segment
/// matrix is only ever read row by row.
fn cluster_streaming(
    matrix: &SosMatrix,
    distance_threshold: f64,
    target: Option<usize>,
    max_clusters: usize,
) -> ProcessClustering {
    let n = matrix.num_processes();
    let width = (0..n)
        .map(|p| matrix.process_sos(ProcessId::from_index(p)).len())
        .max()
        .unwrap_or(0);
    let stats = matrix.sos_stats();
    let rms = (stats.mean * stats.mean + stats.stddev * stats.stddev).sqrt();
    let stop_distance = if rms == 0.0 {
        0.0
    } else {
        distance_threshold * rms
    };
    let budget = (max_clusters * 4).clamp(32, 256);

    struct Sketch {
        centroid: Vec<f64>,
        count: usize,
    }
    let mut sketches: Vec<Sketch> = Vec::new();
    let mut assignment: Vec<u32> = Vec::with_capacity(n);
    let mut profile = vec![0.0f64; width];
    for p in 0..n {
        let row = matrix.process_sos(ProcessId::from_index(p));
        for (i, slot) in profile.iter_mut().enumerate() {
            *slot = row.get(i).map(|d| d.0 as f64).unwrap_or(0.0);
        }
        let nearest = sketches
            .iter()
            .enumerate()
            .map(|(i, s)| (i, euclidean(&profile, &s.centroid)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        match nearest {
            Some((i, d)) if d <= stop_distance || sketches.len() >= budget => {
                let s = &mut sketches[i];
                let k = s.count as f64;
                for (c, v) in s.centroid.iter_mut().zip(&profile) {
                    *c = (*c * k + v) / (k + 1.0);
                }
                s.count += 1;
                assignment.push(i as u32);
            }
            _ => {
                assignment.push(sketches.len() as u32);
                sketches.push(Sketch {
                    centroid: profile.clone(),
                    count: 1,
                });
            }
        }
    }
    if sketches.is_empty() {
        return ProcessClustering {
            clusters: Vec::new(),
        };
    }

    // Agglomerative merge of the sketch centroids (k ≤ budget, so the
    // quadratic closest-pair search is cheap). Same semantics as the
    // exact algorithm: to the fixed target if given, else within the
    // stop distance — but never more than `max_clusters` groups.
    let goal = target.unwrap_or(max_clusters).max(1);
    let mut redirect: Vec<usize> = (0..sketches.len()).collect();
    let mut alive: Vec<bool> = vec![true; sketches.len()];
    let mut live = sketches.len();
    while live > 1 {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..sketches.len() {
            if !alive[i] {
                continue;
            }
            for j in (i + 1)..sketches.len() {
                if !alive[j] {
                    continue;
                }
                let d = euclidean(&sketches[i].centroid, &sketches[j].centroid);
                let better = match best {
                    None => true,
                    Some((bi, bj, bd)) => match d.total_cmp(&bd) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => (i, j) < (bi, bj),
                        std::cmp::Ordering::Greater => false,
                    },
                };
                if better {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { break };
        let over_goal = live > goal;
        let within_threshold = target.is_none() && d <= stop_distance && live > 1;
        if !(over_goal || within_threshold) {
            break;
        }
        let (ci, cj) = (sketches[i].count as f64, sketches[j].count as f64);
        let merged: Vec<f64> = sketches[i]
            .centroid
            .iter()
            .zip(&sketches[j].centroid)
            .map(|(a, b)| (a * ci + b * cj) / (ci + cj))
            .collect();
        sketches[i].centroid = merged;
        sketches[i].count += sketches[j].count;
        alive[j] = false;
        redirect[j] = i;
        live -= 1;
    }
    // Resolve merge chains.
    let resolve = |mut i: usize, redirect: &[usize]| {
        while redirect[i] != i {
            i = redirect[i];
        }
        i
    };

    // Gather members per surviving sketch (ascending ranks by
    // construction) and pick each representative in a second row-by-row
    // pass: the member closest to its centroid, lowest rank on ties.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); sketches.len()];
    for (rank, &a) in assignment.iter().enumerate() {
        members[resolve(a as usize, &redirect)].push(rank);
    }
    let mut rep: Vec<Option<(usize, f64)>> = vec![None; sketches.len()];
    for (p, &a) in assignment.iter().enumerate().take(n) {
        let row = matrix.process_sos(ProcessId::from_index(p));
        for (i, slot) in profile.iter_mut().enumerate() {
            *slot = row.get(i).map(|d| d.0 as f64).unwrap_or(0.0);
        }
        let s = resolve(a as usize, &redirect);
        let d = euclidean(&profile, &sketches[s].centroid);
        let better = match rep[s] {
            None => true,
            Some((_, bd)) => d < bd,
        };
        if better {
            rep[s] = Some((p, d));
        }
    }

    let mut clusters: Vec<crate::clustering::Cluster> = (0..sketches.len())
        .filter(|&i| alive[i] && !members[i].is_empty())
        .map(|i| crate::clustering::Cluster {
            members: members[i]
                .iter()
                .map(|&m| ProcessId::from_index(m))
                .collect(),
            representative: ProcessId::from_index(rep[i].map(|(p, _)| p).unwrap_or(members[i][0])),
            centroid: sketches[i].centroid.clone(),
        })
        .collect();
    clusters.sort_by_key(|c| (std::cmp::Reverse(c.members.len()), c.members[0].0));
    ProcessClustering { clusters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{analyze, AnalysisConfig};
    use perfvar_sim::simulate;
    use perfvar_sim::workloads::{BalancedStencil, CosmoSpecs, DesyncWave, Workload};

    fn diagnose_workload(spec: &perfvar_sim::AppSpec) -> (Diagnosis, Analysis) {
        let trace = simulate(spec).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let meta = perfvar_trace::TraceMeta::of(&trace);
        let d = diagnose_meta(&meta, &analysis, &DiagnoseConfig::default());
        (d, analysis)
    }

    /// A scaled-down COSMO-SPECS whose cloud is strong enough that the
    /// cloudy ranks' *median* load clears the persistent-overload bar
    /// even over a short test run (the paper's 60-iteration cloud builds
    /// up slowly).
    fn strong_cosmo(rows: usize, cols: usize, iterations: usize) -> CosmoSpecs {
        let mut w = CosmoSpecs::small(rows, cols, iterations);
        w.cloud_amplitude = 6.0;
        w
    }

    #[test]
    fn cosmo_specs_isolates_overloaded_cluster() {
        let w = strong_cosmo(4, 4, 8);
        let (d, _) = diagnose_workload(&w.spec());
        assert!(d.clusters.len() >= 2, "{}", d.render_text());
        // The cloudy ranks end up outside the baseline cluster, and the
        // top finding blames an overloaded cluster containing them.
        let top = &d.findings[0];
        let FindingKind::OverloadedCluster { processes, .. } = &top.kind else {
            panic!(
                "top finding not an overloaded cluster:\n{}",
                d.render_text()
            );
        };
        for hot in w.cloudy_ranks() {
            assert!(
                processes.contains(&ProcessId::from_index(hot)),
                "cloudy rank {hot} missing from {processes:?}"
            );
        }
        assert!(top
            .description
            .contains("persistent computational overload"));
        // The flagged cluster's cause label agrees.
        let FindingKind::OverloadedCluster { cluster, .. } = &top.kind else {
            unreachable!()
        };
        assert!(d.clusters[*cluster].cause.contains("overload"));
    }

    #[test]
    fn desync_wave_is_classified_as_propagating_wait() {
        let w = DesyncWave::new(16, 20, 4);
        let (d, _) = diagnose_workload(&w.spec());
        let wave = d.wave.as_ref().expect("no wave detected");
        assert_eq!(wave.origin, ProcessId::from_index(4));
        assert_eq!(wave.start_ordinal, w.delay_iteration);
        assert_eq!(wave.direction, 1);
        assert!(wave.fit >= 0.8);
        let top = &d.findings[0];
        let FindingKind::PropagatingWait {
            origin,
            start_ordinal,
            affected_ranks,
        } = &top.kind
        else {
            panic!("top finding not a wave: {}", d.render_text());
        };
        assert_eq!(*origin, ProcessId::from_index(4));
        assert_eq!(*start_ordinal, w.delay_iteration);
        assert!(*affected_ranks >= 8, "{affected_ranks}");
        // The origin's cluster is labelled as the launcher, not as a
        // persistent overload.
        let origin_cluster = d
            .clusters
            .iter()
            .find(|c| c.members.contains(&ProcessId::from_index(4)))
            .unwrap();
        assert!(
            origin_cluster.cause.contains("launched the idle wave")
                || origin_cluster.cause.contains("baseline"),
            "{}",
            origin_cluster.cause
        );
    }

    #[test]
    fn static_imbalance_is_not_a_wave() {
        let w = CosmoSpecs::small(4, 4, 8);
        let (d, _) = diagnose_workload(&w.spec());
        assert!(d.wave.is_none(), "{:?}", d.wave);
    }

    #[test]
    fn balanced_run_is_one_cluster_without_wave() {
        let w = BalancedStencil::new(8, 10);
        let (d, _) = diagnose_workload(&w.spec());
        assert_eq!(d.clusters.len(), 1, "{}", d.render_text());
        assert_eq!(d.clusters[0].cause, "baseline behaviour");
        assert!(d.wave.is_none());
        assert_eq!(d.clusters[0].members.len(), 8);
    }

    #[test]
    fn streaming_path_matches_exact_groups() {
        // Same trace clustered exactly and via the streaming summariser:
        // the behaviour groups must agree on this clean two-group input.
        let w = CosmoSpecs::small(4, 4, 8);
        let trace = simulate(&w.spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let meta = perfvar_trace::TraceMeta::of(&trace);
        let exact = diagnose_meta(&meta, &analysis, &DiagnoseConfig::default());
        let streamed = diagnose_meta(
            &meta,
            &analysis,
            &DiagnoseConfig {
                exact_threshold: 0,
                ..DiagnoseConfig::default()
            },
        );
        let sets = |d: &Diagnosis| -> Vec<Vec<u32>> {
            d.clusters
                .iter()
                .map(|c| c.members.iter().map(|p| p.0).collect())
                .collect()
        };
        assert_eq!(sets(&exact), sets(&streamed));
    }

    #[test]
    fn cluster_cap_limits_heatmap_rows() {
        // Wildly different per-rank loads: the exact threshold would make
        // many clusters; the cap keeps the summary at ≤ max_clusters.
        let w = perfvar_sim::workloads::RandomImbalance::new(64, 6);
        let trace = simulate(&w.spec()).unwrap();
        let analysis = analyze(&trace, &AnalysisConfig::default()).unwrap();
        let meta = perfvar_trace::TraceMeta::of(&trace);
        for exact_threshold in [512, 0] {
            let d = diagnose_meta(
                &meta,
                &analysis,
                &DiagnoseConfig {
                    max_clusters: 5,
                    exact_threshold,
                    ..DiagnoseConfig::default()
                },
            );
            assert!(d.clusters.len() <= 5, "{} rows", d.clusters.len());
            let total: usize = d.clusters.iter().map(|c| c.members.len()).sum();
            assert_eq!(total, 64);
        }
    }

    #[test]
    fn diagnosis_is_deterministic_and_serde_round_trips() {
        let w = DesyncWave::new(12, 16, 3);
        let (a, analysis) = diagnose_workload(&w.spec());
        let trace = simulate(&w.spec()).unwrap();
        let meta = perfvar_trace::TraceMeta::of(&trace);
        let b = diagnose_meta(&meta, &analysis, &DiagnoseConfig::default());
        assert_eq!(a, b);
        let json = serde_json::to_string_pretty(&a).unwrap();
        let back: Diagnosis = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn render_text_names_clusters_and_causes() {
        let w = CosmoSpecs::small(4, 4, 8);
        let (d, _) = diagnose_workload(&w.spec());
        let text = d.render_text();
        assert!(text.contains("behaviour clusters"));
        assert!(text.contains("cluster #0"));
        assert!(text.contains("cause:"));
        assert!(text.contains("findings"));
    }

    #[test]
    fn empty_analysis_diagnoses_to_nothing() {
        let w = BalancedStencil::new(1, 3);
        let (d, _) = diagnose_workload(&w.spec());
        assert_eq!(d.clusters.len(), 1);
        assert!(d.wave.is_none());
    }
}
