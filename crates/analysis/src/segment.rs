//! Segmentation of the run by dominant-function invocations (§III).
//!
//! > *As we use invocations of the time-dominant function as segments,
//! > the inclusive time of the dominant function invocation equals the
//! > respective segment duration.*
//!
//! A [`Segment`] is one invocation of the chosen segmentation function on
//! one process, carrying its duration (inclusive time), the
//! synchronization time it contains, and the resulting SOS-time
//! (duration − synchronization, §V). [`Segmentation`] collects the
//! per-process segment lists.

use crate::invocation::ProcessInvocations;
use perfvar_trace::{DurationTicks, FunctionId, ProcessId, Timestamp, Trace};
use serde::{Deserialize, Serialize};

/// One invocation of the segmentation function, with its timing split.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// The process the segment ran on.
    pub process: ProcessId,
    /// Ordinal of this segment on its process (0-based; for iterative
    /// codes this is the iteration number).
    pub ordinal: u32,
    /// Segment start (invocation enter).
    pub enter: Timestamp,
    /// Segment end (invocation leave).
    pub leave: Timestamp,
    /// Synchronization/communication time contained in the segment.
    pub sync: DurationTicks,
}

impl Segment {
    /// Segment duration = the invocation's inclusive time.
    #[inline]
    pub fn duration(&self) -> DurationTicks {
        self.leave.since(self.enter)
    }

    /// The synchronization-oblivious segment time (§V):
    /// `duration − contained synchronization time`.
    #[inline]
    pub fn sos(&self) -> DurationTicks {
        self.duration().saturating_sub(self.sync)
    }
}

/// All segments of a trace for one segmentation function.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segmentation {
    /// The segmentation (dominant) function.
    pub function: FunctionId,
    per_process: Vec<Vec<Segment>>,
}

impl Segmentation {
    /// Builds the segmentation of `trace` by the invocations of
    /// `function`, from already-replayed invocations (one entry per
    /// process, in process order).
    pub fn new(
        trace: &Trace,
        replayed: &[ProcessInvocations],
        function: FunctionId,
    ) -> Segmentation {
        debug_assert_eq!(replayed.len(), trace.num_processes());
        let per_process = replayed
            .iter()
            .map(|proc_inv| {
                proc_inv
                    .of_function(function)
                    .enumerate()
                    .map(|(ordinal, inv)| Segment {
                        process: proc_inv.process,
                        ordinal: ordinal as u32,
                        enter: inv.enter,
                        leave: inv.leave,
                        sync: inv.sync_within,
                    })
                    .collect()
            })
            .collect();
        Segmentation {
            function,
            per_process,
        }
    }

    /// Assembles a segmentation from per-process rows built elsewhere
    /// (the fused streaming pass in [`crate::fused`]).
    pub(crate) fn from_parts(function: FunctionId, per_process: Vec<Vec<Segment>>) -> Segmentation {
        Segmentation {
            function,
            per_process,
        }
    }

    /// Number of processes covered.
    pub fn num_processes(&self) -> usize {
        self.per_process.len()
    }

    /// Segments of one process, in time order.
    pub fn process(&self, p: ProcessId) -> &[Segment] {
        &self.per_process[p.index()]
    }

    /// Iterates over every segment, process-major.
    pub fn iter(&self) -> impl Iterator<Item = &Segment> {
        self.per_process.iter().flatten()
    }

    /// Total number of segments.
    pub fn len(&self) -> usize {
        self.per_process.iter().map(Vec::len).sum()
    }

    /// Whether no process recorded a segment.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of segments on any process (the matrix width used
    /// by visualisation).
    pub fn max_segments_per_process(&self) -> usize {
        self.per_process.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether every process has the same number of segments (regular
    /// iterative behaviour).
    pub fn is_rectangular(&self) -> bool {
        let mut lens = self.per_process.iter().map(Vec::len);
        match lens.next() {
            Some(first) => lens.all(|l| l == first),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use perfvar_trace::{Clock, FunctionRole, TraceBuilder};

    /// Regression: a segment whose recorded sync time exceeds its
    /// inclusive time (possible with clock skew or truncated streams)
    /// must clamp SOS time to zero, never wrap around to a huge value.
    #[test]
    fn sos_clamps_to_zero_when_sync_exceeds_duration() {
        let seg = Segment {
            process: ProcessId(0),
            ordinal: 0,
            enter: Timestamp(10),
            leave: Timestamp(14),
            sync: DurationTicks(9),
        };
        assert_eq!(seg.duration(), DurationTicks(4));
        assert_eq!(seg.sos(), DurationTicks::ZERO);
    }

    /// Two processes, two iterations each; iteration contains calc + MPI.
    fn trace_two_iters() -> (Trace, FunctionId) {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let iter_f = b.define_function("iter", FunctionRole::Compute);
        let calc_f = b.define_function("calc", FunctionRole::Compute);
        let mpi_f = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        for (loads, waits) in [([5u64, 2], [1u64, 4]), ([3, 3], [3, 3])] {
            let p = b.define_process("p");
            let w = b.process_mut(p);
            let mut t = 0u64;
            for k in 0..2 {
                w.enter(Timestamp(t), iter_f).unwrap();
                w.enter(Timestamp(t), calc_f).unwrap();
                t += loads[k];
                w.leave(Timestamp(t), calc_f).unwrap();
                w.enter(Timestamp(t), mpi_f).unwrap();
                t += waits[k];
                w.leave(Timestamp(t), mpi_f).unwrap();
                w.leave(Timestamp(t), iter_f).unwrap();
            }
        }
        let trace = b.finish().unwrap();
        let f = trace.registry().function_by_name("iter").unwrap();
        (trace, f)
    }

    #[test]
    fn segments_carry_duration_sync_and_sos() {
        let (trace, iter_f) = trace_two_iters();
        let seg = Segmentation::new(&trace, &replay_all(&trace), iter_f);
        assert_eq!(seg.len(), 4);
        assert!(seg.is_rectangular());
        let s0 = seg.process(ProcessId(0));
        assert_eq!(s0[0].duration(), DurationTicks(6));
        assert_eq!(s0[0].sync, DurationTicks(1));
        assert_eq!(s0[0].sos(), DurationTicks(5));
        assert_eq!(s0[1].duration(), DurationTicks(6));
        assert_eq!(s0[1].sos(), DurationTicks(2));
        let s1 = seg.process(ProcessId(1));
        assert_eq!(s1[0].sos(), DurationTicks(3));
        assert_eq!(s1[1].sos(), DurationTicks(3));
    }

    #[test]
    fn ordinals_count_per_process() {
        let (trace, iter_f) = trace_two_iters();
        let seg = Segmentation::new(&trace, &replay_all(&trace), iter_f);
        for p in 0..2 {
            let segs = seg.process(ProcessId(p));
            assert_eq!(segs[0].ordinal, 0);
            assert_eq!(segs[1].ordinal, 1);
            assert_eq!(segs[0].process, ProcessId(p));
        }
        assert_eq!(seg.max_segments_per_process(), 2);
    }

    #[test]
    fn segmenting_by_unused_function_is_empty() {
        let (trace, _) = trace_two_iters();
        let calc = trace.registry().function_by_name("calc").unwrap();
        let seg = Segmentation::new(&trace, &replay_all(&trace), calc);
        assert_eq!(seg.len(), 4); // calc runs twice per process
        let mpi = trace.registry().function_by_name("MPI_Barrier").unwrap();
        let seg_mpi = Segmentation::new(&trace, &replay_all(&trace), mpi);
        // MPI segments are pure sync: SOS = 0 everywhere.
        assert!(seg_mpi.iter().all(|s| s.sos() == DurationTicks::ZERO));
    }

    #[test]
    fn irregular_segment_counts_detected() {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("f", FunctionRole::Compute);
        let p0 = b.define_process("p0");
        let p1 = b.define_process("p1");
        let w = b.process_mut(p0);
        w.enter(Timestamp(0), f).unwrap();
        w.leave(Timestamp(1), f).unwrap();
        w.enter(Timestamp(2), f).unwrap();
        w.leave(Timestamp(3), f).unwrap();
        let w = b.process_mut(p1);
        w.enter(Timestamp(0), f).unwrap();
        w.leave(Timestamp(1), f).unwrap();
        let trace = b.finish().unwrap();
        let seg = Segmentation::new(&trace, &replay_all(&trace), f);
        assert!(!seg.is_rectangular());
        assert_eq!(seg.max_segments_per_process(), 2);
        assert_eq!(seg.len(), 3);
    }
}
