//! Multi-threaded drivers for per-process pipeline stages.
//!
//! Replay — and, since the fused streaming engine, every other
//! per-process stage — is embarrassingly parallel across processes (each
//! stream is independent), which matters for the paper's large traces
//! (hundreds of ranks, millions of events). [`par_map_processes`] fans
//! the processes out over `std::thread::scope` workers; results land in
//! process order. [`replay_all_parallel`] is the replay instantiation.
//!
//! Ranks are *work-stolen*, not pre-chunked: workers pull the next rank
//! index from a shared atomic counter, so one slow rank (imbalance is
//! the very phenomenon the paper studies, and its traces inherit it)
//! delays only the worker decoding it instead of serialising that
//! worker's whole pre-assigned chunk behind it.
//!
//! The sequential [`replay_all`](crate::invocation::replay_all) remains
//! the reference implementation; an equivalence property test lives in
//! this module.

use crate::invocation::{replay_process, ProcessInvocations};
use perfvar_trace::{ProcessId, Trace};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a configured thread count: `0` means "use the hardware",
/// and there is never a point in more workers than processes.
pub fn resolve_threads(num_threads: usize, num_processes: usize) -> usize {
    let threads = if num_threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        num_threads
    };
    threads.min(num_processes.max(1))
}

/// Maps `work` over the ranks `0..num_ranks` on up to `num_threads`
/// scoped worker threads, returning results in rank order.
///
/// The trace-independent core of [`par_map_processes`]: the out-of-core
/// path uses it to fan workers out over archive streams without holding
/// a [`Trace`]. `num_threads == 0` selects the available hardware
/// parallelism; runs inline (no threads spawned) for a single rank or
/// one thread.
///
/// Scheduling is work-stealing over a shared atomic index: each worker
/// claims the next unclaimed rank with a `fetch_add` and collects its
/// `(rank, result)` pairs locally; the pairs are scattered into rank
/// order after the join. Rank order of the *results* is therefore
/// guaranteed while the *execution* order adapts to imbalance — a rank
/// that decodes 10× slower than the rest costs one worker, not a
/// pre-assigned chunk of ranks queued behind it.
pub fn par_map_ranks<T, F>(num_ranks: usize, num_threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(ProcessId) -> T + Sync,
{
    let p = num_ranks;
    let threads = resolve_threads(num_threads, p);

    if threads <= 1 || p <= 1 {
        return (0..p).map(|i| work(ProcessId::from_index(i))).collect();
    }

    let next = AtomicUsize::new(0);
    let work = &work;
    let next = &next;
    let mut collected: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= p {
                            break;
                        }
                        local.push((i, work(ProcessId::from_index(i))));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank worker panicked"))
            .collect()
    });

    let mut results: Vec<Option<T>> = (0..p).map(|_| None).collect();
    for local in collected.drain(..) {
        for (i, value) in local {
            results[i] = Some(value);
        }
    }
    results
        .into_iter()
        .map(|r| r.expect("every rank visited"))
        .collect()
}

/// Maps `work` over every process of `trace` on up to `num_threads`
/// scoped worker threads, returning results in process order.
///
/// `num_threads == 0` selects the available hardware parallelism. Runs
/// inline (no threads spawned) for single-process traces or one thread.
pub fn par_map_processes<T, F>(trace: &Trace, num_threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(ProcessId) -> T + Sync,
{
    par_map_ranks(trace.num_processes(), num_threads, work)
}

/// Replays all processes using up to `num_threads` worker threads.
///
/// `num_threads == 0` selects the available hardware parallelism. Falls
/// back to sequential replay for single-process traces or one thread.
pub fn replay_all_parallel(trace: &Trace, num_threads: usize) -> Vec<ProcessInvocations> {
    par_map_processes(trace, num_threads, |pid| replay_process(trace, pid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};

    fn many_process_trace(p: usize) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("work", FunctionRole::Compute);
        let g = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        for pi in 0..p {
            let pid = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(pid);
            let mut t = 0u64;
            for k in 0..20u64 {
                w.enter(Timestamp(t), f).unwrap();
                t += 1 + (pi as u64 + k) % 5;
                w.enter(Timestamp(t), g).unwrap();
                t += 2;
                w.leave(Timestamp(t), g).unwrap();
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let trace = many_process_trace(13);
        let seq = replay_all(&trace);
        for threads in [1, 2, 3, 8, 64] {
            let par = replay_all_parallel(&trace, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn auto_thread_count() {
        let trace = many_process_trace(5);
        let par = replay_all_parallel(&trace, 0);
        assert_eq!(par, replay_all(&trace));
    }

    #[test]
    fn empty_and_single_process() {
        let empty = TraceBuilder::new(Clock::microseconds()).finish().unwrap();
        assert!(replay_all_parallel(&empty, 4).is_empty());
        let single = many_process_trace(1);
        assert_eq!(replay_all_parallel(&single, 4).len(), 1);
    }

    #[test]
    fn results_in_process_order() {
        let trace = many_process_trace(7);
        let par = replay_all_parallel(&trace, 3);
        for (i, inv) in par.iter().enumerate() {
            assert_eq!(inv.process, ProcessId::from_index(i));
        }
    }

    #[test]
    fn par_map_runs_every_process_once() {
        let trace = many_process_trace(9);
        let ids = par_map_processes(&trace, 4, |pid| pid.index());
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn work_stealing_claims_each_rank_exactly_once() {
        // Under contention (more threads than ranks, threads than cores)
        // every rank must be claimed exactly once and land in order.
        let counts: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
        let counts_ref = &counts;
        let ids = par_map_ranks(23, 16, |pid| {
            counts_ref[pid.index()].fetch_add(1, Ordering::SeqCst);
            pid.index() * 3
        });
        assert_eq!(ids, (0..23).map(|i| i * 3).collect::<Vec<_>>());
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "rank {i}");
        }
    }

    #[test]
    fn one_slow_rank_does_not_starve_the_rest() {
        // With pre-chunked assignment a slow first rank would serialise
        // its whole chunk behind it; with stealing, the other workers
        // must finish all remaining ranks while it runs. Probe that by
        // checking the slow rank is not a prerequisite for completion
        // order correctness (the result vector is still rank-ordered).
        let out = par_map_ranks(8, 4, |pid| {
            if pid.index() == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            pid.index()
        });
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }
}
