//! Multi-threaded drivers for per-process pipeline stages.
//!
//! Replay — and, since the fused streaming engine, every other
//! per-process stage — is embarrassingly parallel across processes (each
//! stream is independent), which matters for the paper's large traces
//! (hundreds of ranks, millions of events). [`par_map_processes`] fans
//! the processes out over `std::thread::scope` workers; results land in
//! process order. [`replay_all_parallel`] is the replay instantiation.
//!
//! The sequential [`replay_all`](crate::invocation::replay_all) remains
//! the reference implementation; an equivalence property test lives in
//! this module.

use crate::invocation::{replay_process, ProcessInvocations};
use perfvar_trace::{ProcessId, Trace};

/// Resolves a configured thread count: `0` means "use the hardware",
/// and there is never a point in more workers than processes.
pub fn resolve_threads(num_threads: usize, num_processes: usize) -> usize {
    let threads = if num_threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        num_threads
    };
    threads.min(num_processes.max(1))
}

/// Maps `work` over the ranks `0..num_ranks` on up to `num_threads`
/// scoped worker threads, returning results in rank order.
///
/// The trace-independent core of [`par_map_processes`]: the out-of-core
/// path uses it to fan workers out over archive streams without holding
/// a [`Trace`]. `num_threads == 0` selects the available hardware
/// parallelism; runs inline (no threads spawned) for a single rank or
/// one thread.
pub fn par_map_ranks<T, F>(num_ranks: usize, num_threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(ProcessId) -> T + Sync,
{
    let p = num_ranks;
    let threads = resolve_threads(num_threads, p);

    if threads <= 1 || p <= 1 {
        return (0..p).map(|i| work(ProcessId::from_index(i))).collect();
    }

    let mut results: Vec<Option<T>> = (0..p).map(|_| None).collect();
    // Distribute contiguous chunks of ranks to workers.
    let chunk = p.div_ceil(threads);
    let work = &work;
    std::thread::scope(|scope| {
        for (worker, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let start = worker * chunk;
            scope.spawn(move || {
                for (offset, slot) in slot_chunk.iter_mut().enumerate() {
                    *slot = Some(work(ProcessId::from_index(start + offset)));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every rank visited"))
        .collect()
}

/// Maps `work` over every process of `trace` on up to `num_threads`
/// scoped worker threads, returning results in process order.
///
/// `num_threads == 0` selects the available hardware parallelism. Runs
/// inline (no threads spawned) for single-process traces or one thread.
pub fn par_map_processes<T, F>(trace: &Trace, num_threads: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(ProcessId) -> T + Sync,
{
    par_map_ranks(trace.num_processes(), num_threads, work)
}

/// Replays all processes using up to `num_threads` worker threads.
///
/// `num_threads == 0` selects the available hardware parallelism. Falls
/// back to sequential replay for single-process traces or one thread.
pub fn replay_all_parallel(trace: &Trace, num_threads: usize) -> Vec<ProcessInvocations> {
    par_map_processes(trace, num_threads, |pid| replay_process(trace, pid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invocation::replay_all;
    use perfvar_trace::{Clock, FunctionRole, Timestamp, TraceBuilder};

    fn many_process_trace(p: usize) -> Trace {
        let mut b = TraceBuilder::new(Clock::microseconds());
        let f = b.define_function("work", FunctionRole::Compute);
        let g = b.define_function("MPI_Barrier", FunctionRole::MpiCollective);
        for pi in 0..p {
            let pid = b.define_process(format!("rank {pi}"));
            let w = b.process_mut(pid);
            let mut t = 0u64;
            for k in 0..20u64 {
                w.enter(Timestamp(t), f).unwrap();
                t += 1 + (pi as u64 + k) % 5;
                w.enter(Timestamp(t), g).unwrap();
                t += 2;
                w.leave(Timestamp(t), g).unwrap();
                w.leave(Timestamp(t), f).unwrap();
            }
        }
        b.finish().unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let trace = many_process_trace(13);
        let seq = replay_all(&trace);
        for threads in [1, 2, 3, 8, 64] {
            let par = replay_all_parallel(&trace, threads);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn auto_thread_count() {
        let trace = many_process_trace(5);
        let par = replay_all_parallel(&trace, 0);
        assert_eq!(par, replay_all(&trace));
    }

    #[test]
    fn empty_and_single_process() {
        let empty = TraceBuilder::new(Clock::microseconds()).finish().unwrap();
        assert!(replay_all_parallel(&empty, 4).is_empty());
        let single = many_process_trace(1);
        assert_eq!(replay_all_parallel(&single, 4).len(), 1);
    }

    #[test]
    fn results_in_process_order() {
        let trace = many_process_trace(7);
        let par = replay_all_parallel(&trace, 3);
        for (i, inv) in par.iter().enumerate() {
            assert_eq!(inv.process, ProcessId::from_index(i));
        }
    }

    #[test]
    fn par_map_runs_every_process_once() {
        let trace = many_process_trace(9);
        let ids = par_map_processes(&trace, 4, |pid| pid.index());
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
    }
}
