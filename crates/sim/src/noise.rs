//! OS-noise injection: decorate any program set with random stalls.
//!
//! The paper's case study B attributes its one-off interruption to "an
//! influence from the operating system". Real systems add such noise all
//! the time at smaller scales (daemons, interrupts, page faults). This
//! decorator injects seeded random [`Stall`](crate::program::Step::Stall)
//! steps after compute steps of existing programs, so any workload can
//! be re-run "on a noisy machine" — useful for robustness testing of the
//! detector (does a real outlier still stand out above the noise floor?)
//! and for noise-sensitivity sweeps.

use crate::program::{Program, Step};
use crate::spec::AppSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the noise decorator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Probability that any single `Compute` step is followed by an
    /// interruption.
    pub probability: f64,
    /// Minimum stall length, ticks.
    pub min_stall: u64,
    /// Maximum stall length, ticks.
    pub max_stall: u64,
    /// RNG seed (deterministic injection).
    pub seed: u64,
}

impl Default for NoiseConfig {
    fn default() -> NoiseConfig {
        NoiseConfig {
            probability: 0.01,
            min_stall: 50,
            max_stall: 500,
            seed: 1337,
        }
    }
}

/// Returns a copy of `spec` with random stalls injected after compute
/// steps, per `config`. The injection is deterministic in the seed and
/// independent per rank (rank index is mixed into the stream).
pub fn inject_noise(spec: &AppSpec, config: NoiseConfig) -> AppSpec {
    let mut noisy = spec.clone();
    for (rank, program) in noisy.programs.iter_mut().enumerate() {
        let mut rng = SmallRng::seed_from_u64(config.seed ^ (rank as u64).wrapping_mul(0x9e37));
        let mut steps = Vec::with_capacity(program.len());
        for step in program.steps() {
            let is_compute = matches!(step, Step::Compute { .. });
            steps.push(step.clone());
            if is_compute && rng.gen_bool(config.probability.clamp(0.0, 1.0)) {
                let ticks =
                    rng.gen_range(config.min_stall..=config.max_stall.max(config.min_stall));
                steps.push(Step::Stall { ticks });
            }
        }
        let mut rebuilt = Program::new();
        for s in steps {
            rebuilt.push(s);
        }
        *program = rebuilt;
    }
    noisy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::workloads::{BalancedStencil, SingleOutlier, Workload};

    #[test]
    fn noise_extends_the_run() {
        let spec = BalancedStencil::new(4, 20).spec();
        let clean = simulate(&spec).unwrap();
        let noisy = simulate(&inject_noise(
            &spec,
            NoiseConfig {
                probability: 0.5,
                ..NoiseConfig::default()
            },
        ))
        .unwrap();
        assert!(noisy.span() > clean.span());
    }

    #[test]
    fn zero_probability_is_identity() {
        let spec = BalancedStencil::new(3, 5).spec();
        let untouched = inject_noise(
            &spec,
            NoiseConfig {
                probability: 0.0,
                ..NoiseConfig::default()
            },
        );
        assert_eq!(untouched, spec);
    }

    #[test]
    fn injection_is_deterministic() {
        let spec = BalancedStencil::new(3, 10).spec();
        let a = inject_noise(&spec, NoiseConfig::default());
        let b = inject_noise(&spec, NoiseConfig::default());
        assert_eq!(a, b);
        let c = inject_noise(
            &spec,
            NoiseConfig {
                seed: 999,
                probability: 0.9,
                ..NoiseConfig::default()
            },
        );
        assert_ne!(a, c);
    }

    #[test]
    fn stalls_preserve_program_balance() {
        let spec = SingleOutlier::new(4, 8, 1).spec();
        let noisy = inject_noise(
            &spec,
            NoiseConfig {
                probability: 0.8,
                ..NoiseConfig::default()
            },
        );
        for p in &noisy.programs {
            assert!(p.check_balanced().is_ok());
        }
        // And the noisy spec still simulates fine.
        assert!(simulate(&noisy).is_ok());
    }
}
