//! COSMO-SPECS: the paper's case study A (§VII-A, Fig. 4).
//!
//! The real application couples the COSMO regional weather model with the
//! SPECS cloud-microphysics model over a static 2-D (M × N) horizontal
//! domain decomposition. SPECS cost depends strongly on the presence and
//! size distribution of cloud particles in each grid cell, so a cloud
//! sitting over a block of subdomains overloads exactly those ranks —
//! and the imbalance grows as the cloud develops. All other ranks wait in
//! the coupling synchronization, so on the timeline *MPI time grows over
//! the run* while plain per-iteration durations grow *uniformly* — only
//! SOS-time isolates the overloaded ranks (the paper names processes 44,
//! 45, 54, 55, 64, 65 of its 10 × 10 run, with process 54 the worst).
//!
//! This model reproduces that mechanism: per iteration each rank runs
//! COSMO dynamics (cheap, uniform), SPECS microphysics (expensive; scaled
//! by a cloud field), the model coupling, and a closing
//! allreduce + barrier. The cloud field is an anisotropic Gaussian bump
//! centred between grid columns 4–5 near row 5 whose amplitude grows
//! linearly over the iterations; with the default 10 × 10 grid its
//! support is exactly the paper's six ranks.

use super::{jitter, Workload};
use crate::params::CommParams;
use crate::program::Program;
use crate::spec::{AppSpec, SpecBuilder};
use perfvar_trace::{Clock, FunctionRole};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the COSMO-SPECS load-imbalance workload.
#[derive(Clone, Debug)]
pub struct CosmoSpecs {
    /// Grid rows (M); ranks = rows × cols.
    pub rows: usize,
    /// Grid columns (N).
    pub cols: usize,
    /// Number of coupled model iterations.
    pub iterations: usize,
    /// COSMO dynamics compute ticks per iteration (uniform).
    pub cosmo_ticks: u64,
    /// SPECS microphysics base compute ticks per iteration.
    pub specs_ticks: u64,
    /// Coupling compute ticks per iteration.
    pub coupling_ticks: u64,
    /// Peak extra SPECS load, as a multiple of `specs_ticks`, reached by
    /// the cloud-centre rank in the final iteration.
    pub cloud_amplitude: f64,
    /// Cloud centre, in (row, col) grid coordinates.
    pub cloud_center: (f64, f64),
    /// Cloud extent (Gaussian sigma) in rows and columns.
    pub cloud_sigma: (f64, f64),
    /// Weights below this threshold are treated as cloud-free.
    pub cloud_cutoff: f64,
    /// Multiplicative compute jitter.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CosmoSpecs {
    /// The paper's configuration: 100 ranks (10 × 10), with the cloud over
    /// ranks {44, 45, 54, 55, 64, 65} and rank 54 at the centre.
    pub fn paper() -> CosmoSpecs {
        CosmoSpecs {
            rows: 10,
            cols: 10,
            iterations: 60,
            cosmo_ticks: 600,
            specs_ticks: 8_000,
            coupling_ticks: 400,
            cloud_amplitude: 2.5,
            cloud_center: (5.1, 4.35),
            cloud_sigma: (0.8, 0.55),
            cloud_cutoff: 0.05,
            jitter: 0.015,
            seed: 2016,
        }
    }

    /// A scaled-down variant for fast tests (`rows × cols` ranks).
    pub fn small(rows: usize, cols: usize, iterations: usize) -> CosmoSpecs {
        CosmoSpecs {
            rows,
            cols,
            iterations,
            // Scale the cloud position with the grid so a hotspot exists.
            cloud_center: (rows as f64 / 2.0, cols as f64 / 2.0 - 0.6),
            cloud_sigma: (rows as f64 / 12.0, cols as f64 / 18.0),
            ..CosmoSpecs::paper()
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.rows * self.cols
    }

    /// The cloud weight of the subdomain at `(row, col)`, in `[0, 1]`.
    pub fn cloud_weight(&self, row: usize, col: usize) -> f64 {
        let (cr, cc) = self.cloud_center;
        let (sr, sc) = self.cloud_sigma;
        let dr = (row as f64 - cr) / sr.max(1e-9);
        let dc = (col as f64 - cc) / sc.max(1e-9);
        let w = (-(dr * dr + dc * dc) / 2.0).exp();
        if w < self.cloud_cutoff {
            0.0
        } else {
            w
        }
    }

    /// Ranks with a nonzero cloud weight — the ground-truth overloaded
    /// set (for the paper configuration: {44, 45, 54, 55, 64, 65}).
    pub fn cloudy_ranks(&self) -> Vec<usize> {
        (0..self.ranks())
            .filter(|&r| self.cloud_weight(r / self.cols, r % self.cols) > 0.0)
            .collect()
    }

    /// The rank with the maximum cloud weight (paper: 54).
    pub fn hottest_rank(&self) -> usize {
        (0..self.ranks())
            .max_by(|&a, &b| {
                let wa = self.cloud_weight(a / self.cols, a % self.cols);
                let wb = self.cloud_weight(b / self.cols, b % self.cols);
                wa.partial_cmp(&wb).unwrap()
            })
            .unwrap()
    }

    /// SPECS compute ticks of `rank` in `iter` (before jitter): base load
    /// plus the growing cloud contribution.
    pub fn specs_load(&self, rank: usize, iter: usize) -> u64 {
        let w = self.cloud_weight(rank / self.cols, rank % self.cols);
        let growth = if self.iterations > 1 {
            iter as f64 / (self.iterations - 1) as f64
        } else {
            1.0
        };
        let factor = 1.0 + self.cloud_amplitude * w * growth;
        (self.specs_ticks as f64 * factor).round() as u64
    }
}

impl Workload for CosmoSpecs {
    fn name(&self) -> &str {
        "cosmo-specs"
    }

    fn spec(&self) -> AppSpec {
        let mut b = SpecBuilder::new(
            self.name(),
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let main_f = b.function("main", FunctionRole::Compute);
        let step_f = b.function("cosmo_specs_step", FunctionRole::Compute);
        let cosmo_f = b.function("cosmo_dynamics", FunctionRole::Compute);
        let specs_f = b.function("specs_microphysics", FunctionRole::Compute);
        let couple_f = b.function("couple_models", FunctionRole::Compute);
        let allreduce_f = b.function("MPI_Allreduce", FunctionRole::MpiCollective);
        let barrier_f = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        let init_f = b.function("model_init", FunctionRole::Compute);

        let mut rng = SmallRng::seed_from_u64(self.seed);
        for rank in 0..self.ranks() {
            let mut p = Program::new();
            p.enter(main_f);
            p.region_compute(init_f, jitter(self.cosmo_ticks * 4, self.jitter, rng.gen()));
            for iter in 0..self.iterations {
                p.enter(step_f);
                p.region_compute(cosmo_f, jitter(self.cosmo_ticks, self.jitter, rng.gen()));
                p.region_compute(
                    specs_f,
                    jitter(self.specs_load(rank, iter), self.jitter, rng.gen()),
                );
                p.region_compute(
                    couple_f,
                    jitter(self.coupling_ticks, self.jitter, rng.gen()),
                );
                p.allreduce(allreduce_f, 256);
                p.barrier(barrier_f);
                p.leave(step_f);
            }
            p.leave(main_f);
            b.add_rank(p);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;

    #[test]
    fn paper_config_hotspot_matches_fig4() {
        let w = CosmoSpecs::paper();
        assert_eq!(w.ranks(), 100);
        assert_eq!(w.cloudy_ranks(), vec![44, 45, 54, 55, 64, 65]);
        assert_eq!(w.hottest_rank(), 54);
    }

    #[test]
    fn cloud_load_grows_over_iterations() {
        let w = CosmoSpecs::paper();
        let early = w.specs_load(54, 0);
        let late = w.specs_load(54, w.iterations - 1);
        assert_eq!(early, w.specs_ticks);
        assert!(
            late as f64 > 2.5 * early as f64,
            "late={late} early={early}"
        );
        // Cloud-free ranks stay flat.
        assert_eq!(w.specs_load(0, 0), w.specs_load(0, w.iterations - 1));
    }

    #[test]
    fn small_variant_simulates() {
        let w = CosmoSpecs::small(3, 3, 4);
        let trace = simulate(&w.spec()).unwrap();
        assert_eq!(trace.num_processes(), 9);
        assert!(trace.num_events() > 0);
        assert_eq!(trace.name, "cosmo-specs");
    }

    #[test]
    fn weights_are_in_unit_interval() {
        let w = CosmoSpecs::paper();
        for r in 0..w.rows {
            for c in 0..w.cols {
                let v = w.cloud_weight(r, c);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }
}
