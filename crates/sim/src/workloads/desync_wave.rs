//! Desynchronisation ("idle") waves in a ring of ranks, after Afzal et
//! al. (arXiv 2205.13963).
//!
//! Each rank runs a balanced compute step and then exchanges a halo with
//! its ring neighbours: an eager send to the right, a blocking receive
//! from the left. A one-off compute delay injected on the `origin` rank
//! makes its send late; the right neighbour blocks in `MPI_Recv` for the
//! delay, finishes its iteration late, and passes the lateness on — the
//! idle wave travels **one rank per iteration** in the direction of data
//! flow while every rank's *compute* load stays perfectly balanced.
//!
//! This is the scenario SOS-time handles very differently from static
//! imbalance: the SOS matrix is flat except for the origin's single hot
//! segment, and the wave is visible only in the *synchronisation* time
//! (`duration − SOS`) as a diagonal front in (rank, ordinal) space.
//! Static-imbalance detection sees nothing to blame on the blocked
//! ranks; a diagnosis must recognise the propagating front instead.

use super::{jitter, Workload};
use crate::params::CommParams;
use crate::program::Program;
use crate::spec::{AppSpec, SpecBuilder};
use perfvar_trace::{Clock, FunctionRole};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the desynchronisation-wave workload.
#[derive(Clone, Debug)]
pub struct DesyncWave {
    /// Number of ranks in the ring.
    pub ranks: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// Balanced compute ticks per iteration.
    pub work: u64,
    /// The rank whose one-off delay starts the wave.
    pub origin: usize,
    /// The iteration in which the delay strikes.
    pub delay_iteration: usize,
    /// Delay length as a multiple of `work`.
    pub delay_factor: f64,
    /// Halo bytes exchanged with each neighbour per iteration.
    pub bytes: u64,
    /// Multiplicative compute jitter.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl DesyncWave {
    /// A wave started by an 8× `work` delay on `origin` early in the run.
    pub fn new(ranks: usize, iterations: usize, origin: usize) -> DesyncWave {
        DesyncWave {
            ranks,
            iterations,
            work: 10_000,
            origin,
            delay_iteration: (iterations / 4).min(iterations.saturating_sub(1)),
            delay_factor: 8.0,
            bytes: 4_096,
            jitter: 0.01,
            seed: 7_177,
        }
    }

    /// Length of the injected one-off delay in ticks.
    pub fn delay_ticks(&self) -> u64 {
        (self.work as f64 * self.delay_factor).round() as u64
    }

    /// Forward ring distance from the origin to `rank`.
    pub fn ring_distance(&self, rank: usize) -> usize {
        (rank + self.ranks - self.origin % self.ranks) % self.ranks
    }

    /// The iteration in which `rank` is expected to block on the late
    /// halo — the ground truth for detection tests. The wave leaves the
    /// origin at `delay_iteration` and advances one rank per iteration;
    /// `None` for the origin itself (it computes the delay rather than
    /// waiting it out) and for ranks the wave does not reach in time.
    pub fn expected_block_iteration(&self, rank: usize) -> Option<usize> {
        let k = self.ring_distance(rank);
        if k == 0 {
            return None;
        }
        let ordinal = self.delay_iteration + k - 1;
        (ordinal < self.iterations).then_some(ordinal)
    }
}

impl Workload for DesyncWave {
    fn name(&self) -> &str {
        "desync-wave"
    }

    fn spec(&self) -> AppSpec {
        let mut b = SpecBuilder::new(
            self.name(),
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let main_f = b.function("main", FunctionRole::Compute);
        let step_f = b.function("wave_iteration", FunctionRole::Compute);
        let calc_f = b.function("relax_cells", FunctionRole::Compute);
        let send_f = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let recv_f = b.function("MPI_Recv", FunctionRole::MpiPointToPoint);
        let n = self.ranks as u32;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for rank in 0..self.ranks {
            let mut p = Program::new();
            p.enter(main_f);
            for iter in 0..self.iterations {
                let mut load = jitter(self.work, self.jitter, rng.gen::<f64>());
                if rank == self.origin % self.ranks && iter == self.delay_iteration {
                    load += self.delay_ticks();
                }
                p.enter(step_f);
                p.region_compute(calc_f, load);
                if self.ranks > 1 {
                    // Eager send right, blocking receive from the left:
                    // the receive is where lateness is inherited.
                    let right = (rank as u32 + 1) % n;
                    let left = (rank as u32 + n - 1) % n;
                    p.send(send_f, right, iter as u32, self.bytes);
                    p.recv(recv_f, left, iter as u32, self.bytes);
                }
                p.leave(step_f);
            }
            p.leave(main_f);
            b.add_rank(p);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use perfvar_trace::ProcessId;

    #[test]
    fn wave_simulates_and_is_deterministic() {
        let w = DesyncWave::new(6, 8, 2);
        let a = simulate(&w.spec()).unwrap();
        let b = simulate(&w.spec()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_processes(), 6);
    }

    #[test]
    fn ground_truth_ordinals_advance_one_rank_per_iteration() {
        let w = DesyncWave::new(8, 12, 3);
        assert_eq!(w.expected_block_iteration(3), None); // origin
        assert_eq!(w.expected_block_iteration(4), Some(w.delay_iteration));
        assert_eq!(w.expected_block_iteration(5), Some(w.delay_iteration + 1));
        assert_eq!(w.expected_block_iteration(2), Some(w.delay_iteration + 6));
        // Too far for the run length → never blocks.
        let short = DesyncWave::new(8, 4, 0);
        assert_eq!(short.expected_block_iteration(7), None);
    }

    /// The physics the diagnosis relies on: the iteration *durations*
    /// spike along the propagating front while compute stays balanced.
    #[test]
    fn blocked_iterations_run_long_on_schedule() {
        let w = DesyncWave::new(5, 9, 1);
        let trace = simulate(&w.spec()).unwrap();
        let reg = trace.registry();
        let step = reg.function_by_name("wave_iteration").unwrap();
        // Per rank, find the longest wave_iteration invocation by
        // replaying enter/leave pairs of the step function.
        for rank in 0..5usize {
            let mut longest = (0usize, 0u64);
            let mut ordinal = 0usize;
            let mut entered = None;
            for ev in trace.stream(ProcessId::from_index(rank)).iter() {
                use perfvar_trace::Event;
                match ev.event {
                    Event::Enter { function } if function == step => entered = Some(ev.time.0),
                    Event::Leave { function } if function == step => {
                        let d = ev.time.0 - entered.take().unwrap();
                        if d > longest.1 {
                            longest = (ordinal, d);
                        }
                        ordinal += 1;
                    }
                    _ => {}
                }
            }
            let expected = match w.expected_block_iteration(rank) {
                Some(o) => o,
                None => w.delay_iteration, // the origin's own delayed step
            };
            assert_eq!(longest.0, expected, "rank {rank}: {longest:?}");
            assert!(
                longest.1 > w.work + w.delay_ticks() / 2,
                "rank {rank}: longest {longest:?} not wave-sized"
            );
        }
    }

    #[test]
    fn single_rank_ring_degenerates_gracefully() {
        let w = DesyncWave::new(1, 4, 0);
        let trace = simulate(&w.spec()).unwrap();
        assert_eq!(trace.num_processes(), 1);
    }
}
