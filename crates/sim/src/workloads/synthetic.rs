//! Parameterisable synthetic workloads for tests and benchmarks.

use super::{jitter, Workload};
use crate::params::CommParams;
use crate::program::Program;
use crate::spec::{AppSpec, SpecBuilder};
use perfvar_trace::{Clock, FunctionRole};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A perfectly regular iterative stencil: every rank computes the same
/// load each iteration (modulo a small jitter), then synchronises.
///
/// The "no performance problem" baseline: its SOS-times are flat.
#[derive(Clone, Debug)]
pub struct BalancedStencil {
    /// Number of ranks.
    pub ranks: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// Compute ticks per iteration.
    pub work: u64,
    /// Multiplicative jitter amplitude (e.g. `0.02` = ±2 %).
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BalancedStencil {
    /// A stencil with default work (10 000 ticks) and 2 % jitter.
    pub fn new(ranks: usize, iterations: usize) -> BalancedStencil {
        BalancedStencil {
            ranks,
            iterations,
            work: 10_000,
            jitter: 0.02,
            seed: 42,
        }
    }
}

impl Workload for BalancedStencil {
    fn name(&self) -> &str {
        "balanced-stencil"
    }

    fn spec(&self) -> AppSpec {
        let mut b = SpecBuilder::new(
            self.name(),
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let main_f = b.function("main", FunctionRole::Compute);
        let iter_f = b.function("stencil_iteration", FunctionRole::Compute);
        let calc_f = b.function("compute_stencil", FunctionRole::Compute);
        let barrier_f = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Draw loads rank-major so each rank has its own jitter sequence.
        let loads: Vec<Vec<u64>> = (0..self.ranks)
            .map(|_| {
                (0..self.iterations)
                    .map(|_| jitter(self.work, self.jitter, rng.gen::<f64>()))
                    .collect()
            })
            .collect();
        for rank_loads in &loads {
            let mut p = Program::new();
            p.enter(main_f);
            for &load in rank_loads {
                p.enter(iter_f);
                p.region_compute(calc_f, load);
                p.barrier(barrier_f);
                p.leave(iter_f);
            }
            p.leave(main_f);
            b.add_rank(p);
        }
        b.build()
    }
}

/// Per-(rank, iteration) independent uniform random loads — a noisy
/// workload with no single culprit, for robustness testing.
#[derive(Clone, Debug)]
pub struct RandomImbalance {
    /// Number of ranks.
    pub ranks: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// Minimum compute ticks per iteration.
    pub min_work: u64,
    /// Maximum compute ticks per iteration.
    pub max_work: u64,
    /// RNG seed.
    pub seed: u64,
}

impl RandomImbalance {
    /// Loads uniform in `[5_000, 15_000]`.
    pub fn new(ranks: usize, iterations: usize) -> RandomImbalance {
        RandomImbalance {
            ranks,
            iterations,
            min_work: 5_000,
            max_work: 15_000,
            seed: 7,
        }
    }
}

impl Workload for RandomImbalance {
    fn name(&self) -> &str {
        "random-imbalance"
    }

    fn spec(&self) -> AppSpec {
        let mut b = SpecBuilder::new(
            self.name(),
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let main_f = b.function("main", FunctionRole::Compute);
        let iter_f = b.function("iteration", FunctionRole::Compute);
        let calc_f = b.function("compute", FunctionRole::Compute);
        let barrier_f = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let loads: Vec<Vec<u64>> = (0..self.ranks)
            .map(|_| {
                (0..self.iterations)
                    .map(|_| rng.gen_range(self.min_work..=self.max_work.max(self.min_work)))
                    .collect()
            })
            .collect();
        for rank_loads in &loads {
            let mut p = Program::new();
            p.enter(main_f);
            for &load in rank_loads {
                p.enter(iter_f);
                p.region_compute(calc_f, load);
                p.barrier(barrier_f);
                p.leave(iter_f);
            }
            p.leave(main_f);
            b.add_rank(p);
        }
        b.build()
    }
}

/// Every rank slows down linearly over the run (e.g. memory fragmentation
/// or growing working sets): segment durations increase over *time* while
/// staying balanced across *processes*.
#[derive(Clone, Debug)]
pub struct GradualSlowdown {
    /// Number of ranks.
    pub ranks: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// Compute ticks in the first iteration.
    pub initial_work: u64,
    /// Final-iteration work as a multiple of the initial work.
    pub final_factor: f64,
}

impl GradualSlowdown {
    /// A slowdown to 3× the initial load.
    pub fn new(ranks: usize, iterations: usize) -> GradualSlowdown {
        GradualSlowdown {
            ranks,
            iterations,
            initial_work: 10_000,
            final_factor: 3.0,
        }
    }
}

impl Workload for GradualSlowdown {
    fn name(&self) -> &str {
        "gradual-slowdown"
    }

    fn spec(&self) -> AppSpec {
        let mut b = SpecBuilder::new(
            self.name(),
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let main_f = b.function("main", FunctionRole::Compute);
        let iter_f = b.function("iteration", FunctionRole::Compute);
        let calc_f = b.function("compute", FunctionRole::Compute);
        let barrier_f = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        let denom = (self.iterations.max(2) - 1) as f64;
        for _rank in 0..self.ranks {
            let mut p = Program::new();
            p.enter(main_f);
            for iter in 0..self.iterations {
                let factor = 1.0 + (self.final_factor - 1.0) * iter as f64 / denom;
                let load = (self.initial_work as f64 * factor).round() as u64;
                p.enter(iter_f);
                p.region_compute(calc_f, load);
                p.barrier(barrier_f);
                p.leave(iter_f);
            }
            p.leave(main_f);
            b.add_rank(p);
        }
        b.build()
    }
}

/// A balanced workload with exactly one injected outlier: `outlier_rank`
/// computes `factor ×` the normal load in `outlier_iteration`. The ground
/// truth for detection-quality tests and the SOS-vs-inclusive ablation.
#[derive(Clone, Debug)]
pub struct SingleOutlier {
    /// Number of ranks.
    pub ranks: usize,
    /// Number of iterations.
    pub iterations: usize,
    /// Normal compute ticks per iteration.
    pub work: u64,
    /// The slow rank.
    pub outlier_rank: usize,
    /// The slow iteration.
    pub outlier_iteration: usize,
    /// Load multiplier of the outlier invocation.
    pub factor: f64,
    /// Multiplicative jitter amplitude for the background load.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SingleOutlier {
    /// A 4× outlier on `outlier_rank` in the middle iteration.
    pub fn new(ranks: usize, iterations: usize, outlier_rank: usize) -> SingleOutlier {
        SingleOutlier {
            ranks,
            iterations,
            work: 10_000,
            outlier_rank,
            outlier_iteration: iterations / 2,
            factor: 4.0,
            jitter: 0.02,
            seed: 99,
        }
    }
}

impl Workload for SingleOutlier {
    fn name(&self) -> &str {
        "single-outlier"
    }

    fn spec(&self) -> AppSpec {
        let mut b = SpecBuilder::new(
            self.name(),
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let main_f = b.function("main", FunctionRole::Compute);
        let iter_f = b.function("iteration", FunctionRole::Compute);
        let calc_f = b.function("compute", FunctionRole::Compute);
        let barrier_f = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        for rank in 0..self.ranks {
            let mut p = Program::new();
            p.enter(main_f);
            for iter in 0..self.iterations {
                let mut load = jitter(self.work, self.jitter, rng.gen::<f64>());
                if rank == self.outlier_rank && iter == self.outlier_iteration {
                    load = (load as f64 * self.factor).round() as u64;
                }
                p.enter(iter_f);
                p.region_compute(calc_f, load);
                p.barrier(barrier_f);
                p.leave(iter_f);
            }
            p.leave(main_f);
            b.add_rank(p);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use perfvar_trace::ProcessId;

    #[test]
    fn balanced_stencil_simulates() {
        let trace = simulate(&BalancedStencil::new(4, 5).spec()).unwrap();
        assert_eq!(trace.num_processes(), 4);
        // 5 iterations × (2 iter + 2 calc + 2 barrier) + 2 main = 32 per rank.
        assert_eq!(trace.stream(ProcessId(0)).len(), 32);
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = simulate(&RandomImbalance::new(3, 4).spec()).unwrap();
        let b = simulate(&RandomImbalance::new(3, 4).spec()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut w1 = BalancedStencil::new(3, 4);
        w1.seed = 1;
        let mut w2 = BalancedStencil::new(3, 4);
        w2.seed = 2;
        assert_ne!(simulate(&w1.spec()).unwrap(), simulate(&w2.spec()).unwrap());
    }

    #[test]
    fn gradual_slowdown_grows_span_per_iteration() {
        let trace = simulate(&GradualSlowdown::new(2, 10).spec()).unwrap();
        // Final iteration ≈ 3× the first: total span must exceed
        // 10 × initial and be below 10 × final.
        let span = trace.span().0;
        assert!(span > 10 * 10_000 && span < 10 * 30_000 + 50_000, "{span}");
    }

    #[test]
    fn single_outlier_extends_exactly_one_iteration() {
        let w = SingleOutlier::new(3, 5, 1);
        let trace = simulate(&w.spec()).unwrap();
        assert_eq!(trace.num_processes(), 3);
        // The run is longer than a balanced one by roughly (factor-1)*work.
        let balanced = simulate(
            &SingleOutlier {
                factor: 1.0,
                ..w.clone()
            }
            .spec(),
        )
        .unwrap();
        let diff = trace.span().0 as i64 - balanced.span().0 as i64;
        assert!(
            (diff - 3 * 10_000).abs() < 2_000,
            "expected ≈30000 extra ticks, got {diff}"
        );
    }
}
