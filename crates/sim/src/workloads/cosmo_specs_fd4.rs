//! COSMO-SPECS+FD4: the paper's case study B (§VII-B, Fig. 5).
//!
//! The FD4 framework adds dynamic load balancing to SPECS: the cloud-
//! dependent cost is re-partitioned every iteration, so per-rank compute
//! is nearly uniform — the imbalance of case study A is gone. The
//! phenomenon studied here instead is a *one-off interruption*: during
//! one `specs_timestep` invocation, one process (the paper's Process 20,
//! on 200 ranks) is preempted by the operating system. Wall time passes
//! but almost no CPU cycles are assigned (the paper verified this with
//! `PAPI_TOT_CYC`), and every other rank waits for it.
//!
//! Each iteration runs several SPECS timesteps; each timestep does a halo
//! exchange with the ring neighbours, computes microphysics, samples the
//! cycle counter, and synchronises. The interruption is injected as a
//! [`Stall`](crate::program::Step::Stall) inside one specific timestep
//! invocation — wall clock advances, the cycle counter does not, exactly
//! reproducing the case study's signature.

use super::{jitter, Workload};
use crate::params::CommParams;
use crate::program::Program;
use crate::spec::{AppSpec, SpecBuilder};
use perfvar_trace::{Clock, FunctionRole, MetricMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the FD4 process-interruption workload.
#[derive(Clone, Debug)]
pub struct CosmoSpecsFd4 {
    /// Number of ranks.
    pub ranks: usize,
    /// Number of coupled iterations.
    pub iterations: usize,
    /// SPECS timesteps per iteration.
    pub timesteps_per_iteration: usize,
    /// Compute ticks per (balanced) timestep.
    pub timestep_ticks: u64,
    /// FD4 load-balancing overhead ticks per iteration.
    pub balance_ticks: u64,
    /// The interrupted rank (paper: Process 20).
    pub interrupted_rank: usize,
    /// The iteration containing the interruption.
    pub interrupted_iteration: usize,
    /// The timestep (within the iteration) containing the interruption.
    pub interrupted_timestep: usize,
    /// Length of the OS interruption, as a multiple of `timestep_ticks`.
    pub interruption_factor: f64,
    /// Simulated CPU cycles per compute tick (for `PAPI_TOT_CYC`).
    pub cycles_per_tick: u64,
    /// Halo message size per timestep, bytes.
    pub halo_bytes: u64,
    /// Multiplicative compute jitter (FD4 balances, but not perfectly).
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CosmoSpecsFd4 {
    /// The paper's configuration: 200 ranks, Process 20 interrupted once.
    pub fn paper() -> CosmoSpecsFd4 {
        CosmoSpecsFd4 {
            ranks: 200,
            iterations: 6,
            timesteps_per_iteration: 6,
            timestep_ticks: 5_000,
            balance_ticks: 300,
            interrupted_rank: 20,
            interrupted_iteration: 3,
            interrupted_timestep: 4,
            interruption_factor: 3.0,
            cycles_per_tick: 2_500,
            halo_bytes: 16 * 1024,
            jitter: 0.02,
            seed: 512,
        }
    }

    /// A scaled-down variant for fast tests.
    pub fn small(ranks: usize, iterations: usize) -> CosmoSpecsFd4 {
        CosmoSpecsFd4 {
            ranks,
            iterations,
            timesteps_per_iteration: 3,
            interrupted_rank: ranks / 4,
            interrupted_iteration: iterations / 2,
            interrupted_timestep: 1,
            ..CosmoSpecsFd4::paper()
        }
    }

    /// Global index of the interrupted segment among this rank's
    /// timesteps (iteration-major), for assertions.
    pub fn interrupted_global_timestep(&self) -> usize {
        self.interrupted_iteration * self.timesteps_per_iteration + self.interrupted_timestep
    }
}

impl Workload for CosmoSpecsFd4 {
    fn name(&self) -> &str {
        "cosmo-specs-fd4"
    }

    fn spec(&self) -> AppSpec {
        let mut b = SpecBuilder::new(
            self.name(),
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let main_f = b.function("main", FunctionRole::Compute);
        let iter_f = b.function("fd4_iteration", FunctionRole::Compute);
        let ts_f = b.function("specs_timestep", FunctionRole::Compute);
        let micro_f = b.function("specs_microphysics", FunctionRole::Compute);
        let lb_f = b.function("fd4_balance", FunctionRole::Compute);
        let send_f = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let recv_f = b.function("MPI_Recv", FunctionRole::MpiPointToPoint);
        let allreduce_f = b.function("MPI_Allreduce", FunctionRole::MpiCollective);
        let barrier_f = b.function("MPI_Barrier", FunctionRole::MpiCollective);
        let cyc = b.metric("PAPI_TOT_CYC", MetricMode::Accumulating, "cycles");

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let p_count = self.ranks;
        for rank in 0..p_count {
            let mut p = Program::new();
            p.enter(main_f);
            p.sample_counter(cyc);
            for iter in 0..self.iterations {
                p.enter(iter_f);
                // FD4 re-balances the cloud load: all ranks get (almost)
                // the same work afterwards.
                p.region_compute(lb_f, jitter(self.balance_ticks, self.jitter, rng.gen()));
                for ts in 0..self.timesteps_per_iteration {
                    p.enter(ts_f);
                    // Ring halo exchange; even ranks send first to avoid
                    // a blocking cycle.
                    let next = ((rank + 1) % p_count) as u32;
                    let prev = ((rank + p_count - 1) % p_count) as u32;
                    let tag = (iter * self.timesteps_per_iteration + ts) as u32;
                    if p_count > 1 {
                        if rank % 2 == 0 {
                            p.send(send_f, next, tag, self.halo_bytes);
                            p.recv(recv_f, prev, tag, self.halo_bytes);
                        } else {
                            p.recv(recv_f, prev, tag, self.halo_bytes);
                            p.send(send_f, next, tag, self.halo_bytes);
                        }
                    }
                    let ticks = jitter(self.timestep_ticks, self.jitter, rng.gen());
                    p.enter(micro_f);
                    p.compute_counted(ticks, vec![(cyc, ticks * self.cycles_per_tick)]);
                    if rank == self.interrupted_rank
                        && iter == self.interrupted_iteration
                        && ts == self.interrupted_timestep
                    {
                        // The OS preempts the process: wall time passes,
                        // (almost) no cycles are assigned.
                        let stall = (self.timestep_ticks as f64 * self.interruption_factor) as u64;
                        p.stall(stall);
                    }
                    p.leave(micro_f);
                    p.sample_counter(cyc);
                    p.allreduce(allreduce_f, 64);
                    p.leave(ts_f);
                }
                p.barrier(barrier_f);
                p.leave(iter_f);
            }
            p.leave(main_f);
            b.add_rank(p);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use perfvar_trace::{Event, ProcessId};

    #[test]
    fn small_variant_simulates() {
        let w = CosmoSpecsFd4::small(8, 2);
        let trace = simulate(&w.spec()).unwrap();
        assert_eq!(trace.num_processes(), 8);
        assert!(trace.num_events() > 0);
    }

    #[test]
    fn interruption_extends_the_run() {
        let w = CosmoSpecsFd4::small(6, 2);
        let with = simulate(&w.spec()).unwrap();
        let without = simulate(
            &CosmoSpecsFd4 {
                interruption_factor: 0.0,
                ..w.clone()
            }
            .spec(),
        )
        .unwrap();
        let expected = (w.timestep_ticks as f64 * w.interruption_factor) as i64;
        let diff = with.span().0 as i64 - without.span().0 as i64;
        assert!(
            (diff - expected).abs() < expected / 5,
            "diff={diff} expected≈{expected}"
        );
    }

    #[test]
    fn cycle_counter_flat_across_stall() {
        // On the interrupted rank, the cycle samples advance by the same
        // per-timestep amount whether or not the stall happened — the
        // stall adds wall time, not cycles.
        let w = CosmoSpecsFd4::small(4, 2);
        let trace = simulate(&w.spec()).unwrap();
        let stream = trace.stream(ProcessId::from_index(w.interrupted_rank));
        let samples: Vec<u64> = stream
            .records()
            .iter()
            .filter_map(|r| match r.event {
                Event::Metric { value, .. } => Some(value),
                _ => None,
            })
            .collect();
        // One leading zero sample + one per timestep.
        let steps = w.iterations * w.timesteps_per_iteration;
        assert_eq!(samples.len(), steps + 1);
        let deltas: Vec<u64> = samples.windows(2).map(|w| w[1] - w[0]).collect();
        let min = *deltas.iter().min().unwrap() as f64;
        let max = *deltas.iter().max().unwrap() as f64;
        // All cycle deltas within jitter of each other (no spike).
        assert!(max / min < 1.2, "min={min} max={max}");
    }

    #[test]
    fn halo_messages_present() {
        let w = CosmoSpecsFd4::small(4, 1);
        let trace = simulate(&w.spec()).unwrap();
        let sends = trace
            .streams()
            .iter()
            .flat_map(|s| s.records())
            .filter(|r| matches!(r.event, Event::MsgSend { .. }))
            .count();
        assert_eq!(sends, 4 * w.timesteps_per_iteration);
    }

    #[test]
    fn paper_config_targets_process_20() {
        let w = CosmoSpecsFd4::paper();
        assert_eq!(w.ranks, 200);
        assert_eq!(w.interrupted_rank, 20);
        assert_eq!(w.interrupted_global_timestep(), 3 * 6 + 4);
    }
}
