//! Simulated application workloads.
//!
//! * [`CosmoSpecs`] — case study A of the paper (§VII-A): coupled weather
//!   model with a static decomposition; cloud microphysics concentrates
//!   load on a block of ranks, growing over the run.
//! * [`CosmoSpecsFd4`] — case study B (§VII-B): the FD4 dynamically
//!   load-balanced variant, with a one-off OS interruption of one process.
//! * [`Wrf`] — case study C (§VII-C): weather code where one rank suffers
//!   floating-point exception microtraps, validated against a hardware
//!   counter.
//! * [`synthetic`] — parameterisable generators for tests, property tests
//!   and benchmarks.
//!
//! All workloads are deterministic given their seed.

mod cosmo_specs;
mod cosmo_specs_fd4;
mod desync_wave;
pub mod synthetic;
mod wrf;

pub use cosmo_specs::CosmoSpecs;
pub use cosmo_specs_fd4::CosmoSpecsFd4;
pub use desync_wave::DesyncWave;
pub use synthetic::{BalancedStencil, GradualSlowdown, RandomImbalance, SingleOutlier};
pub use wrf::Wrf;

use crate::spec::AppSpec;

/// A simulated application workload: anything that can produce an
/// [`AppSpec`] for [`simulate`](crate::engine::simulate).
pub trait Workload {
    /// Builds the application specification.
    fn spec(&self) -> AppSpec;

    /// Workload display name.
    fn name(&self) -> &str;
}

/// Shared helper: multiplicative jitter in `[1-amount, 1+amount]` applied
/// to `ticks`, from a uniform random value `u ∈ [0, 1)`.
pub(crate) fn jitter(ticks: u64, amount: f64, u: f64) -> u64 {
    let factor = 1.0 + amount * (2.0 * u - 1.0);
    ((ticks as f64 * factor).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_bounds() {
        assert_eq!(jitter(1000, 0.0, 0.5), 1000);
        assert_eq!(jitter(1000, 0.1, 0.0), 900);
        assert_eq!(jitter(1000, 0.1, 0.9999999), 1100);
        // Never returns zero.
        assert_eq!(jitter(1, 0.9, 0.0), 1);
    }
}
