//! WRF: the paper's case study C (§VII-C, Fig. 6).
//!
//! The Weather Research and Forecasting model on the 12 km CONUS
//! benchmark, 64 ranks. The run starts with ~11 seconds of model
//! initialisation and I/O, then iterates timesteps of dynamics
//! ("dyn core": density, temperature, pressure, winds) and physical
//! parameterisations (clouds, rain, radiation). Overall the iterations
//! show ≈25 % MPI time. The root cause found in the paper: Process 39
//! executes floating-point-exception microtraps
//! (`FR_FPU_EXCEPTIONS_SSE_MICROTRAPS`) in the physics code, computing
//! slower and making everyone else wait; the counter heatmap matches the
//! SOS-time heatmap exactly.
//!
//! This model reproduces the mechanism: physics compute time on each rank
//! is `base × (1 + cost_per_exception × exceptions)`; rank 39 draws a
//! high exception count per timestep (others draw a small background
//! rate), and each timestep emits the count on a delta metric channel so
//! the analysis can correlate counter and SOS-time.

use super::{jitter, Workload};
use crate::params::CommParams;
use crate::program::Program;
use crate::spec::{AppSpec, SpecBuilder};
use perfvar_trace::{Clock, FunctionRole, MetricMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Name of the FPU-exceptions counter channel, as in the paper.
pub const FPU_EXCEPTIONS_METRIC: &str = "FR_FPU_EXCEPTIONS_SSE_MICROTRAPS";

/// Configuration of the WRF floating-point-exceptions workload.
#[derive(Clone, Debug)]
pub struct Wrf {
    /// Grid rows of the rank decomposition; ranks = rows × cols.
    pub rows: usize,
    /// Grid columns of the rank decomposition.
    pub cols: usize,
    /// Number of model timesteps after initialisation.
    pub iterations: usize,
    /// Initialisation + input I/O ticks (paper: ≈11 s).
    pub init_ticks: u64,
    /// Dynamics compute ticks per timestep.
    pub dyn_ticks: u64,
    /// Physics compute ticks per timestep (exception-free).
    pub physics_ticks: u64,
    /// The afflicted rank (paper: Process 39).
    pub slow_rank: usize,
    /// Mean FPU exceptions per timestep on the afflicted rank.
    pub slow_rank_exceptions: u64,
    /// Mean background FPU exceptions per timestep on healthy ranks.
    pub background_exceptions: u64,
    /// Extra physics ticks per exception (the microtrap cost).
    pub ticks_per_exception: f64,
    /// Halo message bytes per neighbour per timestep.
    pub halo_bytes: u64,
    /// Multiplicative compute jitter.
    pub jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Wrf {
    /// The paper's configuration: 64 ranks (8 × 8), Process 39 afflicted,
    /// ≈11 s init, iteration MPI fraction ≈25 %.
    pub fn paper() -> Wrf {
        Wrf {
            rows: 8,
            cols: 8,
            iterations: 80,
            init_ticks: 11_000_000,
            dyn_ticks: 5_000,
            physics_ticks: 4_000,
            slow_rank: 39,
            slow_rank_exceptions: 40_000,
            background_exceptions: 150,
            ticks_per_exception: 0.05,
            halo_bytes: 32 * 1024,
            jitter: 0.02,
            seed: 64,
        }
    }

    /// A scaled-down variant for fast tests.
    pub fn small(rows: usize, cols: usize, iterations: usize) -> Wrf {
        Wrf {
            rows,
            cols,
            iterations,
            init_ticks: 50_000,
            slow_rank: (rows * cols) / 2,
            ..Wrf::paper()
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.rows * self.cols
    }

    /// Expected physics slowdown factor of the afflicted rank.
    pub fn slow_factor(&self) -> f64 {
        1.0 + self.ticks_per_exception * self.slow_rank_exceptions as f64
            / self.physics_ticks as f64
    }
}

impl Workload for Wrf {
    fn name(&self) -> &str {
        "wrf-conus12"
    }

    fn spec(&self) -> AppSpec {
        let mut b = SpecBuilder::new(
            self.name(),
            Clock::microseconds(),
            CommParams::cluster_defaults(),
        );
        let main_f = b.function("main", FunctionRole::Compute);
        let init_f = b.function("wrf_init", FunctionRole::Compute);
        let input_f = b.function("read_input", FunctionRole::FileIo);
        let step_f = b.function("wrf_timestep", FunctionRole::Compute);
        let dyn_f = b.function("dyn_core", FunctionRole::Compute);
        let phys_f = b.function("physics_driver", FunctionRole::Compute);
        let send_f = b.function("MPI_Send", FunctionRole::MpiPointToPoint);
        let irecv_f = b.function("MPI_Irecv", FunctionRole::MpiPointToPoint);
        let wait_f = b.function("MPI_Waitall", FunctionRole::MpiWait);
        let allreduce_f = b.function("MPI_Allreduce", FunctionRole::MpiCollective);
        let fpx = b.metric(FPU_EXCEPTIONS_METRIC, MetricMode::Delta, "#");

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let (rows, cols) = (self.rows, self.cols);
        for rank in 0..self.ranks() {
            let (row, col) = (rank / cols, rank % cols);
            let mut p = Program::new();
            p.enter(main_f);
            // Initialisation phase: model setup + input I/O.
            p.region_compute(
                init_f,
                jitter(self.init_ticks * 7 / 10, self.jitter, rng.gen()),
            );
            p.region_compute(
                input_f,
                jitter(self.init_ticks * 3 / 10, self.jitter, rng.gen()),
            );
            for iter in 0..self.iterations {
                p.enter(step_f);
                // Dynamics.
                p.region_compute(dyn_f, jitter(self.dyn_ticks, self.jitter, rng.gen()));
                // Halo exchange with the east and south neighbours, using
                // the non-blocking pattern real WRF uses: post receives,
                // send, complete in MPI_Waitall (no ordering constraints).
                let tag = iter as u32;
                let mut exchanges: Vec<u32> = Vec::new();
                if cols > 1 {
                    exchanges.push((row * cols + (col + 1) % cols) as u32);
                }
                if rows > 1 {
                    exchanges.push((((row + 1) % rows) * cols + col) as u32);
                }
                let mut receives: Vec<u32> = Vec::new();
                if cols > 1 {
                    receives.push((row * cols + (col + cols - 1) % cols) as u32);
                }
                if rows > 1 {
                    receives.push((((row + rows - 1) % rows) * cols + col) as u32);
                }
                for &from in &receives {
                    p.irecv(irecv_f, from, tag, self.halo_bytes);
                }
                for &to in &exchanges {
                    p.send(send_f, to, tag, self.halo_bytes);
                }
                if !receives.is_empty() {
                    p.wait_all(wait_f);
                }
                // Physics, slowed down by FPU-exception microtraps.
                let exceptions = if rank == self.slow_rank {
                    let base = self.slow_rank_exceptions;
                    jitter(base, 0.15, rng.gen())
                } else {
                    jitter(self.background_exceptions.max(1), 0.5, rng.gen())
                };
                let physics = jitter(self.physics_ticks, self.jitter, rng.gen())
                    + (exceptions as f64 * self.ticks_per_exception).round() as u64;
                p.enter(phys_f);
                p.compute(physics);
                p.emit_metric(fpx, exceptions);
                p.leave(phys_f);
                // CFL/diagnostics reduction closes the timestep.
                p.allreduce(allreduce_f, 128);
                p.leave(step_f);
            }
            p.leave(main_f);
            b.add_rank(p);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use perfvar_trace::stats::role_time_profile;
    use perfvar_trace::{Event, ProcessId};

    #[test]
    fn small_variant_simulates() {
        let w = Wrf::small(2, 2, 3);
        let trace = simulate(&w.spec()).unwrap();
        assert_eq!(trace.num_processes(), 4);
        assert!(trace.num_events() > 0);
    }

    #[test]
    fn slow_rank_emits_high_exception_counts() {
        let w = Wrf::small(2, 3, 4);
        let trace = simulate(&w.spec()).unwrap();
        let per_rank_total = |rank: usize| -> u64 {
            trace
                .stream(ProcessId::from_index(rank))
                .records()
                .iter()
                .filter_map(|r| match r.event {
                    Event::Metric { value, .. } => Some(value),
                    _ => None,
                })
                .sum()
        };
        let slow = per_rank_total(w.slow_rank);
        for rank in 0..w.ranks() {
            if rank != w.slow_rank {
                assert!(
                    slow > 20 * per_rank_total(rank),
                    "rank {rank} not far below the afflicted rank"
                );
            }
        }
    }

    #[test]
    fn healthy_ranks_wait_for_the_slow_one() {
        // MPI time on a healthy rank exceeds MPI time on the slow rank:
        // everyone waits for rank `slow_rank` in the allreduce.
        let w = Wrf::small(2, 2, 6);
        let trace = simulate(&w.spec()).unwrap();
        let profile = role_time_profile(&trace);
        let mpi = |rank: usize| -> u64 {
            perfvar_trace::FunctionRole::ALL
                .iter()
                .filter(|r| r.is_mpi())
                .map(|r| profile.ticks(ProcessId::from_index(rank), *r).0)
                .sum()
        };
        let slow = mpi(w.slow_rank);
        let healthy: u64 = (0..w.ranks())
            .filter(|&r| r != w.slow_rank)
            .map(mpi)
            .min()
            .unwrap();
        assert!(
            healthy > 2 * slow,
            "healthy min MPI {healthy} vs slow rank MPI {slow}"
        );
    }

    #[test]
    fn paper_config_shape() {
        let w = Wrf::paper();
        assert_eq!(w.ranks(), 64);
        assert_eq!(w.slow_rank, 39);
        // Afflicted physics runs ≈1.5× slower.
        assert!(w.slow_factor() > 1.3 && w.slow_factor() < 1.8);
    }
}
