//! Network and collective cost model.
//!
//! A classic latency/bandwidth (Hockney-style) model for point-to-point
//! messages plus a `base + log₂(p)·hop + bytes/bandwidth` model for
//! collectives. All costs are in trace clock ticks. The defaults assume a
//! microsecond clock and roughly InfiniBand-class numbers; the exact
//! values only shape the traces — the analysis is checked against
//! rankings and ratios, not absolute times.

use serde::{Deserialize, Serialize};

/// Cost parameters of the simulated interconnect, in clock ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommParams {
    /// Point-to-point wire latency.
    pub latency: u64,
    /// Point-to-point bandwidth, bytes transferred per tick.
    pub bytes_per_tick: u64,
    /// Sender-side software overhead (time spent inside `MPI_Send`).
    pub send_overhead: u64,
    /// Receiver-side software overhead (minimum time inside `MPI_Recv`).
    pub recv_overhead: u64,
    /// Fixed cost of a collective once all ranks arrived.
    pub collective_base: u64,
    /// Additional collective cost per tree hop (× ⌈log₂ p⌉).
    pub collective_per_hop: u64,
    /// Collective payload bandwidth, bytes per tick.
    pub collective_bytes_per_tick: u64,
}

impl CommParams {
    /// InfiniBand-class defaults for a microsecond clock: ~2 µs latency,
    /// ~3 GB/s bandwidth, ~1 µs overheads.
    pub fn cluster_defaults() -> CommParams {
        CommParams {
            latency: 2,
            bytes_per_tick: 3_000,
            send_overhead: 1,
            recv_overhead: 1,
            collective_base: 2,
            collective_per_hop: 2,
            collective_bytes_per_tick: 2_000,
        }
    }

    /// A zero-cost network: messages and collectives take no time beyond
    /// synchronization. Useful in tests that need exact hand-computable
    /// timestamps (e.g. reproducing the paper's Fig. 3).
    pub fn ideal() -> CommParams {
        CommParams {
            latency: 0,
            bytes_per_tick: u64::MAX,
            send_overhead: 0,
            recv_overhead: 0,
            collective_base: 0,
            collective_per_hop: 0,
            collective_bytes_per_tick: u64::MAX,
        }
    }

    /// Transfer time of a `bytes`-sized point-to-point payload
    /// (latency + serialisation).
    pub fn p2p_transfer(&self, bytes: u64) -> u64 {
        self.latency + div_ceil_saturating(bytes, self.bytes_per_tick)
    }

    /// Cost of a collective over `num_ranks` ranks moving `bytes` per
    /// rank, counted from the arrival of the last rank.
    pub fn collective_cost(&self, num_ranks: usize, bytes: u64) -> u64 {
        let hops = ceil_log2(num_ranks.max(1));
        self.collective_base
            + self.collective_per_hop * hops as u64
            + div_ceil_saturating(bytes, self.collective_bytes_per_tick)
    }
}

impl Default for CommParams {
    fn default() -> CommParams {
        CommParams::cluster_defaults()
    }
}

/// `⌈bytes / rate⌉`, treating `rate == u64::MAX` as infinitely fast.
fn div_ceil_saturating(bytes: u64, rate: u64) -> u64 {
    if rate == u64::MAX || bytes == 0 {
        0
    } else {
        bytes.div_ceil(rate.max(1))
    }
}

/// `⌈log₂ n⌉` for `n ≥ 1`.
pub(crate) fn ceil_log2(n: usize) -> u32 {
    debug_assert!(n >= 1);
    usize::BITS - (n - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(100), 7);
        assert_eq!(ceil_log2(200), 8);
    }

    #[test]
    fn p2p_transfer_combines_latency_and_bandwidth() {
        let c = CommParams::cluster_defaults();
        assert_eq!(c.p2p_transfer(0), 2);
        assert_eq!(c.p2p_transfer(3_000), 3);
        assert_eq!(c.p2p_transfer(3_001), 4);
    }

    #[test]
    fn ideal_network_is_free() {
        let c = CommParams::ideal();
        assert_eq!(c.p2p_transfer(1 << 30), 0);
        assert_eq!(c.collective_cost(1024, 1 << 30), 0);
    }

    #[test]
    fn collective_cost_scales_with_ranks() {
        let c = CommParams::cluster_defaults();
        let small = c.collective_cost(2, 0);
        let large = c.collective_cost(256, 0);
        assert!(large > small);
        // 256 ranks → 8 hops → base 2 + 16 = 18.
        assert_eq!(large, 18);
    }

    #[test]
    fn collective_payload_adds_time() {
        let c = CommParams::cluster_defaults();
        assert_eq!(c.collective_cost(4, 4_000) - c.collective_cost(4, 0), 2);
    }
}
